#include "analysis/graph_lint.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "analysis/text_parse.hh"
#include "heapgraph/degree_histogram.hh"
#include "heapgraph/graph_snapshot.hh"
#include "metrics/metric.hh"
#include "support/types.hh"
#include "telemetry/telemetry.hh"

namespace heapmd
{

namespace analysis
{

namespace
{

constexpr std::size_t kBuckets = DegreeHistogram::kExactBuckets;

/** One parsed "vertex" line. */
struct ParsedVertex
{
    std::uint64_t line = 0;
    Addr addr = 0;
    std::uint64_t size = 0;
    std::uint64_t indeg = 0;
    std::uint64_t outdeg = 0;
};

/** One parsed "hist" line. */
struct ParsedHistogram
{
    std::uint64_t line = 0;
    std::uint64_t vertices = 0;
    std::uint64_t indeg[kBuckets] = {};
    std::uint64_t outdeg[kBuckets] = {};
    std::uint64_t ineqout = 0;
};

/** Whole parsed document plus lint state. */
struct Linter
{
    Report &report;
    GraphLintStats stats;

    bool sawVertexCount = false, sawEdgeCount = false;
    std::uint64_t declaredVertices = 0;
    std::uint64_t declaredEdges = 0;
    std::map<ObjectId, ParsedVertex> vertices;
    /** Distinct edge -> line number of its first declaration. */
    std::map<std::pair<ObjectId, ObjectId>, std::uint64_t> edges;
    std::map<ObjectId, std::uint64_t> countedIn, countedOut;
    ParsedHistogram hist;
    bool sawHist = false;
    std::map<MetricId, std::pair<std::uint64_t, double>> metrics;

    explicit Linter(Report &rep)
        : report(rep)
    {
    }

    bool parseKeyedCount(std::istringstream &ls, const char *key,
                         std::uint64_t &value)
    {
        std::string token, number;
        if (!(ls >> token) || token != key)
            return false;
        return (ls >> number) && parseCount(number, value);
    }

    void vertexLine(std::uint64_t line_no, std::istringstream &ls);
    void edgeLine(std::uint64_t line_no, std::istringstream &ls);
    void histLine(std::uint64_t line_no, std::istringstream &ls);
    void metricLine(std::uint64_t line_no, std::istringstream &ls);
    void finish(bool saw_end, std::uint64_t end_line);
};

void
Linter::vertexLine(std::uint64_t line_no, std::istringstream &ls)
{
    std::string id_token;
    std::uint64_t id = 0;
    ParsedVertex v;
    v.line = line_no;
    if (!(ls >> id_token) || !parseCount(id_token, id) ||
        !parseKeyedCount(ls, "addr", v.addr) ||
        !parseKeyedCount(ls, "size", v.size) ||
        !parseKeyedCount(ls, "indeg", v.indeg) ||
        !parseKeyedCount(ls, "outdeg", v.outdeg)) {
        report.errorAtLine("graph.syntax", line_no,
                           "malformed vertex line");
        return;
    }
    ++stats.vertices;
    if (v.size == 0) {
        report.errorAtLine("graph.zero-extent", line_no,
                           "vertex " + std::to_string(id) +
                               " has extent size 0");
    }
    if (!vertices.emplace(id, v).second) {
        report.errorAtLine("graph.duplicate", line_no,
                           "vertex id " + std::to_string(id) +
                               " declared twice");
    }
}

void
Linter::edgeLine(std::uint64_t line_no, std::istringstream &ls)
{
    std::string from_token, to_token;
    std::uint64_t from = 0, to = 0;
    if (!(ls >> from_token) || !parseCount(from_token, from) ||
        !(ls >> to_token) || !parseCount(to_token, to)) {
        report.errorAtLine("graph.syntax", line_no,
                           "malformed edge line");
        return;
    }
    ++stats.edges;
    if (!edges.emplace(std::make_pair(from, to), line_no).second) {
        report.errorAtLine("graph.duplicate", line_no,
                           "edge " + std::to_string(from) + " -> " +
                               std::to_string(to) +
                               " declared twice");
        return; // degrees count distinct edges only
    }
    ++countedOut[from];
    ++countedIn[to];
}

void
Linter::histLine(std::uint64_t line_no, std::istringstream &ls)
{
    if (sawHist) {
        report.errorAtLine("graph.duplicate", line_no,
                           "histogram declared twice");
        return;
    }
    ParsedHistogram h;
    h.line = line_no;
    std::string token, number;
    bool ok = parseKeyedCount(ls, "vertices", h.vertices);
    ok = ok && (ls >> token) && token == "indeg";
    for (std::size_t d = 0; ok && d < kBuckets; ++d)
        ok = (ls >> number) && parseCount(number, h.indeg[d]);
    ok = ok && (ls >> token) && token == "outdeg";
    for (std::size_t d = 0; ok && d < kBuckets; ++d)
        ok = (ls >> number) && parseCount(number, h.outdeg[d]);
    ok = ok && parseKeyedCount(ls, "ineqout", h.ineqout);
    if (!ok) {
        report.errorAtLine("graph.syntax", line_no,
                           "malformed hist line");
        return;
    }
    hist = h;
    sawHist = true;
}

void
Linter::metricLine(std::uint64_t line_no, std::istringstream &ls)
{
    std::string name, number;
    double value = 0.0;
    if (!(ls >> name) || !(ls >> number) ||
        !parseDouble(number, value)) {
        report.errorAtLine("graph.syntax", line_no,
                           "malformed metric line");
        return;
    }
    const auto id = tryMetricFromName(name);
    if (!id) {
        report.errorAtLine("graph.syntax", line_no,
                           "unknown metric name '" + name + "'");
        return;
    }
    if (!metrics.emplace(*id, std::make_pair(line_no, value)).second) {
        report.errorAtLine("graph.duplicate", line_no,
                           "metric '" + name + "' declared twice");
    }
}

void
Linter::finish(bool saw_end, std::uint64_t end_line)
{
    if (!saw_end) {
        report.errorAtLine("graph.no-end", end_line,
                           "document missing the 'end' terminator");
    }

    // Declared counts vs. actual lines.
    if (sawVertexCount && declaredVertices != stats.vertices) {
        report.error("graph.count-mismatch",
                     "document declares " +
                         std::to_string(declaredVertices) +
                         " vertices but lists " +
                         std::to_string(stats.vertices));
    }
    if (sawEdgeCount && declaredEdges != edges.size()) {
        report.error("graph.count-mismatch",
                     "document declares " +
                         std::to_string(declaredEdges) +
                         " edges but lists " +
                         std::to_string(edges.size()) + " distinct");
    }

    // Every edge endpoint must be a declared vertex (vertex lines may
    // appear anywhere in the document, so this runs after parsing).
    for (const auto &[edge, line_no] : edges) {
        for (const auto &[label, id] :
             {std::pair<const char *, ObjectId>{"source", edge.first},
              {"target", edge.second}}) {
            if (vertices.count(id) == 0) {
                report.errorAtLine("graph.dangling-edge", line_no,
                                   std::string("edge ") + label +
                                       " " + std::to_string(id) +
                                       " is not a declared vertex");
            }
        }
    }

    // Degree conservation: per-vertex declared degrees must agree
    // with a recount from the edge list, and both sides of every
    // distinct edge contribute exactly once, so the in- and
    // out-degree sums must both equal the distinct edge count.
    std::uint64_t sum_in = 0, sum_out = 0;
    for (const auto &[id, v] : vertices) {
        sum_in += v.indeg;
        sum_out += v.outdeg;
        const std::uint64_t in_count =
            countedIn.count(id) != 0 ? countedIn.at(id) : 0;
        const std::uint64_t out_count =
            countedOut.count(id) != 0 ? countedOut.at(id) : 0;
        if (v.indeg != in_count || v.outdeg != out_count) {
            report.errorAtLine(
                "graph.degree-mismatch", v.line,
                "vertex " + std::to_string(id) + " declares in/out " +
                    std::to_string(v.indeg) + "/" +
                    std::to_string(v.outdeg) +
                    " but the edge list yields " +
                    std::to_string(in_count) + "/" +
                    std::to_string(out_count));
        }
    }
    if (sum_in != sum_out || sum_in != edges.size()) {
        report.error("graph.degree-mismatch",
                     "degree conservation broken: sum(indeg) " +
                         std::to_string(sum_in) + ", sum(outdeg) " +
                         std::to_string(sum_out) + ", edges " +
                         std::to_string(edges.size()));
    }

    // No two live extents may overlap.
    struct Extent
    {
        Addr addr;
        std::uint64_t size;
        ObjectId id;
        std::uint64_t line;
    };
    std::vector<Extent> extents;
    extents.reserve(vertices.size());
    for (const auto &[id, v] : vertices) {
        if (v.size != 0) // zero extents are flagged separately
            extents.push_back({v.addr, v.size, id, v.line});
    }
    std::sort(extents.begin(), extents.end(),
              [](const Extent &a, const Extent &b) {
                  return a.addr < b.addr ||
                         (a.addr == b.addr && a.id < b.id);
              });
    for (std::size_t i = 1; i < extents.size(); ++i) {
        const Extent &prev = extents[i - 1];
        const Extent &cur = extents[i];
        if (cur.addr - prev.addr < prev.size) {
            report.errorAtLine(
                "graph.extent-overlap", cur.line,
                "vertex " + std::to_string(cur.id) + " at address " +
                    std::to_string(cur.addr) + " overlaps vertex " +
                    std::to_string(prev.id));
        }
    }

    // Histogram totals vs. a recount from the declared degrees.
    if (!sawHist) {
        report.error("graph.histogram", "missing hist line");
    } else {
        std::uint64_t indeg[kBuckets] = {}, outdeg[kBuckets] = {};
        std::uint64_t ineqout = 0;
        for (const auto &[id, v] : vertices) {
            if (v.indeg < kBuckets)
                ++indeg[v.indeg];
            if (v.outdeg < kBuckets)
                ++outdeg[v.outdeg];
            ineqout += v.indeg == v.outdeg ? 1 : 0;
        }
        if (hist.vertices != vertices.size()) {
            report.errorAtLine(
                "graph.histogram", hist.line,
                "histogram total " + std::to_string(hist.vertices) +
                    " != vertex count " +
                    std::to_string(vertices.size()));
        }
        for (std::size_t d = 0; d < kBuckets; ++d) {
            if (hist.indeg[d] != indeg[d]) {
                report.errorAtLine(
                    "graph.histogram", hist.line,
                    "indeg=" + std::to_string(d) + " bucket is " +
                        std::to_string(hist.indeg[d]) +
                        ", recount says " + std::to_string(indeg[d]));
            }
            if (hist.outdeg[d] != outdeg[d]) {
                report.errorAtLine(
                    "graph.histogram", hist.line,
                    "outdeg=" + std::to_string(d) + " bucket is " +
                        std::to_string(hist.outdeg[d]) +
                        ", recount says " +
                        std::to_string(outdeg[d]));
            }
        }
        if (hist.ineqout != ineqout) {
            report.errorAtLine(
                "graph.histogram", hist.line,
                "ineqout count is " + std::to_string(hist.ineqout) +
                    ", recount says " + std::to_string(ineqout));
        }

        // The seven paper metrics must be recomputable from the
        // histogram within epsilon.
        const double total = static_cast<double>(hist.vertices);
        const auto pct = [total](std::uint64_t count) {
            return total == 0.0
                       ? 0.0
                       : 100.0 * static_cast<double>(count) / total;
        };
        const std::pair<MetricId, double> expected[] = {
            {MetricId::Roots, pct(hist.indeg[0])},
            {MetricId::Indeg1, pct(hist.indeg[1])},
            {MetricId::Indeg2, pct(hist.indeg[2])},
            {MetricId::Leaves, pct(hist.outdeg[0])},
            {MetricId::Outdeg1, pct(hist.outdeg[1])},
            {MetricId::Outdeg2, pct(hist.outdeg[2])},
            {MetricId::InEqOut, pct(hist.ineqout)},
        };
        for (const auto &[id, want] : expected) {
            const auto it = metrics.find(id);
            if (it == metrics.end()) {
                report.error("graph.metric-recompute",
                             "metric '" + metricName(id) +
                                 "' missing from the document");
                continue;
            }
            const auto &[line_no, got] = it->second;
            if (std::abs(got - want) > kMetricEpsilon) {
                std::ostringstream oss;
                oss << "metric '" << metricName(id) << "' is " << got
                    << " but the histogram recomputes to " << want;
                report.errorAtLine("graph.metric-recompute", line_no,
                                   oss.str());
            }
        }
    }
}

} // namespace

GraphLintStats
lintGraph(std::istream &is, Report &report)
{
    Linter linter(report);
    std::string line;
    std::uint64_t line_no = 0;

    if (!std::getline(is, line) || line != kGraphSnapshotHeader) {
        report.errorAtLine("graph.bad-header", 1,
                           std::string("first line is not '") +
                               kGraphSnapshotHeader + "'");
        return linter.stats;
    }
    ++line_no;

    bool saw_end = false;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "vertices") {
            std::string number;
            if (!(ls >> number) ||
                !parseCount(number, linter.declaredVertices)) {
                report.errorAtLine("graph.syntax", line_no,
                                   "malformed vertices line");
            } else {
                linter.sawVertexCount = true;
            }
        } else if (key == "edges") {
            std::string number;
            if (!(ls >> number) ||
                !parseCount(number, linter.declaredEdges)) {
                report.errorAtLine("graph.syntax", line_no,
                                   "malformed edges line");
            } else {
                linter.sawEdgeCount = true;
            }
        } else if (key == "vertex") {
            linter.vertexLine(line_no, ls);
        } else if (key == "edge") {
            linter.edgeLine(line_no, ls);
        } else if (key == "hist") {
            linter.histLine(line_no, ls);
        } else if (key == "metric") {
            linter.metricLine(line_no, ls);
        } else if (key == "end") {
            saw_end = true;
            break;
        } else {
            report.errorAtLine("graph.syntax", line_no,
                               "unknown snapshot key '" + key + "'");
        }
    }

    linter.finish(saw_end, line_no + 1);
    linter.stats.lines = line_no;
    return linter.stats;
}

GraphLintStats
lintGraphFile(const std::string &path, Report &report)
{
    HEAPMD_TRACE_SPAN("audit.graph");
    HEAPMD_COUNTER_INC("audit.graph_lints");
    const std::size_t before = report.findings().size();
    std::ifstream in(path);
    if (!in) {
        report.error("graph.io",
                     "cannot open graph snapshot '" + path + "'");
        HEAPMD_COUNTER_INC("audit.findings");
        return {};
    }
    const GraphLintStats stats = lintGraph(in, report);
    HEAPMD_COUNTER_ADD("audit.findings",
                       report.findings().size() - before);
    return stats;
}

} // namespace analysis

} // namespace heapmd
