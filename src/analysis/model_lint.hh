/**
 * @file
 * Static linter for calibrated heap-behaviour model documents.
 *
 * Re-parses the line-oriented format of HeapModel::save() leniently
 * (HeapModel::load() exits on the first syntax error and panics on
 * min > max, so it cannot be used to *audit* a suspect file) and
 * checks the parsed content for degenerate calibrations,
 * cross-checking the stability invariants of
 * metrics/stability.hh:StabilityThresholds.  Findings carry 1-based
 * line numbers.
 *
 * Rule catalog (see DESIGN.md, "The audit subsystem"):
 *   model.io               unreadable input file
 *   model.bad-header       first line is not "heapmd-model v1"
 *   model.syntax           malformed or unknown line
 *   model.unknown-metric   metric name not in the paper's seven
 *   model.duplicate-metric metric calibrated twice, or both stable
 *                          and unstable
 *   model.range-inverted   entry with min > max
 *   model.non-finite       NaN or infinity in a calibrated field
 *   model.threshold-bounds avg change / stddev outside the stability
 *                          thresholds the summarizer enforces
 *   model.stable-runs      stableRuns of 0 or > training runs
 *   model.empty-stable-set no calibrated metric at all
 *   model.no-end           document missing the "end" terminator
 */

#ifndef HEAPMD_ANALYSIS_MODEL_LINT_HH
#define HEAPMD_ANALYSIS_MODEL_LINT_HH

#include <istream>
#include <string>

#include "analysis/report.hh"
#include "metrics/stability.hh"

namespace heapmd
{

namespace analysis
{

/** Scan statistics of one model lint pass. */
struct ModelLintStats
{
    std::size_t lines = 0;           //!< lines scanned
    std::size_t stableMetrics = 0;   //!< calibrated entries seen
    std::size_t unstableMetrics = 0; //!< "unstable" lines seen
};

/**
 * Lint one model document from @p is.
 *
 * @param thresholds stability bounds the calibrations are checked
 *        against; defaults to the paper values.
 */
ModelLintStats lintModel(std::istream &is, Report &report,
                         const StabilityThresholds &thresholds = {});

/** Lint the model file at @p path. */
ModelLintStats
lintModelFile(const std::string &path, Report &report,
              const StabilityThresholds &thresholds = {});

} // namespace analysis

} // namespace heapmd

#endif // HEAPMD_ANALYSIS_MODEL_LINT_HH
