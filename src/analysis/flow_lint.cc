#include "analysis/flow_lint.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "analysis/trace_scan.hh"
#include "runtime/events.hh"
#include "telemetry/telemetry.hh"
#include "trace/trace_format.hh"
#include "trace/trace_source.hh"

namespace heapmd
{

namespace analysis
{

namespace
{

/**
 * Cap on structured findings kept per pass.  A systematically-corrupt
 * trace (every event a double free) must not allocate without bound;
 * the scan keeps running for stats, further findings are dropped.
 */
constexpr std::size_t kMaxFlowFindings = 4096;

std::string
hex(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

std::string
extent(Addr base, std::uint64_t size)
{
    return "[" + hex(base) + ", " + hex(base + size) + ")";
}

/** One tracked heap object, live or freed-awaiting-reuse. */
struct ShadowObject
{
    Addr base = kNullAddr;
    std::uint64_t size = 0;
    FlowSite alloc;
    FlowSite freed; //!< valid once is_freed
    bool is_freed = false;
    /** Pointer slots written into this object: offset -> target uid. */
    std::map<std::uint64_t, std::uint64_t> slots;
    /** Edges aimed at this object: (source uid, source offset). */
    std::set<std::pair<std::uint64_t, std::uint64_t>> incoming;
};

/**
 * A live pointer slot whose target was freed and then recycled.  The
 * slot still holds the old address, which now aliases an unrelated
 * object -- merely holding it is common in clean programs (registries
 * keep keys to erased entries), so flow.dangling_edge fires only if
 * the program later *loads* the slot, materializing the stale value.
 */
struct StaleSlot
{
    Addr victim_base = kNullAddr;
    std::uint64_t victim_size = 0;
    FlowSite victim_alloc;
    FlowSite victim_freed;
    /** The allocation that recycled the victim's extent. */
    Addr recycle_addr = kNullAddr;
    std::uint64_t recycle_event = 0;
};

/**
 * A just-loaded stale pointer, armed for one memory event.  Programs
 * load stale addresses for harmless reasons -- hash-table key probes
 * compare them, shared-payload traversals read through borrowed
 * pointers the owner already released -- so neither the load nor a
 * read through it is damning.  A *write* is: it lands inside
 * whatever object recycled the freed extent and corrupts it.  That
 * correlation -- load of a tainted slot, then the very next memory
 * event a write inside the old target -- fires flow.dangling_edge,
 * the recycled-memory dual of flow.write_freed.
 */
struct PendingDeref
{
    bool armed = false;
    Addr slot_addr = kNullAddr;
    std::uint64_t load_event = 0;
    StaleSlot taint;
};

/** The whole flow pass: shadow heap, decode loop, finding emission. */
class FlowPass
{
  public:
    explicit FlowPass(std::string_view data)
        : cursor_(data)
    {
        result_.stats.bytes = data.size();
    }

    FlowAnalysis run();

  private:
    using ExtentMap = std::map<Addr, std::uint64_t>; // base -> uid

    ScanCursor cursor_;
    FlowAnalysis result_;
    bool capture_ = false;
    std::uint64_t event_index_ = 0;
    std::vector<FnId> fn_stack_;
    std::uint64_t next_uid_ = 0;
    ExtentMap live_;
    ExtentMap freed_;
    std::map<std::uint64_t, ShadowObject> objects_;
    /** Slot address -> evidence of the recycled target it points at. */
    std::map<Addr, StaleSlot> stale_;
    PendingDeref pending_;

    FnId currentFn() const
    {
        return fn_stack_.empty() ? kNoFunction : fn_stack_.back();
    }

    FlowSite here(std::uint64_t offset) const
    {
        FlowSite site;
        site.fn = currentFn();
        site.eventIndex = event_index_;
        site.byteOffset = offset;
        site.known = true;
        return site;
    }

    /** Severity of a rule given the trace's provenance. */
    Severity relaxed(Severity strict) const
    {
        if (!capture_)
            return strict;
        return strict == Severity::Error ? Severity::Warning
                                         : Severity::Note;
    }

    FlowFinding &emit(const char *rule, Severity severity,
                      std::uint64_t offset);

    /** Extent containing @p addr, or map.end(). */
    ExtentMap::iterator find(ExtentMap &map, Addr addr)
    {
        auto it = map.upper_bound(addr);
        if (it == map.begin())
            return map.end();
        --it;
        const ShadowObject &obj = objects_.at(it->second);
        return addr - obj.base < obj.size ? it : map.end();
    }

    bool readFields(std::uint64_t *fields, int count);
    void setSlot(std::uint64_t source_uid, std::uint64_t offset,
                 Addr value);
    void clearSlot(std::uint64_t source_uid, std::uint64_t offset);
    void dropOutgoing(std::uint64_t uid, std::uint64_t from_offset);
    void eraseObject(std::uint64_t uid);
    void clearStaleRange(Addr base, std::uint64_t size);
    std::uint64_t resolveTarget(Addr value);

    /** Sink for findings emitted past the retention cap. */
    FlowFinding overflow_;

    void recycleFreed(Addr addr, std::uint64_t span,
                      std::uint64_t offset);
    void consumeLive(Addr addr, std::uint64_t span,
                     std::uint64_t offset);
    void handleAlloc(Addr addr, std::uint64_t size,
                     std::uint64_t offset);
    void handleFree(Addr addr, std::uint64_t offset, bool realloc);
    void handleRealloc(Addr old_addr, Addr new_addr,
                       std::uint64_t size, std::uint64_t offset);
    void handleWrite(Addr addr, Addr value, std::uint64_t offset);
    void handleRead(Addr addr, std::uint64_t offset);
    void checkPendingDeref(Addr addr, std::uint64_t offset,
                           bool is_write);
    void parseFooter();
    void reportLeaks(std::uint64_t footer_offset);
};

FlowFinding &
FlowPass::emit(const char *rule, Severity severity,
               std::uint64_t offset)
{
    if (result_.findings.size() >= kMaxFlowFindings) {
        overflow_ = FlowFinding();
        return overflow_;
    }
    FlowFinding f;
    f.rule = rule;
    f.severity = severity;
    f.byteOffset = offset;
    f.eventIndex = event_index_;
    result_.findings.push_back(std::move(f));
    return result_.findings.back();
}

bool
FlowPass::readFields(std::uint64_t *fields, int count)
{
    for (int i = 0; i < count; ++i) {
        if (scanVarint(cursor_, fields[i]) ==
            VarintStatus::Truncated)
            return false;
        // Overlong varints still yield a value; the trace linter
        // owns the encoding finding, the flow pass keeps going.
    }
    return true;
}

/** Target object (live preferred, then freed) containing @p value. */
std::uint64_t
FlowPass::resolveTarget(Addr value)
{
    auto it = find(live_, value);
    if (it != live_.end())
        return it->second;
    it = find(freed_, value);
    if (it != freed_.end())
        return it->second;
    return ~std::uint64_t(0);
}

void
FlowPass::clearSlot(std::uint64_t source_uid, std::uint64_t offset)
{
    auto obj = objects_.find(source_uid);
    if (obj == objects_.end())
        return;
    auto slot = obj->second.slots.find(offset);
    if (slot == obj->second.slots.end())
        return;
    auto target = objects_.find(slot->second);
    if (target != objects_.end())
        target->second.incoming.erase({source_uid, offset});
    obj->second.slots.erase(slot);
}

void
FlowPass::setSlot(std::uint64_t source_uid, std::uint64_t offset,
                  Addr value)
{
    clearSlot(source_uid, offset);
    const std::uint64_t target_uid = resolveTarget(value);
    if (target_uid == ~std::uint64_t(0))
        return;
    objects_.at(source_uid).slots[offset] = target_uid;
    objects_.at(target_uid).incoming.insert({source_uid, offset});
}

/** Drop object @p uid's outgoing edges at offsets >= @p from_offset. */
void
FlowPass::dropOutgoing(std::uint64_t uid, std::uint64_t from_offset)
{
    ShadowObject &obj = objects_.at(uid);
    auto it = obj.slots.lower_bound(from_offset);
    while (it != obj.slots.end()) {
        auto target = objects_.find(it->second);
        if (target != objects_.end())
            target->second.incoming.erase({uid, it->first});
        it = obj.slots.erase(it);
    }
}

/** Remove every trace of object @p uid from the shadow heap. */
void
FlowPass::eraseObject(std::uint64_t uid)
{
    auto it = objects_.find(uid);
    if (it == objects_.end())
        return;
    ShadowObject &obj = it->second;
    dropOutgoing(uid, 0);
    for (const auto &[source, offset] : obj.incoming) {
        auto src = objects_.find(source);
        if (src != objects_.end())
            src->second.slots.erase(offset);
    }
    live_.erase(obj.base);
    freed_.erase(obj.base);
    clearStaleRange(obj.base, obj.size);
    objects_.erase(it);
}

/**
 * Forget tainted slots inside [base, base+size): the memory stopped
 * belonging to the live object the taint was recorded against, so a
 * later access there is some other rule's business.
 */
void
FlowPass::clearStaleRange(Addr base, std::uint64_t size)
{
    auto it = stale_.lower_bound(base);
    while (it != stale_.end() && it->first < base + size)
        it = stale_.erase(it);
}

/**
 * Sweep freed extents overlapping [addr, addr+span) out of the
 * shadow heap: the allocator just recycled that space.  Live edges
 * still aimed at a recycled extent are the dangerous half of a
 * dangling pointer -- the slots now alias an unrelated object -- but
 * clean programs routinely keep such addresses around as inert keys,
 * so instead of firing here each stale slot is tainted; a later load
 * of the slot fires flow.dangling_edge (see handleRead).
 */
void
FlowPass::recycleFreed(Addr addr, std::uint64_t span,
                       std::uint64_t offset)
{
    (void)offset;
    for (;;) {
        auto it = freed_.upper_bound(addr);
        if (it != freed_.begin()) {
            auto prev = std::prev(it);
            const ShadowObject &o = objects_.at(prev->second);
            if (addr - o.base < o.size)
                it = prev;
        }
        if (it == freed_.end() || it->first >= addr + span)
            break;
        const std::uint64_t uid = it->second;
        ShadowObject &victim = objects_.at(uid);
        for (const auto &[src_uid, src_off] : victim.incoming) {
            auto src = objects_.find(src_uid);
            if (src == objects_.end() || src->second.is_freed)
                continue;
            StaleSlot &taint =
                stale_[src->second.base + src_off];
            taint.victim_base = victim.base;
            taint.victim_size = victim.size;
            taint.victim_alloc = victim.alloc;
            taint.victim_freed = victim.freed;
            taint.recycle_addr = addr;
            taint.recycle_event = event_index_;
        }
        eraseObject(uid);
    }
}

/**
 * Sweep live extents overlapping [addr, addr+span): a structural bug
 * on replay traces (flow.overlap_alloc); on capture traces the shim's
 * missed-free address reuse, so the overlapped objects are implicitly
 * freed instead.
 */
void
FlowPass::consumeLive(Addr addr, std::uint64_t span,
                      std::uint64_t offset)
{
    for (;;) {
        auto it = live_.upper_bound(addr);
        if (it != live_.begin()) {
            auto prev = std::prev(it);
            const ShadowObject &o = objects_.at(prev->second);
            if (addr - o.base < o.size)
                it = prev;
        }
        if (it == live_.end() || it->first >= addr + span)
            break;
        const std::uint64_t uid = it->second;
        const ShadowObject &victim = objects_.at(uid);
        if (!capture_) {
            FlowFinding &f = emit("flow.overlap_alloc",
                                  Severity::Error, offset);
            f.addr = addr;
            f.base = victim.base;
            f.size = victim.size;
            f.allocSite = victim.alloc;
            f.message = "allocation " + extent(addr, span) +
                        " overlaps live object " +
                        extent(victim.base, victim.size);
        }
        eraseObject(uid);
    }
}

void
FlowPass::handleAlloc(Addr addr, std::uint64_t size,
                      std::uint64_t offset)
{
    if (size >> 63) {
        FlowFinding &f =
            emit("flow.negative_size", Severity::Error, offset);
        f.addr = addr;
        f.size = size;
        f.message = "allocation of " + hex(size) +
                    " bytes at " + hex(addr) +
                    " (negative when interpreted as ssize_t)";
        return;
    }
    const std::uint64_t span = size == 0 ? 1 : size;
    recycleFreed(addr, span, offset);
    consumeLive(addr, span, offset);

    const std::uint64_t uid = next_uid_++;
    ShadowObject obj;
    obj.base = addr;
    obj.size = span;
    obj.alloc = here(offset);
    objects_.emplace(uid, std::move(obj));
    live_[addr] = uid;
}

void
FlowPass::handleFree(Addr addr, std::uint64_t offset, bool realloc)
{
    const char *verb = realloc ? "realloc" : "free";
    auto exact = live_.find(addr);
    if (exact != live_.end()) {
        const std::uint64_t uid = exact->second;
        dropOutgoing(uid, 0);
        ShadowObject &obj = objects_.at(uid);
        obj.is_freed = true;
        obj.freed = here(offset);
        freed_[addr] = uid;
        live_.erase(exact);
        clearStaleRange(obj.base, obj.size);
        return;
    }

    auto interior = find(live_, addr);
    if (interior != live_.end()) {
        const ShadowObject &obj = objects_.at(interior->second);
        FlowFinding &f =
            emit("flow.size_mismatch", Severity::Error, offset);
        f.addr = addr;
        f.base = obj.base;
        f.size = obj.size;
        f.allocSite = obj.alloc;
        f.message = std::string(verb) + " of interior pointer " +
                    hex(addr) + ": offset " +
                    std::to_string(addr - obj.base) +
                    " into live object " + extent(obj.base, obj.size);
        return;
    }

    auto freed = find(freed_, addr);
    if (freed != freed_.end()) {
        const ShadowObject &obj = objects_.at(freed->second);
        FlowFinding &f =
            emit("flow.double_free", Severity::Error, offset);
        f.addr = addr;
        f.base = obj.base;
        f.size = obj.size;
        f.allocSite = obj.alloc;
        f.freeSite = obj.freed;
        f.lifetimeEvents =
            obj.freed.eventIndex - obj.alloc.eventIndex;
        f.message = "double " + std::string(verb) + " of " +
                    hex(addr) + ": object " +
                    extent(obj.base, obj.size) + " lived " +
                    std::to_string(f.lifetimeEvents) + " event(s)";
        if (addr != obj.base)
            f.message += " (interior pointer, offset " +
                         std::to_string(addr - obj.base) + ")";
        return;
    }

    FlowFinding &f =
        emit("flow.free_unallocated", Severity::Error, offset);
    f.addr = addr;
    f.message = std::string(verb) + " of " + hex(addr) +
                " which no live or freed heap extent covers";
}

void
FlowPass::handleRealloc(Addr old_addr, Addr new_addr,
                        std::uint64_t size, std::uint64_t offset)
{
    if (size >> 63) {
        FlowFinding &f =
            emit("flow.negative_size", Severity::Error, offset);
        f.addr = new_addr;
        f.size = size;
        f.message = "realloc to " + hex(size) +
                    " bytes (negative when interpreted as ssize_t)";
        if (old_addr != kNullAddr)
            handleFree(old_addr, offset, true);
        return;
    }
    if (old_addr != kNullAddr && old_addr == new_addr) {
        // In-place resize: keep the object's identity and alloc
        // site, adjust the span, drop slots beyond the new end.
        auto it = live_.find(old_addr);
        if (it != live_.end()) {
            const std::uint64_t uid = it->second;
            const std::uint64_t span = size == 0 ? 1 : size;
            const std::uint64_t old_span = objects_.at(uid).size;
            if (span < old_span) {
                dropOutgoing(uid, span);
                clearStaleRange(old_addr + span, old_span - span);
            } else if (span > old_span) {
                // The grown tail recycles whatever sat there.
                recycleFreed(old_addr + old_span, span - old_span,
                             offset);
                consumeLive(old_addr + old_span, span - old_span,
                            offset);
            }
            objects_.at(uid).size = span;
            return;
        }
        // Resizing something that is not a live base: same taxonomy
        // as freeing it, then the extent materializes anyway.
        handleFree(old_addr, offset, true);
        if (size != 0)
            handleAlloc(new_addr, size, offset);
        return;
    }
    if (old_addr != kNullAddr)
        handleFree(old_addr, offset, true);
    if (new_addr != kNullAddr && size != 0)
        handleAlloc(new_addr, size, offset);
}

void
FlowPass::handleWrite(Addr addr, Addr value, std::uint64_t offset)
{
    checkPendingDeref(addr, offset, true);
    stale_.erase(addr); // overwriting the slot retires the taint
    auto owner = find(live_, addr);
    if (owner != live_.end()) {
        setSlot(owner->second, addr - owner->first, value);
        return;
    }

    auto freed = find(freed_, addr);
    if (freed != freed_.end()) {
        const ShadowObject &obj = objects_.at(freed->second);
        FlowFinding &f = emit("flow.write_freed",
                              relaxed(Severity::Error), offset);
        f.addr = addr;
        f.base = obj.base;
        f.size = obj.size;
        f.allocSite = obj.alloc;
        f.freeSite = obj.freed;
        f.lifetimeEvents =
            obj.freed.eventIndex - obj.alloc.eventIndex;
        f.message = "pointer write at " + hex(addr) + " lands " +
                    std::to_string(addr - obj.base) +
                    " byte(s) into freed object " +
                    extent(obj.base, obj.size) +
                    " (use-after-free write; object lived " +
                    std::to_string(f.lifetimeEvents) + " event(s))";
        return;
    }

    FlowFinding &f = emit("flow.write_unmapped",
                          relaxed(Severity::Error), offset);
    f.addr = addr;
    f.message = "pointer write at " + hex(addr) +
                " which no heap extent ever covered";
}

/**
 * If the previous memory event loaded a tainted slot and this event
 * is a write landing inside the loaded pointer's old target, the
 * program just wrote through a dangling pointer into recycled
 * memory: fire flow.dangling_edge and retire the slot's taint.
 * Reads through the stale pointer stay silent (shared-payload
 * borrows make them routine).  Armed or not, the window closes --
 * it spans exactly one memory event.
 */
void
FlowPass::checkPendingDeref(Addr addr, std::uint64_t offset,
                            bool is_write)
{
    if (!pending_.armed)
        return;
    const PendingDeref pending = pending_;
    pending_.armed = false;
    const StaleSlot &taint = pending.taint;
    if (!is_write || addr - taint.victim_base >= taint.victim_size)
        return;
    stale_.erase(pending.slot_addr);

    FlowFinding &f =
        emit("flow.dangling_edge", relaxed(Severity::Error), offset);
    f.addr = addr;
    f.base = taint.victim_base;
    f.size = taint.victim_size;
    f.allocSite = taint.victim_alloc;
    f.freeSite = taint.victim_freed;
    f.objects = 1;
    f.message =
        "write at " + hex(addr) + " through stale pointer loaded "
        "from slot " + hex(pending.slot_addr) + " at event " +
        std::to_string(pending.load_event) + ": target object " +
        extent(taint.victim_base, taint.victim_size) +
        " was freed and its extent recycled by allocation " +
        hex(taint.recycle_addr) + " at event " +
        std::to_string(taint.recycle_event);
}

/** A load of a tainted slot arms the one-event dereference window. */
void
FlowPass::handleRead(Addr addr, std::uint64_t offset)
{
    checkPendingDeref(addr, offset, false);
    auto it = stale_.find(addr);
    if (it == stale_.end())
        return;
    pending_.armed = true;
    pending_.slot_addr = addr;
    pending_.load_event = event_index_;
    pending_.taint = it->second;
}

void
FlowPass::parseFooter()
{
    std::uint64_t count = 0;
    if (scanVarint(cursor_, count) != VarintStatus::Ok)
        return;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t len = 0;
        if (scanVarint(cursor_, len) != VarintStatus::Ok)
            return;
        if (len > cursor_.remaining())
            return;
        result_.functionNames.emplace_back(cursor_.take(len));
        ++result_.stats.functions;
    }
}

void
FlowPass::reportLeaks(std::uint64_t footer_offset)
{
    struct SiteLeak
    {
        std::uint64_t objects = 0;
        std::uint64_t bytes = 0;
        FlowSite first;
        Addr first_base = kNullAddr;
    };
    std::map<FnId, SiteLeak> sites;
    for (const auto &[base, uid] : live_) {
        const ShadowObject &obj = objects_.at(uid);
        SiteLeak &leak = sites[obj.alloc.fn];
        if (leak.objects == 0) {
            leak.first = obj.alloc;
            leak.first_base = base;
        }
        ++leak.objects;
        leak.bytes += obj.size;
        ++result_.stats.liveAtExit;
        result_.stats.leakedBytes += obj.size;
    }
    if (sites.empty())
        return;

    // Rank sites by leaked bytes (ties: function id) so the heaviest
    // leak leads the report.
    std::vector<std::pair<FnId, SiteLeak>> ranked(sites.begin(),
                                                  sites.end());
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.second.bytes > b.second.bytes;
                     });
    for (const auto &[fn, leak] : ranked) {
        FlowFinding &f =
            emit("flow.leak_at_exit",
                 capture_ ? Severity::Note : Severity::Error,
                 footer_offset);
        f.addr = leak.first_base;
        f.base = leak.first_base;
        f.allocSite = leak.first;
        f.objects = leak.objects;
        f.bytes = leak.bytes;
        f.message = std::to_string(leak.objects) +
                    " object(s) totalling " +
                    std::to_string(leak.bytes) +
                    " byte(s) still live at exit, first at " +
                    hex(leak.first_base);
    }
}

FlowAnalysis
FlowPass::run()
{
    ScanCursor &c = cursor_;
    const ScannedHeader header = scanTraceHeader(c);
    if (!header.usable)
        return std::move(result_);
    capture_ = header.capture;
    result_.stats.captureProvenance = capture_;

    for (;;) {
        const std::uint64_t offset = c.offset();
        const int tag = c.get();
        if (tag < 0)
            break; // truncated: the trace linter owns the finding
        if (tag == trace::kFooterMarker) {
            result_.stats.sawFooter = true;
            reportLeaks(offset);
            parseFooter();
            break;
        }
        if (tag > static_cast<int>(EventKind::FnExit))
            break; // framing lost at an unknown tag
        std::uint64_t f[3] = {0, 0, 0};
        switch (static_cast<EventKind>(tag)) {
          case EventKind::Alloc:
            if (!readFields(f, 2))
                return std::move(result_);
            pending_.armed = false; // allocator call, not a deref
            handleAlloc(f[0], f[1], offset);
            break;
          case EventKind::Free:
            if (!readFields(f, 1))
                return std::move(result_);
            pending_.armed = false;
            handleFree(f[0], offset, false);
            break;
          case EventKind::Realloc:
            if (!readFields(f, 3))
                return std::move(result_);
            pending_.armed = false;
            handleRealloc(f[0], f[1], f[2], offset);
            break;
          case EventKind::Write:
            if (!readFields(f, 2))
                return std::move(result_);
            handleWrite(f[0], f[1], offset);
            break;
          case EventKind::Read:
            if (!readFields(f, 1))
                return std::move(result_);
            handleRead(f[0], offset);
            break;
          case EventKind::FnEnter:
            if (!readFields(f, 1))
                return std::move(result_);
            fn_stack_.push_back(static_cast<FnId>(f[0]));
            break;
          case EventKind::FnExit:
            if (!readFields(f, 1))
                return std::move(result_);
            if (!fn_stack_.empty())
                fn_stack_.pop_back();
            break;
        }
        ++event_index_;
        ++result_.stats.events;
    }
    return std::move(result_);
}

} // namespace

std::string
FlowAnalysis::fnName(FnId fn) const
{
    if (fn == kNoFunction)
        return "(no function)";
    if (fn < functionNames.size())
        return functionNames[fn];
    return "fn#" + std::to_string(fn);
}

std::string
FlowAnalysis::describeSite(const FlowSite &site) const
{
    if (!site.known)
        return "(unknown site)";
    return "event " + std::to_string(site.eventIndex) + " (byte " +
           std::to_string(site.byteOffset) + ") in " +
           fnName(site.fn);
}

FlowAnalysis
analyzeTraceFlow(std::string_view data)
{
    FlowPass pass(data);
    FlowAnalysis result = pass.run();

    // Site names live in the footer, so findings are rendered only
    // now: append the alloc/free provenance each rule promised.
    for (FlowFinding &f : result.findings) {
        if (f.allocSite.known)
            f.message += "; allocated at " +
                         result.describeSite(f.allocSite);
        if (f.freeSite.known)
            f.message +=
                "; freed at " + result.describeSite(f.freeSite);
    }
    return result;
}

FlowLintStats
lintTraceFlow(std::string_view data, Report &report,
              FlowAnalysis *analysis)
{
    FlowAnalysis result = analyzeTraceFlow(data);
    for (const FlowFinding &f : result.findings)
        report.atByte(f.severity, f.rule, f.byteOffset, f.message);
    const FlowLintStats stats = result.stats;
    if (analysis)
        *analysis = std::move(result);
    return stats;
}

FlowLintStats
lintTraceFlowFile(const std::string &path, Report &report,
                  FlowAnalysis *analysis)
{
    HEAPMD_TRACE_SPAN("audit.flow");
    HEAPMD_PHASE_SPAN_NAMED(phase, "phase.deep_audit");
    HEAPMD_COUNTER_INC("audit.flow_lints");
    const std::size_t before = report.findings().size();
    trace::FileSource source(path);
    if (!source.ok()) {
        report.error("trace.io",
                     "cannot open trace file '" + path + "'");
        HEAPMD_COUNTER_INC("audit.findings");
        return {};
    }
    const std::string_view data =
        source.size() == 0
            ? std::string_view()
            : std::string_view(
                  reinterpret_cast<const char *>(source.data()),
                  source.size());
    const FlowLintStats stats =
        lintTraceFlow(data, report, analysis);
    phase.addBytes(source.size());
    HEAPMD_COUNTER_ADD("audit.findings",
                       report.findings().size() - before);
    return stats;
}

} // namespace analysis

} // namespace heapmd
