/**
 * @file
 * Token parsing shared by the text-document linters.
 *
 * istream double extraction rejects the "nan"/"inf" spellings
 * operator<< produces, and silently accepts trailing junk after a
 * number; the auditors need the opposite on both counts.
 */

#ifndef HEAPMD_ANALYSIS_TEXT_PARSE_HH
#define HEAPMD_ANALYSIS_TEXT_PARSE_HH

#include <cstdint>
#include <cstdlib>
#include <string>

namespace heapmd
{

namespace analysis
{

/** Parse a whole token as a double; accepts nan/inf spellings. */
inline bool
parseDouble(const std::string &token, double &value)
{
    if (token.empty())
        return false;
    char *end = nullptr;
    value = std::strtod(token.c_str(), &end);
    return end == token.c_str() + token.size();
}

/** Parse a whole token as an unsigned decimal count. */
inline bool
parseCount(const std::string &token, std::uint64_t &value)
{
    if (token.empty() || token.front() == '-')
        return false;
    char *end = nullptr;
    value = std::strtoull(token.c_str(), &end, 10);
    return end == token.c_str() + token.size();
}

} // namespace analysis

} // namespace heapmd

#endif // HEAPMD_ANALYSIS_TEXT_PARSE_HH
