/**
 * @file
 * Byte-level scan helpers shared by the static trace analyzers.
 *
 * The trace linter (trace_lint.cc) and the shadow-heap flow analyzer
 * (flow_lint.cc) both walk raw HMDT bytes without building a Process;
 * this header holds the cursor, LEB128 decoder and header scanner
 * they share so the two passes cannot drift apart on framing rules.
 * Internal to src/analysis -- not installed, not part of the public
 * audit API.
 */

#ifndef HEAPMD_ANALYSIS_TRACE_SCAN_HH
#define HEAPMD_ANALYSIS_TRACE_SCAN_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "trace/trace_format.hh"

namespace heapmd
{

namespace analysis
{

/** Byte cursor over a fully-loaded trace. */
class ScanCursor
{
  public:
    explicit ScanCursor(std::string_view data)
        : data_(data)
    {
    }

    std::uint64_t offset() const { return pos_; }
    bool atEnd() const { return pos_ >= data_.size(); }
    std::uint64_t remaining() const { return data_.size() - pos_; }

    /** Next byte, or -1 at end of data. */
    int get()
    {
        if (atEnd())
            return -1;
        return static_cast<unsigned char>(data_[pos_++]);
    }

    std::string_view take(std::uint64_t n)
    {
        const std::string_view out = data_.substr(pos_, n);
        pos_ += n;
        return out;
    }

    void skip(std::uint64_t n) { pos_ += n; }

  private:
    std::string_view data_;
    std::uint64_t pos_ = 0;
};

enum class VarintStatus
{
    Ok,
    Truncated,
    Overlong,
};

/**
 * Decode one LEB128 varint.  Overlong encodings
 * (> trace::kMaxVarintBytes) are consumed to the terminating byte so
 * framing survives the finding.
 */
inline VarintStatus
scanVarint(ScanCursor &cursor, std::uint64_t &value)
{
    value = 0;
    int shift = 0;
    int length = 0;
    bool overlong = false;
    for (;;) {
        const int ch = cursor.get();
        if (ch < 0)
            return VarintStatus::Truncated;
        ++length;
        if (length > trace::kMaxVarintBytes)
            overlong = true;
        else if (shift < 64)
            value |= (static_cast<std::uint64_t>(ch) & 0x7F) << shift;
        shift += 7;
        if ((ch & 0x80) == 0)
            break;
    }
    return overlong ? VarintStatus::Overlong : VarintStatus::Ok;
}

/** Outcome of scanning an HMDT header in place. */
struct ScannedHeader
{
    bool usable = false;         //!< header decoded to a known version
    std::uint32_t version = 0;   //!< declared version when readable
    bool capture = false;        //!< live-capture provenance flag
    const char *rule = nullptr;  //!< lint rule id on failure
    std::uint64_t offset = 0;    //!< byte offset of the failure
    std::string message;         //!< failure description
};

/**
 * Scan the trace header at the cursor (which must sit at offset 0).
 * Consumes exactly the header bytes on success; on failure the
 * returned rule/offset/message describe the defect in trace-lint
 * vocabulary.
 */
inline ScannedHeader
scanTraceHeader(ScanCursor &cursor)
{
    ScannedHeader out;
    if (cursor.remaining() < 8) {
        out.rule = "trace.bad-magic";
        out.offset = 0;
        out.message = "file too short for the 8-byte header";
        return out;
    }
    std::uint32_t magic = 0;
    for (int i = 0; i < 4; ++i)
        magic |= static_cast<std::uint32_t>(cursor.get()) << (8 * i);
    if (magic != trace::kMagic) {
        out.rule = "trace.bad-magic";
        out.offset = 0;
        char buf[64];
        std::snprintf(buf, sizeof buf,
                      "bad magic 0x%x (expected 0x%x \"HMDT\")", magic,
                      trace::kMagic);
        out.message = buf;
        return out;
    }
    std::uint32_t version = 0;
    for (int i = 0; i < 4; ++i)
        version |= static_cast<std::uint32_t>(cursor.get()) << (8 * i);
    out.version = version;
    if (version != trace::kVersion &&
        version != trace::kVersionFlags) {
        out.rule = "trace.bad-version";
        out.offset = 4;
        out.message = "unsupported trace version " +
                      std::to_string(version) + " (expected " +
                      std::to_string(trace::kVersion) + " or " +
                      std::to_string(trace::kVersionFlags) + ")";
        return out;
    }
    if (version == trace::kVersionFlags) {
        if (cursor.remaining() < 4) {
            out.rule = "trace.bad-version";
            out.offset = 8;
            out.message =
                "version-2 header is missing its flags word";
            return out;
        }
        std::uint32_t flags = 0;
        for (int i = 0; i < 4; ++i)
            flags |=
                static_cast<std::uint32_t>(cursor.get()) << (8 * i);
        out.capture = (flags & trace::kFlagCaptureProvenance) != 0;
    }
    out.usable = true;
    return out;
}

} // namespace analysis

} // namespace heapmd

#endif // HEAPMD_ANALYSIS_TRACE_SCAN_HH
