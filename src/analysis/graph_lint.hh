/**
 * @file
 * Structural invariant checker for heap-graph snapshot documents.
 *
 * Re-parses the format of heapgraph/graph_snapshot.hh leniently and
 * cross-checks every redundant layer of the document against the
 * others: the edge list against the per-vertex declared degrees
 * (in/out degree conservation), edge endpoints against the vertex set
 * (no dangling targets), the degree histogram against a recount from
 * the declared degrees (totals equal vertex count), and the seven
 * paper metrics against a recomputation from the histogram (within
 * epsilon).  Findings carry 1-based line numbers.
 *
 * Rule catalog (see DESIGN.md, "The audit subsystem"):
 *   graph.io               unreadable input file
 *   graph.bad-header       first line is not "heapmd-graph v1"
 *   graph.syntax           malformed or unknown line
 *   graph.duplicate        vertex id or edge declared twice
 *   graph.count-mismatch   declared vertex/edge counts != actual
 *   graph.dangling-edge    edge endpoint is not a declared vertex
 *   graph.degree-mismatch  declared degrees disagree with the edge
 *                          list, or sum(indeg) != sum(outdeg) != M
 *   graph.extent-overlap   two vertices with overlapping extents
 *   graph.zero-extent      vertex with size 0
 *   graph.histogram        histogram disagrees with a degree recount
 *   graph.metric-recompute metric value not recomputable from the
 *                          histogram within epsilon
 *   graph.no-end           document missing the "end" terminator
 */

#ifndef HEAPMD_ANALYSIS_GRAPH_LINT_HH
#define HEAPMD_ANALYSIS_GRAPH_LINT_HH

#include <istream>
#include <string>

#include "analysis/report.hh"

namespace heapmd
{

namespace analysis
{

/** Tolerance for metric recomputation from the histogram. */
inline constexpr double kMetricEpsilon = 1e-6;

/** Scan statistics of one graph lint pass. */
struct GraphLintStats
{
    std::size_t lines = 0;    //!< lines scanned
    std::size_t vertices = 0; //!< vertex lines seen
    std::size_t edges = 0;    //!< edge lines seen
};

/** Lint one snapshot document from @p is. */
GraphLintStats lintGraph(std::istream &is, Report &report);

/** Lint the snapshot file at @p path. */
GraphLintStats lintGraphFile(const std::string &path, Report &report);

} // namespace analysis

} // namespace heapmd

#endif // HEAPMD_ANALYSIS_GRAPH_LINT_HH
