/**
 * @file
 * Static linter for HMDT trace files.
 *
 * Validates a recorded trace against the format spec in
 * trace/trace_format.hh without replaying it into a Process: header
 * magic and version, LEB128 well-formedness (truncation and overlong
 * >10-byte encodings), event-tag validity, footer presence, function
 * table id continuity, and event-ordering invariants (no
 * free-before-alloc, no pointer-write into a freed object, no
 * overlapping live extents).  Findings carry byte offsets into the
 * trace.
 *
 * Rule catalog (see DESIGN.md, "The audit subsystem"):
 *   trace.io                unreadable input file
 *   trace.bad-magic         first 4 bytes are not "HMDT"
 *   trace.bad-version       version word not a known version (1 or 2)
 *   trace.unknown-tag       event tag outside the EventKind range
 *   trace.varint-truncated  stream ends inside a LEB128 varint
 *   trace.varint-overlong   LEB128 varint longer than 10 bytes
 *   trace.no-footer         stream ends before the 0xFF footer marker
 *   trace.footer-truncated  stream ends inside the function table
 *   trace.fn-id-range       FnEnter/FnExit id >= function table size
 *   trace.zero-alloc        allocation event with size 0
 *   trace.alloc-overlap     allocation overlapping a live extent
 *   trace.free-before-alloc free/realloc of a non-live address
 *   trace.write-after-free  pointer-write into a freed extent
 *   trace.trailing-bytes    bytes after the function table (warning)
 *   trace.segment-gap       rotating segment set has a missing or
 *                           out-of-order segment index
 *
 * Capture provenance: when the version-2 header carries the
 * live-capture flag, the truncation family (trace.no-footer,
 * trace.footer-truncated, and a trace.varint-truncated that ends the
 * stream) is downgraded to warnings -- a preloaded child killed by
 * SIGKILL or _exit() legitimately leaves a truncated-but-lintable
 * trace.  Structural rules (overlaps, double frees, unknown tags)
 * stay errors regardless of provenance.
 */

#ifndef HEAPMD_ANALYSIS_TRACE_LINT_HH
#define HEAPMD_ANALYSIS_TRACE_LINT_HH

#include <cstdint>
#include <istream>
#include <string>
#include <string_view>

#include "analysis/report.hh"

namespace heapmd
{

namespace analysis
{

/** Scan statistics of one trace lint pass. */
struct TraceLintStats
{
    std::uint64_t bytes = 0;     //!< total bytes scanned
    std::uint64_t events = 0;    //!< events decoded (well-formed ones)
    std::uint64_t functions = 0; //!< names in the function table
    std::uint64_t segments = 0;  //!< files linted (1 for a monolith)
    bool captureProvenance = false; //!< header's live-capture flag
};

/**
 * Lint one trace from an in-memory buffer (zero-copy: the view is
 * only read, never retained past the call).
 *
 * Keeps scanning after recoverable findings (event-ordering
 * violations, overlong varints) and stops only when framing is lost
 * (unknown tag) or the stream ends.
 */
TraceLintStats lintTrace(std::string_view data, Report &report);

/** Lint a trace read fully from @p is (binary). */
TraceLintStats lintTrace(std::istream &is, Report &report);

/**
 * Lint the trace file at @p path.  The file is mapped read-only
 * (trace::FileSource) and linted in place, so pre-flighting a large
 * trace costs no buffering copy.
 */
TraceLintStats lintTraceFile(const std::string &path, Report &report);

/**
 * Lint a rotating segment set (trace::segmentPath naming) rooted at
 * @p base as one logical trace.
 *
 * Each segment is linted with full per-file framing checks (its own
 * header, footer, and function table), while the live/freed extent
 * state carries *across* segments -- an object allocated in segment 0
 * and freed in segment 2 lints clean, exactly as it would in the
 * concatenated event stream.  Segment-set-specific rules:
 *
 *  - trace.segment-gap: a missing or out-of-order index (the extent
 *    state is reset at the gap so later segments are still checked
 *    for framing without cascading false ordering findings);
 *  - truncation in a non-final segment is always an error, capture
 *    provenance or not: the rotation protocol finalizes a segment
 *    before creating its successor, so only the newest file may be
 *    legitimately cut short.
 */
TraceLintStats lintSegmentSet(const std::string &base,
                              Report &report);

} // namespace analysis

} // namespace heapmd

#endif // HEAPMD_ANALYSIS_TRACE_LINT_HH
