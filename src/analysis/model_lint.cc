#include "analysis/model_lint.hh"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "analysis/text_parse.hh"
#include "metrics/metric.hh"
#include "telemetry/telemetry.hh"

namespace heapmd
{

namespace analysis
{

namespace
{

/** One parsed "metric" line. */
struct ParsedEntry
{
    std::string name;
    bool local = false;
    double minValue = 0.0;
    double maxValue = 0.0;
    double avgChange = 0.0;
    double stdDev = 0.0;
    std::uint64_t stableRuns = 0;
};

/** @return false on a syntax error (reported by the caller). */
bool
parseMetricLine(std::istringstream &ls, ParsedEntry &entry)
{
    std::string token;
    if (!(ls >> entry.name) || !(ls >> token))
        return false;
    if (token == "kind") { // current format; legacy omits the field
        std::string kind;
        if (!(ls >> kind) || !(ls >> token))
            return false;
        if (kind != "local" && kind != "global")
            return false;
        entry.local = kind == "local";
    }
    if (token != "min")
        return false;

    const struct
    {
        const char *key;
        double *value;
    } fields[] = {
        {"max", &entry.maxValue},
        {"avg", &entry.avgChange},
        {"std", &entry.stdDev},
    };
    std::string value;
    if (!(ls >> value) || !parseDouble(value, entry.minValue))
        return false;
    for (const auto &field : fields) {
        if (!(ls >> token) || token != field.key)
            return false;
        if (!(ls >> value) || !parseDouble(value, *field.value))
            return false;
    }
    if (!(ls >> token) || token != "stable_runs")
        return false;
    if (!(ls >> value) || !parseCount(value, entry.stableRuns))
        return false;
    return true;
}

/** Document-wide lint state. */
struct Linter
{
    Report &report;
    const StabilityThresholds &thresholds;
    ModelLintStats stats;

    std::set<std::string> calibrated;
    std::set<std::string> unstable;
    std::uint64_t trainingRuns = 0;
    bool sawRuns = false;
    std::vector<std::pair<std::uint64_t, ParsedEntry>> entries;

    Linter(Report &rep, const StabilityThresholds &thr)
        : report(rep), thresholds(thr)
    {
    }

    void checkEntry(std::uint64_t line_no, const ParsedEntry &e);
    void finish(bool saw_end, std::uint64_t end_line);
};

void
Linter::checkEntry(std::uint64_t line_no, const ParsedEntry &e)
{
    if (!tryMetricFromName(e.name)) {
        report.errorAtLine("model.unknown-metric", line_no,
                           "unknown metric name '" + e.name + "'");
    }
    if (!calibrated.insert(e.name).second) {
        report.errorAtLine("model.duplicate-metric", line_no,
                           "metric '" + e.name +
                               "' calibrated more than once");
    }

    const struct
    {
        const char *field;
        double value;
    } numeric[] = {
        {"min", e.minValue},
        {"max", e.maxValue},
        {"avg", e.avgChange},
        {"std", e.stdDev},
    };
    bool finite = true;
    for (const auto &[field, value] : numeric) {
        if (!std::isfinite(value)) {
            report.errorAtLine("model.non-finite", line_no,
                               std::string(field) + " of metric '" +
                                   e.name + "' is not finite");
            finite = false;
        }
    }
    if (!finite)
        return; // range/threshold checks are meaningless on NaN/inf

    if (e.minValue > e.maxValue) {
        std::ostringstream oss;
        oss << "metric '" << e.name << "' has min " << e.minValue
            << " > max " << e.maxValue;
        report.errorAtLine("model.range-inverted", line_no, oss.str());
    }
    // All seven metrics are percentages of live vertices.
    if (e.minValue < 0.0 || e.maxValue > 100.0) {
        std::ostringstream oss;
        oss << "calibrated range [" << e.minValue << ", "
            << e.maxValue << "] of metric '" << e.name
            << "' leaves the 0..100 percentage domain";
        report.errorAtLine("model.threshold-bounds", line_no,
                           oss.str());
    }
    if (std::abs(e.avgChange) > thresholds.maxAbsAvgChange) {
        std::ostringstream oss;
        oss << "avg change " << e.avgChange << " of metric '"
            << e.name << "' exceeds the stability threshold of +/-"
            << thresholds.maxAbsAvgChange << '%';
        report.errorAtLine("model.threshold-bounds", line_no,
                           oss.str());
    }
    const double std_bound = e.local ? thresholds.locallyStableStdDev
                                     : thresholds.maxStdDev;
    if (e.stdDev < 0.0 || e.stdDev > std_bound) {
        std::ostringstream oss;
        oss << "change stddev " << e.stdDev << " of "
            << (e.local ? "locally" : "globally")
            << " stable metric '" << e.name
            << "' is outside [0, " << std_bound << ']';
        report.errorAtLine("model.threshold-bounds", line_no,
                           oss.str());
    }
    if (e.stableRuns == 0) {
        report.errorAtLine("model.stable-runs", line_no,
                           "metric '" + e.name +
                               "' calibrated over 0 stable runs");
    }
}

void
Linter::finish(bool saw_end, std::uint64_t end_line)
{
    if (!saw_end) {
        report.errorAtLine("model.no-end", end_line,
                           "document missing the 'end' terminator");
    }
    for (const auto &[line_no, e] : entries) {
        if (unstable.count(e.name) != 0) {
            report.errorAtLine("model.duplicate-metric", line_no,
                               "metric '" + e.name +
                                   "' is both calibrated and listed "
                                   "as never-stable");
        }
        if (sawRuns && e.stableRuns > trainingRuns) {
            report.errorAtLine(
                "model.stable-runs", line_no,
                "metric '" + e.name + "' claims " +
                    std::to_string(e.stableRuns) +
                    " stable runs out of only " +
                    std::to_string(trainingRuns) + " training runs");
        }
    }
    if (entries.empty()) {
        report.error("model.empty-stable-set",
                     "no metric was calibrated; the model cannot "
                     "detect anything");
    }
    if (sawRuns && trainingRuns == 0) {
        report.warning("model.stable-runs",
                       "model declares 0 training runs");
    }
}

} // namespace

ModelLintStats
lintModel(std::istream &is, Report &report,
          const StabilityThresholds &thresholds)
{
    Linter linter(report, thresholds);
    std::string line;
    std::uint64_t line_no = 0;

    if (!std::getline(is, line) || line != "heapmd-model v1") {
        report.errorAtLine("model.bad-header", 1,
                           "first line is not 'heapmd-model v1'");
        linter.stats.lines = line_no;
        return linter.stats;
    }
    ++line_no;

    bool saw_end = false;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "program") {
            // Free-form remainder; nothing to validate.
        } else if (key == "runs") {
            std::string value;
            if (!(ls >> value) ||
                !parseCount(value, linter.trainingRuns)) {
                report.errorAtLine("model.syntax", line_no,
                                   "malformed runs line: " + line);
            } else {
                linter.sawRuns = true;
            }
        } else if (key == "metric") {
            ParsedEntry entry;
            if (!parseMetricLine(ls, entry)) {
                report.errorAtLine("model.syntax", line_no,
                                   "malformed metric line: " + line);
            } else {
                ++linter.stats.stableMetrics;
                linter.checkEntry(line_no, entry);
                linter.entries.emplace_back(line_no, entry);
            }
        } else if (key == "unstable") {
            std::string name;
            if (!(ls >> name)) {
                report.errorAtLine("model.syntax", line_no,
                                   "malformed unstable line");
            } else {
                ++linter.stats.unstableMetrics;
                if (!tryMetricFromName(name)) {
                    report.errorAtLine("model.unknown-metric",
                                       line_no,
                                       "unknown metric name '" +
                                           name + "'");
                }
                if (!linter.unstable.insert(name).second) {
                    report.errorAtLine("model.duplicate-metric",
                                       line_no,
                                       "metric '" + name +
                                           "' listed as never-stable "
                                           "twice");
                }
            }
        } else if (key == "end") {
            saw_end = true;
            if (std::getline(is, line) && !line.empty()) {
                report.warningAtLine("model.syntax", line_no + 1,
                                     "content after 'end'");
            }
            break;
        } else {
            report.errorAtLine("model.syntax", line_no,
                               "unknown model key '" + key + "'");
        }
    }

    linter.finish(saw_end, line_no + 1);
    linter.stats.lines = line_no;
    return linter.stats;
}

ModelLintStats
lintModelFile(const std::string &path, Report &report,
              const StabilityThresholds &thresholds)
{
    HEAPMD_TRACE_SPAN("audit.model");
    HEAPMD_COUNTER_INC("audit.model_lints");
    const std::size_t before = report.findings().size();
    std::ifstream in(path);
    if (!in) {
        report.error("model.io",
                     "cannot open model file '" + path + "'");
        HEAPMD_COUNTER_INC("audit.findings");
        return {};
    }
    const ModelLintStats stats = lintModel(in, report, thresholds);
    HEAPMD_COUNTER_ADD("audit.findings",
                       report.findings().size() - before);
    return stats;
}

} // namespace analysis

} // namespace heapmd
