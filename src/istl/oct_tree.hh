/**
 * @file
 * Instrumented oct-tree (the Section 4.3 "oct-DAG" structure).
 */

#ifndef HEAPMD_ISTL_OCT_TREE_HH
#define HEAPMD_ISTL_OCT_TREE_HH

#include <cstdint>
#include <vector>

#include "istl/context.hh"
#include "support/types.hh"

namespace heapmd
{

namespace istl
{

/**
 * Oct-tree with eight child pointers per node and no parent pointers
 * (as in spatial-partitioning game code).
 *
 * Node layout (80 bytes): eight child pointers at +0..+56, two data
 * words at +64/+72.  Every non-root node normally has indegree
 * exactly 1, so the %indegree=1 metric on an oct-tree-heavy heap is
 * high and stable.
 *
 * Injection site: FaultKind::OctTreeDag makes build() reuse an
 * already-built subtree instead of allocating a new child -- "a
 * mistake in an oct-tree construction routine that produced an
 * oct-DAG instead" (Section 4.3).  Shared nodes acquire indegree
 * >= 2, pinning %indegree=1 at a stable minimum extreme: the paper's
 * only *poorly disguised* bug.
 */
class OctTree
{
  public:
    static constexpr std::uint64_t kNodeSize = 80;
    static constexpr std::uint64_t kChildOff = 0; //!< 8 slots
    static constexpr std::uint64_t kDataOff = 64;
    static constexpr std::uint32_t kFanout = 8;

    explicit OctTree(Context &ctx);
    ~OctTree();

    OctTree(const OctTree &) = delete;
    OctTree &operator=(const OctTree &) = delete;

    /**
     * Build a tree of the given depth; each child slot is populated
     * with probability @p branch_prob.  Replaces any existing tree.
     */
    void build(std::uint32_t depth, double branch_prob = 0.85);

    /**
     * Build breadth-first until roughly @p node_budget nodes are
     * allocated (exact up to the last level).  Branching processes
     * have enormous size variance; spatial partitioning code sizes
     * its tree to the scene, so workloads use this deterministic
     * variant.  Injection site for OctTreeDag, as with build().
     */
    void buildBudget(std::uint64_t node_budget,
                     double branch_prob = 0.85);

    /** Touch every reachable node once (DAG-safe). */
    void traverse();

    /** Free every node (DAG- and double-free-safe by construction). */
    void clear();

    /** Nodes allocated by the last build(). */
    std::uint64_t size() const { return nodes_.size(); }

    Addr root() const { return root_; }

  private:
    Addr buildRec(std::uint32_t depth, double branch_prob);

    Context &ctx_;
    Addr root_ = kNullAddr;
    /** All allocated nodes (each exactly once, even when shared). */
    std::vector<Addr> nodes_;
    /** Recently built subtrees, per depth, for DAG sharing. */
    std::vector<std::vector<Addr>> share_pool_;
    FnId fn_build_, fn_traverse_, fn_clear_;
};

} // namespace istl

} // namespace heapmd

#endif // HEAPMD_ISTL_OCT_TREE_HH
