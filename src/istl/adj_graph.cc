#include "istl/adj_graph.hh"

#include <algorithm>

namespace heapmd
{

namespace istl
{

AdjGraph::AdjGraph(Context &ctx, std::uint64_t payload_size)
    : ctx_(ctx), payload_size_(payload_size),
      fn_add_vertex_(ctx.heap.intern("AdjGraph::addVertex")),
      fn_add_edge_(ctx.heap.intern("AdjGraph::addEdge")),
      fn_remove_edge_(ctx.heap.intern("AdjGraph::removeFirstEdge")),
      fn_build_(ctx.heap.intern("AdjGraph::buildRandom")),
      fn_traverse_(ctx.heap.intern("AdjGraph::traverse")),
      fn_clear_(ctx.heap.intern("AdjGraph::clear"))
{
}

AdjGraph::~AdjGraph()
{
    clear();
}

Addr
AdjGraph::addVertex()
{
    FunctionScope scope(ctx_.heap, fn_add_vertex_);
    const Addr vertex = ctx_.heap.malloc(kVertexSize);
    if (payload_size_ > 0) {
        const Addr payload = ctx_.heap.malloc(payload_size_);
        ctx_.heap.storePtr(vertex + kVPayloadOff, payload);
    }
    vertices_.push_back(vertex);
    return vertex;
}

void
AdjGraph::addEdge(Addr u, Addr v)
{
    FunctionScope scope(ctx_.heap, fn_add_edge_);
    const Addr edge = ctx_.heap.malloc(kEdgeSize);
    ctx_.heap.storePtr(edge + kTargetOff, v);
    const Addr head = ctx_.heap.loadPtr(u + kEdgeHeadOff);
    ctx_.heap.storePtr(edge + kENextOff, head);
    ctx_.heap.storePtr(u + kEdgeHeadOff, edge);
    ++edge_count_;
}

void
AdjGraph::removeFirstEdge(Addr u)
{
    FunctionScope scope(ctx_.heap, fn_remove_edge_);
    const Addr edge = ctx_.heap.loadPtr(u + kEdgeHeadOff);
    if (edge == kNullAddr)
        return;
    const Addr next = ctx_.heap.loadPtr(edge + kENextOff);
    ctx_.heap.storePtr(u + kEdgeHeadOff, next);
    ctx_.heap.free(edge);
    if (edge_count_ > 0)
        --edge_count_;
}

void
AdjGraph::buildRandom(std::uint64_t vertex_count, double avg_degree)
{
    FunctionScope scope(ctx_.heap, fn_build_);
    const std::size_t base = vertices_.size();
    for (std::uint64_t i = 0; i < vertex_count; ++i)
        addVertex();

    const std::uint64_t edges = static_cast<std::uint64_t>(
        static_cast<double>(vertex_count) * avg_degree);
    const bool degenerate = ctx_.fire(FaultKind::LocalizationBug);
    const Addr hub = vertices_[base];
    for (std::uint64_t e = 0; e < edges; ++e) {
        Addr u;
        if (degenerate) {
            // BUG (injected): the localization logic collapses and
            // almost every edge hangs off one hub vertex.
            u = ctx_.rng.chance(0.95)
                    ? hub
                    : vertices_[base + ctx_.rng.below(vertex_count)];
        } else {
            u = vertices_[base + ctx_.rng.below(vertex_count)];
        }
        const Addr v =
            vertices_[base + ctx_.rng.below(vertex_count)];
        addEdge(u, v);
    }
}

void
AdjGraph::traverse()
{
    FunctionScope scope(ctx_.heap, fn_traverse_);
    for (Addr vertex : vertices_) {
        ctx_.heap.touch(vertex);
        Addr edge = ctx_.heap.loadPtr(vertex + kEdgeHeadOff);
        std::uint64_t guard = edge_count_ + 16;
        while (edge != kNullAddr && guard-- > 0) {
            ctx_.heap.touch(edge);
            edge = ctx_.heap.loadPtr(edge + kENextOff);
        }
    }
}

void
AdjGraph::traverseSample(std::uint64_t max_vertices)
{
    if (vertices_.empty())
        return;
    FunctionScope scope(ctx_.heap, fn_traverse_);
    const std::uint64_t n =
        std::min<std::uint64_t>(max_vertices, vertices_.size());
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr vertex = vertices_[ctx_.rng.below(vertices_.size())];
        ctx_.heap.touch(vertex);
        Addr edge = ctx_.heap.loadPtr(vertex + kEdgeHeadOff);
        std::uint64_t guard = 64;
        while (edge != kNullAddr && guard-- > 0) {
            ctx_.heap.touch(edge);
            edge = ctx_.heap.loadPtr(edge + kENextOff);
        }
    }
}

void
AdjGraph::clear()
{
    if (vertices_.empty())
        return;
    FunctionScope scope(ctx_.heap, fn_clear_);
    for (Addr vertex : vertices_) {
        Addr edge = ctx_.heap.loadPtr(vertex + kEdgeHeadOff);
        std::uint64_t guard = edge_count_ + 16;
        while (edge != kNullAddr && guard-- > 0) {
            const Addr next = ctx_.heap.loadPtr(edge + kENextOff);
            ctx_.heap.free(edge);
            edge = next;
        }
        const Addr payload = ctx_.heap.loadPtr(vertex + kVPayloadOff);
        if (payload != kNullAddr)
            ctx_.heap.free(payload);
        ctx_.heap.free(vertex);
    }
    vertices_.clear();
    edge_count_ = 0;
}

} // namespace istl

} // namespace heapmd
