/**
 * @file
 * Instrumented descriptor table (the Figure 11 structure).
 */

#ifndef HEAPMD_ISTL_DESCRIPTOR_TABLE_HH
#define HEAPMD_ISTL_DESCRIPTOR_TABLE_HH

#include <cstdint>

#include "istl/context.hh"
#include "istl/dll.hh"
#include "support/types.hh"

namespace heapmd
{

namespace istl
{

/**
 * An array object of pointer slots, each optionally holding a
 * separately allocated property descriptor -- the pTableDesc[] of
 * Figure 11.
 *
 * Injection site: FaultKind::TypoLeak in transfer(): the code copies
 * pTableDesc[i] (wrong index) into the consumer list while nulling
 * pTableDesc[j], leaking the descriptor that slot j owned.
 */
class DescriptorTable
{
  public:
    /**
     * @param ctx        shared instrumentation context.
     * @param slot_count pointer slots in the table object.
     * @param desc_size  bytes per descriptor object.
     */
    DescriptorTable(Context &ctx, std::uint64_t slot_count,
                    std::uint64_t desc_size);
    ~DescriptorTable();

    DescriptorTable(const DescriptorTable &) = delete;
    DescriptorTable &operator=(const DescriptorTable &) = delete;

    /** Allocate a descriptor into slot @p index (frees any old one). */
    void populate(std::uint64_t index);

    /**
     * Move slot @p index's descriptor into @p sink (the Figure 11
     * code path; injection site for TypoLeak).
     * @return the address of the descriptor that was *leaked* by an
     *         injected typo, or kNullAddr when the transfer was
     *         correct or the slot was empty.
     */
    Addr transfer(std::uint64_t index, Dll &sink);

    /** Descriptor currently in slot @p index (kNullAddr if empty). */
    Addr descriptorAt(std::uint64_t index);

    /** Touch the table and every live descriptor. */
    void touchAll();

    /** Free all descriptors (the table object stays). */
    void clear();

    std::uint64_t slotCount() const { return slot_count_; }

    /** The table object's address. */
    Addr table() const { return table_; }

  private:
    Addr slotAddr(std::uint64_t index) const;

    Context &ctx_;
    std::uint64_t slot_count_;
    std::uint64_t desc_size_;
    Addr table_ = kNullAddr;
    FnId fn_populate_, fn_transfer_, fn_clear_;
};

} // namespace istl

} // namespace heapmd

#endif // HEAPMD_ISTL_DESCRIPTOR_TABLE_HH
