#include "istl/dll.hh"

namespace heapmd
{

namespace istl
{

Dll::Dll(Context &ctx, std::uint64_t payload_size)
    : ctx_(ctx), payload_size_(payload_size),
      fn_push_(ctx.heap.intern("Dll::push")),
      fn_insert_(ctx.heap.intern("Dll::insertAfter")),
      fn_remove_(ctx.heap.intern("Dll::remove")),
      fn_traverse_(ctx.heap.intern("Dll::traverse")),
      fn_clear_(ctx.heap.intern("Dll::clear"))
{
}

Dll::~Dll()
{
    clear();
}

Addr
Dll::allocNode()
{
    const Addr node = ctx_.heap.malloc(kNodeSize);
    if (payload_size_ > 0) {
        const Addr payload = ctx_.heap.malloc(payload_size_);
        ctx_.heap.storePtr(node + kPayloadOff, payload);
    }
    // Non-pointer data traffic, as a real program would produce.
    ctx_.heap.storeData(node + kDataOff + 8, ctx_.rng() & 0xFFFF);
    return node;
}

void
Dll::freeNode(Addr node)
{
    if (cursor_ == node)
        cursor_ = kNullAddr; // don't chase a freed (reusable) address
    const Addr payload = ctx_.heap.loadPtr(node + kPayloadOff);
    const Addr shared_flag = ctx_.heap.loadPtr(node + kDataOff);
    if (payload != kNullAddr) {
        if (shared_flag == 0) {
            ctx_.heap.free(payload); // owned: release with the node
        } else if (ctx_.fire(FaultKind::SharedStateFree)) {
            // BUG (injected): payload is shared with another owner,
            // freeing it here leaves that owner dangling.
            ctx_.heap.free(payload);
        }
    }
    ctx_.heap.free(node);
}

Addr
Dll::pushBack()
{
    FunctionScope scope(ctx_.heap, fn_push_);
    const Addr node = allocNode();
    if (tail_ == kNullAddr) {
        head_ = tail_ = node;
    } else {
        ctx_.heap.storePtr(tail_ + kNextOff, node);
        ctx_.heap.storePtr(node + kPrevOff, tail_);
        tail_ = node;
    }
    ++size_;
    return node;
}

Addr
Dll::pushFront()
{
    FunctionScope scope(ctx_.heap, fn_push_);
    const Addr node = allocNode();
    if (head_ == kNullAddr) {
        head_ = tail_ = node;
    } else {
        ctx_.heap.storePtr(node + kNextOff, head_);
        ctx_.heap.storePtr(head_ + kPrevOff, node);
        head_ = node;
    }
    ++size_;
    return node;
}

Addr
Dll::insertAtCursor(std::uint64_t advance)
{
    if (head_ == kNullAddr)
        return pushBack();
    if (cursor_ == kNullAddr)
        cursor_ = head_;
    for (std::uint64_t i = 0; i < advance; ++i) {
        const Addr next = ctx_.heap.loadPtr(cursor_ + kNextOff);
        cursor_ = next != kNullAddr ? next : head_;
    }
    return insertAfter(cursor_);
}

Addr
Dll::insertAfter(Addr node)
{
    if (node == kNullAddr || head_ == kNullAddr)
        return pushBack();

    FunctionScope scope(ctx_.heap, fn_insert_);
    const Addr fresh = allocNode();
    const Addr succ = ctx_.heap.loadPtr(node + kNextOff);

    // The Figure 1 code path:
    //   pNewAsset->next = pAssetList->next;
    //   pAssetList->next = pNewAsset;
    ctx_.heap.storePtr(fresh + kNextOff, succ);
    ctx_.heap.storePtr(node + kNextOff, fresh);

    if (ctx_.fire(FaultKind::DllMissingPrev)) {
        // BUG (injected): "prev pointers are not correctly updated
        // here" -- the new node keeps indegree 1.
    } else {
        ctx_.heap.storePtr(fresh + kPrevOff, node);
        if (succ != kNullAddr)
            ctx_.heap.storePtr(succ + kPrevOff, fresh);
    }

    if (succ == kNullAddr)
        tail_ = fresh;
    ++size_;
    return fresh;
}

void
Dll::popFront()
{
    if (head_ == kNullAddr)
        return;
    FunctionScope scope(ctx_.heap, fn_remove_);
    const Addr node = head_;
    const Addr succ = ctx_.heap.loadPtr(node + kNextOff);
    head_ = succ;
    if (succ != kNullAddr)
        ctx_.heap.storePtr(succ + kPrevOff, kNullAddr);
    else
        tail_ = kNullAddr;
    freeNode(node);
    if (size_ > 0)
        --size_;
}

void
Dll::remove(Addr node)
{
    if (node == kNullAddr)
        return;
    FunctionScope scope(ctx_.heap, fn_remove_);
    const Addr prev = ctx_.heap.loadPtr(node + kPrevOff);
    const Addr next = ctx_.heap.loadPtr(node + kNextOff);
    if (prev != kNullAddr)
        ctx_.heap.storePtr(prev + kNextOff, next);
    else if (head_ == node)
        head_ = next;
    if (next != kNullAddr)
        ctx_.heap.storePtr(next + kPrevOff, prev);
    else if (tail_ == node)
        tail_ = prev;
    freeNode(node);
    if (size_ > 0)
        --size_;
}

void
Dll::sharePayload(Addr node, Addr payload)
{
    const Addr old = ctx_.heap.loadPtr(node + kPayloadOff);
    const Addr shared_flag = ctx_.heap.loadPtr(node + kDataOff);
    if (old != kNullAddr && shared_flag == 0)
        ctx_.heap.free(old);
    ctx_.heap.storePtr(node + kPayloadOff, payload);
    ctx_.heap.storePtr(node + kDataOff, 1); // mark shared
}

void
Dll::adoptPayload(Addr node, Addr payload)
{
    const Addr old = ctx_.heap.loadPtr(node + kPayloadOff);
    const Addr shared_flag = ctx_.heap.loadPtr(node + kDataOff);
    if (old != kNullAddr && shared_flag == 0)
        ctx_.heap.free(old);
    ctx_.heap.storePtr(node + kPayloadOff, payload);
    ctx_.heap.storePtr(node + kDataOff, kNullAddr); // mark owned
}

void
Dll::traverse()
{
    FunctionScope scope(ctx_.heap, fn_traverse_);
    Addr node = head_;
    std::uint64_t guard = size_ * 2 + 16;
    while (node != kNullAddr && guard-- > 0) {
        ctx_.heap.touch(node);
        const Addr payload = ctx_.heap.loadPtr(node + kPayloadOff);
        if (payload != kNullAddr)
            ctx_.heap.touch(payload);
        node = ctx_.heap.loadPtr(node + kNextOff);
    }
}

Addr
Dll::nodeAt(std::uint64_t index)
{
    Addr node = head_;
    while (node != kNullAddr && index-- > 0)
        node = ctx_.heap.loadPtr(node + kNextOff);
    return node;
}

void
Dll::clear()
{
    FunctionScope scope(ctx_.heap, fn_clear_);
    std::uint64_t guard = size_ + 16;
    while (head_ != kNullAddr && guard-- > 0)
        popFront();
    head_ = tail_ = cursor_ = kNullAddr;
    size_ = 0;
}

} // namespace istl

} // namespace heapmd
