#include "istl/binary_tree.hh"

namespace heapmd
{

namespace istl
{

namespace
{

/** Bound on traversal depth so corrupted trees cannot loop forever. */
constexpr std::uint32_t kDepthGuard = 512;

} // namespace

BinaryTree::BinaryTree(Context &ctx, std::uint64_t payload_size)
    : ctx_(ctx), payload_size_(payload_size),
      fn_insert_(ctx.heap.intern("BinaryTree::insert")),
      fn_splice_(ctx.heap.intern("BinaryTree::spliceAbove")),
      fn_find_(ctx.heap.intern("BinaryTree::find")),
      fn_remove_(ctx.heap.intern("BinaryTree::removeLeaf")),
      fn_build_(ctx.heap.intern("BinaryTree::buildFull")),
      fn_traverse_(ctx.heap.intern("BinaryTree::traverse")),
      fn_clear_(ctx.heap.intern("BinaryTree::clear"))
{
}

BinaryTree::~BinaryTree()
{
    clear();
}

Addr
BinaryTree::allocNode(std::uint64_t key)
{
    const Addr node = ctx_.heap.malloc(kNodeSize);
    ctx_.heap.storeData(node + kKeyOff, key);
    key_shadow_[node] = key;
    if (payload_size_ > 0) {
        const Addr payload = ctx_.heap.malloc(payload_size_);
        ctx_.heap.storePtr(node + kPayloadOff, payload);
    }
    ++size_;
    return node;
}

Addr
BinaryTree::insert(std::uint64_t key)
{
    FunctionScope scope(ctx_.heap, fn_insert_);
    if (root_ == kNullAddr) {
        root_ = allocNode(key);
        return root_;
    }
    Addr walk = root_;
    for (std::uint32_t depth = 0; depth < kDepthGuard; ++depth) {
        ctx_.heap.touch(walk);
        const std::uint64_t walk_key = keyOf(walk);
        const std::uint64_t slot_off =
            key < walk_key ? kLeftOff : kRightOff;
        const Addr child = ctx_.heap.loadPtr(walk + slot_off);
        if (child == kNullAddr) {
            const Addr node = allocNode(key);
            ctx_.heap.storePtr(walk + slot_off, node);
            ctx_.heap.storePtr(node + kParentOff, walk);
            return node;
        }
        walk = child;
    }
    return kNullAddr; // pathological depth; drop the insert
}

Addr
BinaryTree::spliceAbove()
{
    if (root_ == kNullAddr)
        return kNullAddr;
    FunctionScope scope(ctx_.heap, fn_splice_);

    // Pick a random node by a random root-to-node walk.
    Addr target = root_;
    for (std::uint32_t depth = 0; depth < kDepthGuard; ++depth) {
        if (ctx_.rng.chance(0.30))
            break;
        const Addr left = ctx_.heap.loadPtr(target + kLeftOff);
        const Addr right = ctx_.heap.loadPtr(target + kRightOff);
        Addr next = kNullAddr;
        if (left != kNullAddr && right != kNullAddr)
            next = ctx_.rng.chance(0.5) ? left : right;
        else if (left != kNullAddr)
            next = left;
        else if (right != kNullAddr)
            next = right;
        if (next == kNullAddr)
            break;
        target = next;
    }

    const Addr parent = ctx_.heap.loadPtr(target + kParentOff);
    const Addr fresh = allocNode(keyOf(target));

    if (parent == kNullAddr) {
        // Splicing above the root.
        ctx_.heap.storePtr(fresh + kLeftOff, target);
        root_ = fresh;
    } else {
        const Addr parent_left = ctx_.heap.loadPtr(parent + kLeftOff);
        const std::uint64_t slot_off =
            parent_left == target ? kLeftOff : kRightOff;
        ctx_.heap.storePtr(parent + slot_off, fresh);
        ctx_.heap.storePtr(fresh + kParentOff, parent);
        ctx_.heap.storePtr(fresh + kLeftOff, target);
    }

    if (ctx_.fire(FaultKind::TreeMissingParent)) {
        // BUG (injected): the spliced node's child keeps its stale
        // parent pointer, leaving the new node with indegree 1
        // (the PC Game/action bug of Figure 10).
    } else {
        ctx_.heap.storePtr(target + kParentOff, fresh);
    }
    return fresh;
}

Addr
BinaryTree::find(std::uint64_t key)
{
    FunctionScope scope(ctx_.heap, fn_find_);
    Addr walk = root_;
    for (std::uint32_t depth = 0;
         walk != kNullAddr && depth < kDepthGuard; ++depth) {
        ctx_.heap.touch(walk);
        const std::uint64_t walk_key = keyOf(walk);
        if (walk_key == key)
            return walk;
        walk = ctx_.heap.loadPtr(
            walk + (key < walk_key ? kLeftOff : kRightOff));
    }
    return kNullAddr;
}

void
BinaryTree::removeRandomLeaf()
{
    if (root_ == kNullAddr)
        return;
    FunctionScope scope(ctx_.heap, fn_remove_);

    Addr walk = root_;
    for (std::uint32_t depth = 0; depth < kDepthGuard; ++depth) {
        const Addr left = ctx_.heap.loadPtr(walk + kLeftOff);
        const Addr right = ctx_.heap.loadPtr(walk + kRightOff);
        Addr next = kNullAddr;
        if (left != kNullAddr && right != kNullAddr)
            next = ctx_.rng.chance(0.5) ? left : right;
        else if (left != kNullAddr)
            next = left;
        else if (right != kNullAddr)
            next = right;
        if (next == kNullAddr)
            break; // walk is a leaf
        walk = next;
    }

    if (walk == root_) {
        clearNode(root_);
        root_ = kNullAddr;
        return;
    }
    const Addr parent = ctx_.heap.loadPtr(walk + kParentOff);
    if (parent != kNullAddr) {
        if (ctx_.heap.loadPtr(parent + kLeftOff) == walk)
            ctx_.heap.storePtr(parent + kLeftOff, kNullAddr);
        else if (ctx_.heap.loadPtr(parent + kRightOff) == walk)
            ctx_.heap.storePtr(parent + kRightOff, kNullAddr);
    }
    clearNode(walk);
}

bool
BinaryTree::unspliceRandom()
{
    if (root_ == kNullAddr)
        return false;
    FunctionScope scope(ctx_.heap, fn_splice_);

    // Walk a random path; take the first single-child node found.
    Addr walk = root_;
    Addr candidate = kNullAddr;
    for (std::uint32_t depth = 0; depth < kDepthGuard; ++depth) {
        const Addr left = ctx_.heap.loadPtr(walk + kLeftOff);
        const Addr right = ctx_.heap.loadPtr(walk + kRightOff);
        const bool single =
            (left == kNullAddr) != (right == kNullAddr);
        if (single) {
            candidate = walk;
            break;
        }
        Addr next = kNullAddr;
        if (left != kNullAddr && right != kNullAddr)
            next = ctx_.rng.chance(0.5) ? left : right;
        if (next == kNullAddr)
            break;
        walk = next;
    }
    if (candidate == kNullAddr)
        return false;

    const Addr left = ctx_.heap.loadPtr(candidate + kLeftOff);
    const Addr right = ctx_.heap.loadPtr(candidate + kRightOff);
    const Addr child = left != kNullAddr ? left : right;
    const Addr parent = ctx_.heap.loadPtr(candidate + kParentOff);
    if (parent != kNullAddr) {
        if (ctx_.heap.loadPtr(parent + kLeftOff) == candidate)
            ctx_.heap.storePtr(parent + kLeftOff, child);
        else if (ctx_.heap.loadPtr(parent + kRightOff) == candidate)
            ctx_.heap.storePtr(parent + kRightOff, child);
    } else if (root_ == candidate) {
        root_ = child;
    }
    ctx_.heap.storePtr(child + kParentOff, parent);
    clearNode(candidate);
    return true;
}

void
BinaryTree::buildFull(std::uint32_t depth)
{
    FunctionScope scope(ctx_.heap, fn_build_);
    clear();
    root_ = buildFullRec(kNullAddr, depth);
}

Addr
BinaryTree::buildFullRec(Addr parent, std::uint32_t depth)
{
    if (depth == 0)
        return kNullAddr;
    const Addr node =
        allocNode(ctx_.rng.below(1000000));
    if (parent != kNullAddr) {
        if (ctx_.fire(FaultKind::TreeMissingParent)) {
            // BUG (injected): the constructed node is linked from its
            // parent but never points back -- the parent is "missing
            // parent pointers from its children" (Figure 10) and is
            // left with indegree 1.
        } else {
            ctx_.heap.storePtr(node + kParentOff, parent);
        }
    }

    const bool single_child = ctx_.fire(FaultKind::SingleChildTree);
    const Addr left = buildFullRec(node, depth - 1);
    if (left != kNullAddr)
        ctx_.heap.storePtr(node + kLeftOff, left);
    if (!single_child) {
        const Addr right = buildFullRec(node, depth - 1);
        if (right != kNullAddr)
            ctx_.heap.storePtr(node + kRightOff, right);
    }
    // BUG (injected, SingleChildTree): the right subtree is never
    // built -- "many tree vertexes having a single child rather than
    // two" (Section 4.3).
    return node;
}

void
BinaryTree::traverse()
{
    if (root_ == kNullAddr)
        return;
    FunctionScope scope(ctx_.heap, fn_traverse_);
    std::vector<Addr> stack{root_};
    std::uint64_t guard = size_ * 2 + 16;
    while (!stack.empty() && guard-- > 0) {
        const Addr node = stack.back();
        stack.pop_back();
        ctx_.heap.touch(node);
        const Addr payload = ctx_.heap.loadPtr(node + kPayloadOff);
        if (payload != kNullAddr)
            ctx_.heap.touch(payload);
        const Addr left = ctx_.heap.loadPtr(node + kLeftOff);
        const Addr right = ctx_.heap.loadPtr(node + kRightOff);
        if (left != kNullAddr)
            stack.push_back(left);
        if (right != kNullAddr)
            stack.push_back(right);
    }
}

void
BinaryTree::clear()
{
    if (root_ == kNullAddr)
        return;
    FunctionScope scope(ctx_.heap, fn_clear_);
    freeSubtree(root_, kDepthGuard);
    root_ = kNullAddr;
}

void
BinaryTree::freeSubtree(Addr node, std::uint32_t depth_guard)
{
    // Iterative so heavily spliced (deep) trees free completely.
    (void)depth_guard;
    if (node == kNullAddr)
        return;
    std::vector<Addr> stack{node};
    while (!stack.empty()) {
        const Addr n = stack.back();
        stack.pop_back();
        const Addr left = ctx_.heap.loadPtr(n + kLeftOff);
        const Addr right = ctx_.heap.loadPtr(n + kRightOff);
        if (left != kNullAddr)
            stack.push_back(left);
        if (right != kNullAddr)
            stack.push_back(right);
        clearNode(n);
    }
}

void
BinaryTree::clearNode(Addr node)
{
    const Addr payload = ctx_.heap.loadPtr(node + kPayloadOff);
    if (payload != kNullAddr)
        ctx_.heap.free(payload);
    key_shadow_.erase(node);
    ctx_.heap.free(node);
    if (size_ > 0)
        --size_;
}

std::uint64_t
BinaryTree::keyOf(Addr node) const
{
    auto it = key_shadow_.find(node);
    return it == key_shadow_.end() ? 0 : it->second;
}

} // namespace istl

} // namespace heapmd
