#include "istl/hash_table.hh"

#include "support/logging.hh"

namespace heapmd
{

namespace istl
{

HashTable::HashTable(Context &ctx, std::uint64_t bucket_count,
                     std::uint64_t payload_size)
    : ctx_(ctx), bucket_count_(bucket_count),
      payload_size_(payload_size),
      degraded_hash_(ctx.fire(FaultKind::BadHashFunction)),
      fn_insert_(ctx.heap.intern("HashTable::insert")),
      fn_find_(ctx.heap.intern("HashTable::find")),
      fn_erase_(ctx.heap.intern("HashTable::erase")),
      fn_clear_(ctx.heap.intern("HashTable::clear"))
{
    if (bucket_count_ == 0)
        HEAPMD_PANIC("hash table needs at least one bucket");
    buckets_ = ctx_.heap.malloc(bucket_count_ * 8);
}

HashTable::~HashTable()
{
    clear();
    ctx_.heap.free(buckets_);
}

std::uint64_t
HashTable::hash(std::uint64_t key) const
{
    if (degraded_hash_) {
        // BUG (injected): "a poorly chosen hash-function that caused
        // significant collisions" -- everything lands in <= 7 chains.
        return (key % 7) % bucket_count_;
    }
    std::uint64_t state = key;
    return splitMix64(state) % bucket_count_;
}

Addr
HashTable::bucketSlot(std::uint64_t key) const
{
    return buckets_ + 8 * hash(key);
}

Addr
HashTable::insert(std::uint64_t key)
{
    FunctionScope scope(ctx_.heap, fn_insert_);

    // Keys live below the heap base, so key words stored through the
    // pointer path never alias a live object (and stay readable).
    const Addr slot = bucketSlot(key);
    const Addr node = ctx_.heap.malloc(kNodeSize);
    ctx_.heap.storePtr(node + kKeyOff, key);
    if (payload_size_ > 0) {
        const Addr payload = ctx_.heap.malloc(payload_size_);
        ctx_.heap.storePtr(node + kValueOff, payload);
    }
    ctx_.heap.storeData(node + kDataOff, ctx_.rng() & 0xFFFF);

    const Addr head = ctx_.heap.loadPtr(slot);
    ctx_.heap.storePtr(node + kNextOff, head);
    ctx_.heap.storePtr(slot, node);
    ++size_;
    return node;
}

Addr
HashTable::find(std::uint64_t key)
{
    FunctionScope scope(ctx_.heap, fn_find_);
    Addr walk = ctx_.heap.loadPtr(bucketSlot(key));
    std::uint64_t guard = size_ + 16;
    while (walk != kNullAddr && guard-- > 0) {
        ctx_.heap.touch(walk);
        if (ctx_.heap.loadPtr(walk + kKeyOff) == key)
            return walk;
        walk = ctx_.heap.loadPtr(walk + kNextOff);
    }
    return kNullAddr;
}

bool
HashTable::erase(std::uint64_t key)
{
    FunctionScope scope(ctx_.heap, fn_erase_);
    const Addr slot = bucketSlot(key);
    Addr prev_slot = slot;
    Addr walk = ctx_.heap.loadPtr(slot);
    std::uint64_t guard = size_ + 16;
    while (walk != kNullAddr && guard-- > 0) {
        if (ctx_.heap.loadPtr(walk + kKeyOff) == key) {
            const Addr next = ctx_.heap.loadPtr(walk + kNextOff);
            ctx_.heap.storePtr(prev_slot, next);
            const Addr payload = ctx_.heap.loadPtr(walk + kValueOff);
            if (payload != kNullAddr)
                ctx_.heap.free(payload);
            ctx_.heap.free(walk);
            --size_;
            return true;
        }
        prev_slot = walk + kNextOff;
        walk = ctx_.heap.loadPtr(walk + kNextOff);
    }
    return false;
}

Addr
HashTable::payloadOf(std::uint64_t key)
{
    const Addr node = find(key);
    if (node == kNullAddr)
        return kNullAddr;
    return ctx_.heap.loadPtr(node + kValueOff);
}

void
HashTable::clear()
{
    FunctionScope scope(ctx_.heap, fn_clear_);
    for (std::uint64_t b = 0; b < bucket_count_; ++b) {
        const Addr slot = buckets_ + 8 * b;
        Addr walk = ctx_.heap.loadPtr(slot);
        std::uint64_t guard = size_ + 16;
        while (walk != kNullAddr && guard-- > 0) {
            const Addr next = ctx_.heap.loadPtr(walk + kNextOff);
            const Addr payload = ctx_.heap.loadPtr(walk + kValueOff);
            if (payload != kNullAddr)
                ctx_.heap.free(payload);
            ctx_.heap.free(walk);
            walk = next;
        }
        ctx_.heap.storePtr(slot, kNullAddr);
    }
    size_ = 0;
}

std::uint64_t
HashTable::chainLength(std::uint64_t b)
{
    if (b >= bucket_count_)
        return 0;
    Addr walk = ctx_.heap.loadPtr(buckets_ + 8 * b);
    std::uint64_t len = 0;
    std::uint64_t guard = size_ + 16;
    while (walk != kNullAddr && guard-- > 0) {
        ++len;
        walk = ctx_.heap.loadPtr(walk + kNextOff);
    }
    return len;
}

} // namespace istl

} // namespace heapmd
