/**
 * @file
 * Instrumented adjacency-list graph (the Section 4.3 localization-bug
 * structure: "atypical graphs, which were represented as adjacency
 * lists").
 */

#ifndef HEAPMD_ISTL_ADJ_GRAPH_HH
#define HEAPMD_ISTL_ADJ_GRAPH_HH

#include <cstdint>
#include <vector>

#include "istl/context.hh"
#include "support/types.hh"

namespace heapmd
{

namespace istl
{

/**
 * Directed graph stored as per-vertex edge lists.
 *
 * Vertex object (32 bytes): +0 edge-list head, +8 payload pointer,
 * +16 two data words.  Edge node (32 bytes): +0 target vertex
 * pointer, +8 next edge pointer, +16 data.
 *
 * Injection site: FaultKind::LocalizationBug in buildRandom() -- the
 * localization logic degenerates and hangs nearly every edge off one
 * hub vertex, producing the atypical star graphs the paper describes
 * as an *indirect* bug.
 */
class AdjGraph
{
  public:
    static constexpr std::uint64_t kVertexSize = 32;
    static constexpr std::uint64_t kEdgeHeadOff = 0;
    static constexpr std::uint64_t kVPayloadOff = 8;
    static constexpr std::uint64_t kEdgeSize = 32;
    static constexpr std::uint64_t kTargetOff = 0;
    static constexpr std::uint64_t kENextOff = 8;

    AdjGraph(Context &ctx, std::uint64_t payload_size = 0);
    ~AdjGraph();

    AdjGraph(const AdjGraph &) = delete;
    AdjGraph &operator=(const AdjGraph &) = delete;

    /** Add an isolated vertex. @return its address. */
    Addr addVertex();

    /** Add a directed edge u -> v (as an edge node). */
    void addEdge(Addr u, Addr v);

    /** Drop the first edge of @p u (no-op without edges). */
    void removeFirstEdge(Addr u);

    /**
     * Populate with @p vertex_count vertices and roughly
     * @p vertex_count * @p avg_degree random edges (injection site
     * for LocalizationBug).
     */
    void buildRandom(std::uint64_t vertex_count, double avg_degree);

    /** Touch every vertex and edge node. */
    void traverse();

    /**
     * Touch a random sample of up to @p max_vertices vertices (and
     * their edge lists): the cheap periodic read pass the steady
     * loop uses on large graphs.
     */
    void traverseSample(std::uint64_t max_vertices);

    /** Free everything. */
    void clear();

    std::uint64_t vertexCount() const { return vertices_.size(); }
    std::uint64_t edgeCount() const { return edge_count_; }

    /** Vertex handle by construction index. */
    Addr vertexAt(std::size_t i) const { return vertices_[i]; }

  private:
    Context &ctx_;
    std::uint64_t payload_size_;
    std::vector<Addr> vertices_; // program-side (stack/global) roots
    std::uint64_t edge_count_ = 0;
    FnId fn_add_vertex_, fn_add_edge_, fn_remove_edge_, fn_build_,
        fn_traverse_, fn_clear_;
};

} // namespace istl

} // namespace heapmd

#endif // HEAPMD_ISTL_ADJ_GRAPH_HH
