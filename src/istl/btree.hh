/**
 * @file
 * Instrumented B-tree (Section 4.5 mentions invariant bugs found in
 * B-trees; the Productivity workload is built on this structure).
 */

#ifndef HEAPMD_ISTL_BTREE_HH
#define HEAPMD_ISTL_BTREE_HH

#include <cstdint>

#include "istl/context.hh"
#include "support/types.hh"

namespace heapmd
{

namespace istl
{

/**
 * B-tree of minimum degree 4 (up to 7 keys / 8 children per node),
 * with preemptive splitting on the way down.
 *
 * Node layout (144 bytes):
 *   +0   key count (data word, stored through the readable path)
 *   +8   leaf flag word
 *   +16  8 child pointers (+16 .. +72)
 *   +80  7 key words (+80 .. +128)
 *   +136 next-leaf pointer (B+-tree style leaf chain)
 *
 * Internal nodes have outdegree count+1; leaves carry one next-leaf
 * pointer, so a healthy tree concentrates vertices at outdegree 1
 * (chained leaves) under a thin spine of high-outdegree internals.
 *
 * Injection site: FaultKind::BTreeLeafUnlinked makes splitChild()
 * forget to stitch the new sibling into the leaf chain -- the B-tree
 * invariant bug class of Section 4.5.  Unlinked leaves keep
 * indegree 1 / outdegree 0 instead of 2 / 1.
 */
class BTree
{
  public:
    static constexpr std::uint32_t kMinDegree = 4;
    static constexpr std::uint32_t kMaxKeys = 2 * kMinDegree - 1;
    static constexpr std::uint32_t kMaxChildren = 2 * kMinDegree;
    static constexpr std::uint64_t kCountOff = 0;
    static constexpr std::uint64_t kLeafOff = 8;
    static constexpr std::uint64_t kChildOff = 16;
    static constexpr std::uint64_t kKeyOff = 80;
    static constexpr std::uint64_t kNextLeafOff = 136;
    static constexpr std::uint64_t kNodeSize = 144;

    explicit BTree(Context &ctx);
    ~BTree();

    BTree(const BTree &) = delete;
    BTree &operator=(const BTree &) = delete;

    /** Insert @p key (duplicates allowed; key must be > 0 and below
     *  the heap base so key words never alias objects). */
    void insert(std::uint64_t key);

    /** True when @p key is present (touches the search path). */
    bool contains(std::uint64_t key);

    /**
     * Remove @p key from its leaf when present (lazy deletion: no
     * rebalancing, as in many production stores).
     * @return true when a key was removed.
     */
    bool eraseFromLeaf(std::uint64_t key);

    /** Touch every node. */
    void traverse();

    /**
     * Walk the leaf chain from the leftmost leaf (touching each
     * leaf).  @return leaves reached -- fewer than the leaf count
     * when the chain has been corrupted by BTreeLeafUnlinked.
     */
    std::uint64_t scanLeaves();

    /** Number of leaf nodes (via child pointers, chain-independent). */
    std::uint64_t leafCount();

    /** Free the whole tree. */
    void clear();

    /** Keys currently stored. */
    std::uint64_t size() const { return size_; }

    /** Nodes currently allocated. */
    std::uint64_t nodeCount() const { return node_count_; }

    Addr root() const { return root_; }

  private:
    Addr allocNode(bool leaf);
    void freeSubtree(Addr node, std::uint32_t depth_guard);

    std::uint64_t countOf(Addr node);
    void setCount(Addr node, std::uint64_t count);
    bool isLeaf(Addr node);
    std::uint64_t keyAt(Addr node, std::uint32_t i);
    void setKey(Addr node, std::uint32_t i, std::uint64_t key);
    Addr childAt(Addr node, std::uint32_t i);
    void setChild(Addr node, std::uint32_t i, Addr child);

    /** Split the full child at @p index of @p parent. */
    void splitChild(Addr parent, std::uint32_t index);

    /** Insert into a node known not to be full. */
    void insertNonFull(Addr node, std::uint64_t key);

    Context &ctx_;
    Addr root_ = kNullAddr;
    std::uint64_t size_ = 0;
    std::uint64_t node_count_ = 0;
    FnId fn_insert_, fn_find_, fn_erase_, fn_traverse_, fn_clear_;
};

} // namespace istl

} // namespace heapmd

#endif // HEAPMD_ISTL_BTREE_HH
