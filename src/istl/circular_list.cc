#include "istl/circular_list.hh"

namespace heapmd
{

namespace istl
{

CircularList::CircularList(Context &ctx, std::uint64_t payload_size)
    : ctx_(ctx), payload_size_(payload_size),
      fn_insert_(ctx.heap.intern("CircularList::insert")),
      fn_remove_(ctx.heap.intern("CircularList::removeHead")),
      fn_traverse_(ctx.heap.intern("CircularList::traverse")),
      fn_clear_(ctx.heap.intern("CircularList::clear"))
{
}

CircularList::~CircularList()
{
    clear();
}

Addr
CircularList::allocNode()
{
    const Addr node = ctx_.heap.malloc(kNodeSize);
    if (payload_size_ > 0) {
        const Addr payload = ctx_.heap.malloc(payload_size_);
        ctx_.heap.storePtr(node + kPayloadOff, payload);
    }
    ctx_.heap.storeData(node + kDataOff, ctx_.rng() & 0xFFFF);
    return node;
}

void
CircularList::freeNode(Addr node)
{
    const Addr payload = ctx_.heap.loadPtr(node + kPayloadOff);
    if (payload != kNullAddr)
        ctx_.heap.free(payload);
    ctx_.heap.free(node);
}

Addr
CircularList::insert()
{
    FunctionScope scope(ctx_.heap, fn_insert_);
    const Addr node = allocNode();
    if (head_ == kNullAddr) {
        ctx_.heap.storePtr(node + kNextOff, node); // self-ring
        head_ = node;
    } else {
        const Addr succ = ctx_.heap.loadPtr(head_ + kNextOff);
        ctx_.heap.storePtr(node + kNextOff, succ);
        ctx_.heap.storePtr(head_ + kNextOff, node);
    }
    ++size_;
    return node;
}

void
CircularList::rotate()
{
    if (head_ != kNullAddr)
        head_ = ctx_.heap.loadPtr(head_ + kNextOff);
}

void
CircularList::removeHead()
{
    if (head_ == kNullAddr)
        return;
    FunctionScope scope(ctx_.heap, fn_remove_);

    const Addr old_head = head_;
    const Addr new_head = ctx_.heap.loadPtr(old_head + kNextOff);

    if (new_head == old_head) { // singleton ring
        freeNode(old_head);
        head_ = kNullAddr;
        size_ = 0;
        return;
    }

    if (ctx_.fire(FaultKind::CircularDanglingTail)) {
        // BUG (injected): the Figure 12 fragment --
        //   pNewHead = pHeadColList->next;
        //   ColListFree(pHeadColList);
        //   pHeadColList = pNewHead;
        // The predecessor (ring tail) still points at the freed node.
        freeNode(old_head);
        head_ = new_head;
    } else {
        const Addr tail = findPredecessor(old_head);
        if (tail != kNullAddr)
            ctx_.heap.storePtr(tail + kNextOff, new_head);
        freeNode(old_head);
        head_ = new_head;
    }
    if (size_ > 0)
        --size_;
}

void
CircularList::traverse()
{
    if (head_ == kNullAddr)
        return;
    FunctionScope scope(ctx_.heap, fn_traverse_);
    Addr node = head_;
    std::uint64_t guard = size_ + 16;
    do {
        ctx_.heap.touch(node);
        const Addr payload = ctx_.heap.loadPtr(node + kPayloadOff);
        if (payload != kNullAddr)
            ctx_.heap.touch(payload);
        node = ctx_.heap.loadPtr(node + kNextOff);
    } while (node != head_ && node != kNullAddr && guard-- > 0);
}

void
CircularList::clear()
{
    if (head_ == kNullAddr)
        return;
    FunctionScope scope(ctx_.heap, fn_clear_);
    Addr node = ctx_.heap.loadPtr(head_ + kNextOff);
    std::uint64_t guard = size_ + 16;
    while (node != head_ && node != kNullAddr && guard-- > 0) {
        const Addr next = ctx_.heap.loadPtr(node + kNextOff);
        freeNode(node);
        node = next;
    }
    freeNode(head_);
    head_ = kNullAddr;
    size_ = 0;
}

Addr
CircularList::findPredecessor(Addr node)
{
    Addr walk = node;
    std::uint64_t guard = size_ + 16;
    while (guard-- > 0) {
        const Addr next = ctx_.heap.loadPtr(walk + kNextOff);
        if (next == node || next == kNullAddr)
            return next == node ? walk : kNullAddr;
        walk = next;
    }
    return kNullAddr;
}

} // namespace istl

} // namespace heapmd
