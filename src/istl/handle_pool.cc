#include "istl/handle_pool.hh"

#include "support/logging.hh"

namespace heapmd
{

namespace istl
{

HandlePool::HandlePool(Context &ctx, std::uint64_t payload_size)
    : ctx_(ctx), payload_size_(payload_size),
      fn_acquire_(ctx.heap.intern("HandlePool::acquire")),
      fn_release_(ctx.heap.intern("HandlePool::release")),
      fn_retarget_(ctx.heap.intern("HandlePool::retarget"))
{
    if (payload_size_ == 0)
        HEAPMD_PANIC("HandlePool payloads must be non-empty");
}

HandlePool::~HandlePool()
{
    clear();
}

Addr
HandlePool::acquire()
{
    FunctionScope scope(ctx_.heap, fn_acquire_);
    const Addr handle = ctx_.heap.malloc(kHandleSize);
    const Addr payload = ctx_.heap.malloc(payload_size_);
    ctx_.heap.storePtr(handle + kPayloadOff, payload);
    ctx_.heap.storeData(handle + 8, ctx_.rng() & 0xFFFF);
    handles_.push_back(handle);
    return handle;
}

void
HandlePool::releaseRandom()
{
    if (handles_.empty())
        return;
    FunctionScope scope(ctx_.heap, fn_release_);
    const std::size_t i = ctx_.rng.below(handles_.size());
    const Addr handle = handles_[i];
    const Addr payload = ctx_.heap.loadPtr(handle + kPayloadOff);
    if (payload != kNullAddr)
        ctx_.heap.free(payload);
    ctx_.heap.free(handle);
    handles_[i] = handles_.back();
    handles_.pop_back();
}

void
HandlePool::retargetRandom()
{
    if (handles_.empty())
        return;
    FunctionScope scope(ctx_.heap, fn_retarget_);
    const Addr handle = handles_[ctx_.rng.below(handles_.size())];
    const Addr old = ctx_.heap.loadPtr(handle + kPayloadOff);
    if (old != kNullAddr)
        ctx_.heap.free(old);
    const Addr fresh = ctx_.heap.malloc(payload_size_);
    ctx_.heap.storePtr(handle + kPayloadOff, fresh);
}

void
HandlePool::touchAll()
{
    for (Addr handle : handles_) {
        ctx_.heap.touch(handle);
        const Addr payload = ctx_.heap.loadPtr(handle + kPayloadOff);
        if (payload != kNullAddr)
            ctx_.heap.touch(payload);
    }
}

void
HandlePool::clear()
{
    for (Addr handle : handles_) {
        const Addr payload = ctx_.heap.loadPtr(handle + kPayloadOff);
        if (payload != kNullAddr)
            ctx_.heap.free(payload);
        ctx_.heap.free(handle);
    }
    handles_.clear();
}

} // namespace istl

} // namespace heapmd
