#include "istl/btree.hh"

#include <vector>

#include "support/logging.hh"

namespace heapmd
{

namespace istl
{

namespace
{

constexpr std::uint32_t kDepthGuard = 32;

} // namespace

BTree::BTree(Context &ctx)
    : ctx_(ctx),
      fn_insert_(ctx.heap.intern("BTree::insert")),
      fn_find_(ctx.heap.intern("BTree::contains")),
      fn_erase_(ctx.heap.intern("BTree::eraseFromLeaf")),
      fn_traverse_(ctx.heap.intern("BTree::traverse")),
      fn_clear_(ctx.heap.intern("BTree::clear"))
{
}

BTree::~BTree()
{
    clear();
}

Addr
BTree::allocNode(bool leaf)
{
    const Addr node = ctx_.heap.malloc(kNodeSize);
    ctx_.heap.storePtr(node + kCountOff, 0);
    ctx_.heap.storePtr(node + kLeafOff, leaf ? 1 : 0);
    ++node_count_;
    return node;
}

std::uint64_t
BTree::countOf(Addr node)
{
    return ctx_.heap.loadPtr(node + kCountOff);
}

void
BTree::setCount(Addr node, std::uint64_t count)
{
    ctx_.heap.storePtr(node + kCountOff, count);
}

bool
BTree::isLeaf(Addr node)
{
    return ctx_.heap.loadPtr(node + kLeafOff) != 0;
}

std::uint64_t
BTree::keyAt(Addr node, std::uint32_t i)
{
    return ctx_.heap.loadPtr(node + kKeyOff + 8 * i);
}

void
BTree::setKey(Addr node, std::uint32_t i, std::uint64_t key)
{
    ctx_.heap.storePtr(node + kKeyOff + 8 * i, key);
}

Addr
BTree::childAt(Addr node, std::uint32_t i)
{
    return ctx_.heap.loadPtr(node + kChildOff + 8 * i);
}

void
BTree::setChild(Addr node, std::uint32_t i, Addr child)
{
    ctx_.heap.storePtr(node + kChildOff + 8 * i, child);
}

void
BTree::insert(std::uint64_t key)
{
    FunctionScope scope(ctx_.heap, fn_insert_);
    if (key == 0 || key >= AddressSpace::kHeapBase)
        HEAPMD_PANIC("BTree keys must be in (0, heap base)");

    if (root_ == kNullAddr)
        root_ = allocNode(true);

    if (countOf(root_) == kMaxKeys) {
        const Addr new_root = allocNode(false);
        setChild(new_root, 0, root_);
        root_ = new_root;
        splitChild(new_root, 0);
    }
    insertNonFull(root_, key);
    ++size_;
}

void
BTree::splitChild(Addr parent, std::uint32_t index)
{
    const Addr child = childAt(parent, index);
    const bool child_leaf = isLeaf(child);
    const Addr sibling = allocNode(child_leaf);

    // Move the top kMinDegree-1 keys (and children) to the sibling.
    for (std::uint32_t i = 0; i < kMinDegree - 1; ++i)
        setKey(sibling, i, keyAt(child, i + kMinDegree));
    if (!child_leaf) {
        for (std::uint32_t i = 0; i < kMinDegree; ++i) {
            setChild(sibling, i, childAt(child, i + kMinDegree));
            setChild(child, i + kMinDegree, kNullAddr);
        }
    } else if (ctx_.fire(FaultKind::BTreeLeafUnlinked)) {
        // BUG (injected): the new sibling never enters the leaf
        // chain -- range scans over the leaf chain silently skip
        // its keys, and the sibling keeps indegree 1 / outdegree 0.
    } else {
        // Stitch the new sibling into the B+-style leaf chain.
        ctx_.heap.storePtr(sibling + kNextLeafOff,
                           ctx_.heap.loadPtr(child + kNextLeafOff));
        ctx_.heap.storePtr(child + kNextLeafOff, sibling);
    }
    setCount(sibling, kMinDegree - 1);
    const std::uint64_t median = keyAt(child, kMinDegree - 1);
    setCount(child, kMinDegree - 1);

    // Shift the parent's keys/children right of index.
    const std::uint64_t pcount = countOf(parent);
    for (std::uint64_t i = pcount; i > index; --i) {
        setKey(parent, static_cast<std::uint32_t>(i),
               keyAt(parent, static_cast<std::uint32_t>(i - 1)));
        setChild(parent, static_cast<std::uint32_t>(i + 1),
                 childAt(parent, static_cast<std::uint32_t>(i)));
    }
    setKey(parent, index, median);
    setChild(parent, index + 1, sibling);
    setCount(parent, pcount + 1);
}

void
BTree::insertNonFull(Addr node, std::uint64_t key)
{
    for (std::uint32_t depth = 0; depth < kDepthGuard; ++depth) {
        ctx_.heap.touch(node);
        std::uint64_t count = countOf(node);
        if (isLeaf(node)) {
            // Shift larger keys right and place the new key.
            std::uint64_t i = count;
            while (i > 0 &&
                   keyAt(node, static_cast<std::uint32_t>(i - 1)) >
                       key) {
                setKey(node, static_cast<std::uint32_t>(i),
                       keyAt(node, static_cast<std::uint32_t>(i - 1)));
                --i;
            }
            setKey(node, static_cast<std::uint32_t>(i), key);
            setCount(node, count + 1);
            return;
        }

        // Find the child to descend into.
        std::uint32_t i = 0;
        while (i < count && keyAt(node, i) < key)
            ++i;
        if (countOf(childAt(node, i)) == kMaxKeys) {
            splitChild(node, i);
            if (keyAt(node, i) < key)
                ++i;
        }
        node = childAt(node, i);
    }
    HEAPMD_PANIC("BTree::insertNonFull exceeded depth guard");
}

bool
BTree::contains(std::uint64_t key)
{
    FunctionScope scope(ctx_.heap, fn_find_);
    Addr node = root_;
    for (std::uint32_t depth = 0;
         node != kNullAddr && depth < kDepthGuard; ++depth) {
        ctx_.heap.touch(node);
        const std::uint64_t count = countOf(node);
        std::uint32_t i = 0;
        while (i < count && keyAt(node, i) < key)
            ++i;
        if (i < count && keyAt(node, i) == key)
            return true;
        if (isLeaf(node))
            return false;
        node = childAt(node, i);
    }
    return false;
}

bool
BTree::eraseFromLeaf(std::uint64_t key)
{
    FunctionScope scope(ctx_.heap, fn_erase_);
    Addr node = root_;
    for (std::uint32_t depth = 0;
         node != kNullAddr && depth < kDepthGuard; ++depth) {
        const std::uint64_t count = countOf(node);
        std::uint32_t i = 0;
        while (i < count && keyAt(node, i) < key)
            ++i;
        if (i < count && keyAt(node, i) == key) {
            if (!isLeaf(node))
                return false; // lazy deletion: internal keys stay
            for (std::uint32_t j = i; j + 1 < count; ++j)
                setKey(node, j, keyAt(node, j + 1));
            setCount(node, count - 1);
            if (size_ > 0)
                --size_;
            return true;
        }
        if (isLeaf(node))
            return false;
        node = childAt(node, i);
    }
    return false;
}

void
BTree::traverse()
{
    if (root_ == kNullAddr)
        return;
    FunctionScope scope(ctx_.heap, fn_traverse_);
    std::vector<Addr> stack{root_};
    while (!stack.empty()) {
        const Addr node = stack.back();
        stack.pop_back();
        ctx_.heap.touch(node);
        if (isLeaf(node))
            continue;
        const std::uint64_t count = countOf(node);
        for (std::uint64_t i = 0; i <= count; ++i) {
            const Addr child =
                childAt(node, static_cast<std::uint32_t>(i));
            if (child != kNullAddr)
                stack.push_back(child);
        }
    }
}

std::uint64_t
BTree::scanLeaves()
{
    FunctionScope scope(ctx_.heap, fn_traverse_);
    // Find the leftmost leaf.
    Addr node = root_;
    for (std::uint32_t depth = 0;
         node != kNullAddr && depth < kDepthGuard; ++depth) {
        if (isLeaf(node))
            break;
        node = childAt(node, 0);
    }
    std::uint64_t reached = 0;
    std::uint64_t guard = node_count_ + 16;
    while (node != kNullAddr && guard-- > 0) {
        ctx_.heap.touch(node);
        ++reached;
        node = ctx_.heap.loadPtr(node + kNextLeafOff);
    }
    return reached;
}

std::uint64_t
BTree::leafCount()
{
    if (root_ == kNullAddr)
        return 0;
    std::uint64_t leaves = 0;
    std::vector<Addr> stack{root_};
    while (!stack.empty()) {
        const Addr node = stack.back();
        stack.pop_back();
        if (isLeaf(node)) {
            ++leaves;
            continue;
        }
        const std::uint64_t count = countOf(node);
        for (std::uint64_t i = 0; i <= count; ++i) {
            const Addr child =
                childAt(node, static_cast<std::uint32_t>(i));
            if (child != kNullAddr)
                stack.push_back(child);
        }
    }
    return leaves;
}

void
BTree::clear()
{
    if (root_ == kNullAddr)
        return;
    FunctionScope scope(ctx_.heap, fn_clear_);
    freeSubtree(root_, kDepthGuard);
    root_ = kNullAddr;
    size_ = 0;
}

void
BTree::freeSubtree(Addr node, std::uint32_t depth_guard)
{
    if (node == kNullAddr || depth_guard == 0)
        return;
    if (!isLeaf(node)) {
        const std::uint64_t count = countOf(node);
        for (std::uint64_t i = 0; i <= count; ++i)
            freeSubtree(childAt(node, static_cast<std::uint32_t>(i)),
                        depth_guard - 1);
    }
    ctx_.heap.free(node);
    if (node_count_ > 0)
        --node_count_;
}

} // namespace istl

} // namespace heapmd
