/**
 * @file
 * Instrumented chained hash table (the Section 4.3 "performance bug"
 * structure).
 */

#ifndef HEAPMD_ISTL_HASH_TABLE_HH
#define HEAPMD_ISTL_HASH_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "istl/context.hh"
#include "support/types.hh"

namespace heapmd
{

namespace istl
{

/**
 * Separate-chaining hash table.
 *
 * The bucket array is a single heap object of bucket_count pointer
 * slots; chain nodes (40 bytes: +0 key word, +8 value payload
 * pointer, +16 next pointer, +24 data) hang off it.
 *
 * Injection site: FaultKind::BadHashFunction (decided at
 * construction) degrades the hash to key % 7 so all entries collide
 * into at most seven chains -- the "poorly chosen hash-function"
 * performance bug of Section 4.3.  The bucket array's outdegree
 * collapses and chain nodes shift the outdegree distribution.
 */
class HashTable
{
  public:
    static constexpr std::uint64_t kNodeSize = 40;
    static constexpr std::uint64_t kKeyOff = 0;
    static constexpr std::uint64_t kValueOff = 8;
    static constexpr std::uint64_t kNextOff = 16;
    static constexpr std::uint64_t kDataOff = 24;

    /**
     * @param ctx          shared instrumentation context.
     * @param bucket_count buckets in the array object.
     * @param payload_size bytes of value payload per entry (0: none).
     */
    HashTable(Context &ctx, std::uint64_t bucket_count,
              std::uint64_t payload_size = 0);
    ~HashTable();

    HashTable(const HashTable &) = delete;
    HashTable &operator=(const HashTable &) = delete;

    /**
     * Insert (or overwrite) @p key.
     * @return the chain node's address.
     */
    Addr insert(std::uint64_t key);

    /** Chain walk for @p key (touches the chain). */
    Addr find(std::uint64_t key);

    /** Remove @p key when present. @return true when removed. */
    bool erase(std::uint64_t key);

    /** Value payload of @p key's node, or kNullAddr. */
    Addr payloadOf(std::uint64_t key);

    /** Free every chain node (the bucket array stays). */
    void clear();

    std::uint64_t size() const { return size_; }

    /** The bucket-array object's address. */
    Addr bucketArray() const { return buckets_; }

    std::uint64_t bucketCount() const { return bucket_count_; }

    /** Length of the chain in bucket @p b (touches the chain). */
    std::uint64_t chainLength(std::uint64_t b);

  private:
    std::uint64_t hash(std::uint64_t key) const;
    Addr bucketSlot(std::uint64_t key) const;

    Context &ctx_;
    std::uint64_t bucket_count_;
    std::uint64_t payload_size_;
    bool degraded_hash_;
    Addr buckets_ = kNullAddr;
    std::uint64_t size_ = 0;
    FnId fn_insert_, fn_find_, fn_erase_, fn_clear_;
};

} // namespace istl

} // namespace heapmd

#endif // HEAPMD_ISTL_HASH_TABLE_HH
