/**
 * @file
 * Instrumented binary tree with parent pointers (the Figure 10
 * structure).
 */

#ifndef HEAPMD_ISTL_BINARY_TREE_HH
#define HEAPMD_ISTL_BINARY_TREE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "istl/context.hh"
#include "support/types.hh"

namespace heapmd
{

namespace istl
{

/**
 * Binary search tree whose children hold parent back-pointers.
 *
 * Node layout (48 bytes):
 *   +0  key (data word, < heap base so it never forms an edge)
 *   +8  left child pointer
 *   +16 right child pointer
 *   +24 parent pointer
 *   +32 payload pointer (optional)
 *   +40 data word
 *
 * A node with a parent and c children normally has indegree 1 + c
 * (the parent's child slot plus each child's parent back-pointer).
 *
 * Injection sites:
 *  - FaultKind::TreeMissingParent in spliceAbove(): the spliced
 *    node's child keeps its old parent pointer, so the new node has
 *    indegree 1 (the PC Game/action bug behind Figure 10);
 *  - FaultKind::SingleChildTree in buildFull(): nodes get one child
 *    instead of two (the indirect bug of Section 4.3).
 */
class BinaryTree
{
  public:
    static constexpr std::uint64_t kNodeSize = 48;
    static constexpr std::uint64_t kKeyOff = 0;
    static constexpr std::uint64_t kLeftOff = 8;
    static constexpr std::uint64_t kRightOff = 16;
    static constexpr std::uint64_t kParentOff = 24;
    static constexpr std::uint64_t kPayloadOff = 32;
    static constexpr std::uint64_t kDataOff = 40;

    BinaryTree(Context &ctx, std::uint64_t payload_size = 0);
    ~BinaryTree();

    BinaryTree(const BinaryTree &) = delete;
    BinaryTree &operator=(const BinaryTree &) = delete;

    /** BST leaf insertion. @return the new node's address. */
    Addr insert(std::uint64_t key);

    /**
     * Splice a new node onto the edge above a random existing node
     * (internal insertion; injection site for TreeMissingParent).
     * @return the new node's address, or kNullAddr on an empty tree.
     */
    Addr spliceAbove();

    /** BST lookup walk (touches the path). @return node or null. */
    Addr find(std::uint64_t key);

    /** Remove a random leaf (no-op when empty). */
    void removeRandomLeaf();

    /**
     * Splice OUT a random single-child node (the inverse of
     * spliceAbove): the parent adopts the only child.  Keeps the
     * spliced-node population stationary under churn.
     * @return true when a node was removed.
     */
    bool unspliceRandom();

    /**
     * Build a full tree of the given depth under a fresh root
     * (injection site for SingleChildTree).
     */
    void buildFull(std::uint32_t depth);

    /** In-order traversal touching every node. */
    void traverse();

    /** Free the whole tree. */
    void clear();

    std::uint64_t size() const { return size_; }
    Addr root() const { return root_; }

  private:
    Addr allocNode(std::uint64_t key);
    void freeSubtree(Addr node, std::uint32_t depth_guard);
    Addr buildFullRec(Addr parent, std::uint32_t depth);
    void clearNode(Addr node);

    /**
     * Key of @p node.  Keys are written to the simulated heap as
     * data words; this C++-side mirror models the register/immediate
     * copies a real program navigates by (data words are not kept in
     * HeapApi shadow memory).
     */
    std::uint64_t keyOf(Addr node) const;

    Context &ctx_;
    std::uint64_t payload_size_;
    Addr root_ = kNullAddr;
    std::uint64_t size_ = 0;
    std::unordered_map<Addr, std::uint64_t> key_shadow_;
    FnId fn_insert_, fn_splice_, fn_find_, fn_remove_, fn_build_,
        fn_traverse_, fn_clear_;
};

} // namespace istl

} // namespace heapmd

#endif // HEAPMD_ISTL_BINARY_TREE_HH
