/**
 * @file
 * Instrumented flat-buffer pool (gzip-style leaf-heavy heap traffic).
 */

#ifndef HEAPMD_ISTL_BUFFER_POOL_HH
#define HEAPMD_ISTL_BUFFER_POOL_HH

#include <cstdint>
#include <vector>

#include "istl/context.hh"
#include "support/types.hh"

namespace heapmd
{

namespace istl
{

/**
 * A pool of raw buffers referenced only from the program stack /
 * globals (modelled by the C++-side handle vector), so every buffer
 * is a heap-graph root and leaf.  Buffers grow via realloc, as
 * compression windows and IO buffers do.
 */
class BufferPool
{
  public:
    explicit BufferPool(Context &ctx);
    ~BufferPool();

    BufferPool(const BufferPool &) = delete;
    BufferPool &operator=(const BufferPool &) = delete;

    /** Allocate a buffer of @p size bytes. @return pool index. */
    std::size_t acquire(std::uint64_t size);

    /** Double the buffer at @p index via realloc. */
    void grow(std::size_t index);

    /** Write some data words into the buffer at @p index. */
    void fill(std::size_t index, std::uint32_t words);

    /** Free the buffer at @p index (idempotent). */
    void release(std::size_t index);

    /** Touch every live buffer. */
    void touchAll();

    /** Free everything. */
    void clear();

    /** Live buffers. */
    std::uint64_t liveCount() const;

    /** Address of buffer @p index (kNullAddr when released). */
    Addr bufferAt(std::size_t index) const;

  private:
    struct Slot
    {
        Addr addr = kNullAddr;
        std::uint64_t size = 0;
    };

    Context &ctx_;
    std::vector<Slot> slots_;
    FnId fn_acquire_, fn_grow_, fn_fill_, fn_release_;
};

} // namespace istl

} // namespace heapmd

#endif // HEAPMD_ISTL_BUFFER_POOL_HH
