/**
 * @file
 * Instrumented circular singly-linked list (the Figure 12 structure).
 */

#ifndef HEAPMD_ISTL_CIRCULAR_LIST_HH
#define HEAPMD_ISTL_CIRCULAR_LIST_HH

#include <cstdint>

#include "istl/context.hh"
#include "support/types.hh"

namespace heapmd
{

namespace istl
{

/**
 * Circular singly-linked list.
 *
 * Node layout (32 bytes):
 *   +0  payload pointer (optional)
 *   +8  next pointer (last node points back to the head)
 *   +16 two data words
 *
 * Injection site: FaultKind::CircularDanglingTail makes removeHead()
 * free the head without repairing the tail's next pointer -- the
 * Figure 12 bug ("the tail of the list now has a dangling pointer").
 */
class CircularList
{
  public:
    static constexpr std::uint64_t kNodeSize = 32;
    static constexpr std::uint64_t kPayloadOff = 0;
    static constexpr std::uint64_t kNextOff = 8;
    static constexpr std::uint64_t kDataOff = 16;

    CircularList(Context &ctx, std::uint64_t payload_size = 0);
    ~CircularList();

    CircularList(const CircularList &) = delete;
    CircularList &operator=(const CircularList &) = delete;

    /** Insert a node right after the head. @return its address. */
    Addr insert();

    /** Advance the head pointer by one (cheap rotation). */
    void rotate();

    /**
     * Free the head and promote its successor (Figure 12 code path);
     * injection site for CircularDanglingTail.
     */
    void removeHead();

    /** Walk the ring once, touching every node and payload. */
    void traverse();

    /** Free all nodes. */
    void clear();

    std::uint64_t size() const { return size_; }
    Addr head() const { return head_; }

  private:
    Addr allocNode();
    void freeNode(Addr node);

    /** Walk to the node whose next is @p node; kNullAddr on failure. */
    Addr findPredecessor(Addr node);

    Context &ctx_;
    std::uint64_t payload_size_;
    Addr head_ = kNullAddr;
    std::uint64_t size_ = 0;
    FnId fn_insert_, fn_remove_, fn_traverse_, fn_clear_;
};

} // namespace istl

} // namespace heapmd

#endif // HEAPMD_ISTL_CIRCULAR_LIST_HH
