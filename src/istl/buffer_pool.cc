#include "istl/buffer_pool.hh"

namespace heapmd
{

namespace istl
{

BufferPool::BufferPool(Context &ctx)
    : ctx_(ctx),
      fn_acquire_(ctx.heap.intern("BufferPool::acquire")),
      fn_grow_(ctx.heap.intern("BufferPool::grow")),
      fn_fill_(ctx.heap.intern("BufferPool::fill")),
      fn_release_(ctx.heap.intern("BufferPool::release"))
{
}

BufferPool::~BufferPool()
{
    clear();
}

std::size_t
BufferPool::acquire(std::uint64_t size)
{
    FunctionScope scope(ctx_.heap, fn_acquire_);
    Slot slot;
    slot.addr = ctx_.heap.malloc(size);
    slot.size = size;
    slots_.push_back(slot);
    return slots_.size() - 1;
}

void
BufferPool::grow(std::size_t index)
{
    if (index >= slots_.size() || slots_[index].addr == kNullAddr)
        return;
    FunctionScope scope(ctx_.heap, fn_grow_);
    Slot &slot = slots_[index];
    slot.size *= 2;
    slot.addr = ctx_.heap.realloc(slot.addr, slot.size);
}

void
BufferPool::fill(std::size_t index, std::uint32_t words)
{
    if (index >= slots_.size() || slots_[index].addr == kNullAddr)
        return;
    FunctionScope scope(ctx_.heap, fn_fill_);
    const Slot &slot = slots_[index];
    const std::uint64_t capacity_words = slot.size / 8;
    for (std::uint32_t w = 0; w < words; ++w) {
        const std::uint64_t off =
            capacity_words == 0 ? 0 : ctx_.rng.below(capacity_words);
        ctx_.heap.storeData(slot.addr + 8 * off, ctx_.rng() & 0xFFFF);
    }
}

void
BufferPool::release(std::size_t index)
{
    if (index >= slots_.size() || slots_[index].addr == kNullAddr)
        return;
    FunctionScope scope(ctx_.heap, fn_release_);
    ctx_.heap.free(slots_[index].addr);
    slots_[index].addr = kNullAddr;
    slots_[index].size = 0;
}

void
BufferPool::touchAll()
{
    for (const Slot &slot : slots_) {
        if (slot.addr != kNullAddr)
            ctx_.heap.touch(slot.addr);
    }
}

void
BufferPool::clear()
{
    for (std::size_t i = 0; i < slots_.size(); ++i)
        release(i);
    slots_.clear();
}

std::uint64_t
BufferPool::liveCount() const
{
    std::uint64_t live = 0;
    for (const Slot &slot : slots_)
        live += slot.addr != kNullAddr ? 1 : 0;
    return live;
}

Addr
BufferPool::bufferAt(std::size_t index) const
{
    return index < slots_.size() ? slots_[index].addr : kNullAddr;
}

} // namespace istl

} // namespace heapmd
