/**
 * @file
 * Instrumented handle pool: root objects holding exactly one pointer.
 */

#ifndef HEAPMD_ISTL_HANDLE_POOL_HH
#define HEAPMD_ISTL_HANDLE_POOL_HH

#include <cstdint>
#include <vector>

#include "istl/context.hh"
#include "support/types.hh"

namespace heapmd
{

namespace istl
{

/**
 * A pool of handle objects, each referenced only from the program
 * stack/globals and holding a single pointer to a separately
 * allocated payload -- the classic "pin/net handle" pattern of EDA
 * netlists.  A handle has indegree 0 and outdegree 1 (so it counts
 * toward Outdeg=1 but not In=Out); its payload has indegree 1 and
 * outdegree 0.
 *
 * Handle layout (16 bytes): +0 payload pointer, +8 data word.
 */
class HandlePool
{
  public:
    static constexpr std::uint64_t kHandleSize = 16;
    static constexpr std::uint64_t kPayloadOff = 0;

    /**
     * @param ctx          shared instrumentation context.
     * @param payload_size bytes per payload object (> 0).
     */
    HandlePool(Context &ctx, std::uint64_t payload_size);
    ~HandlePool();

    HandlePool(const HandlePool &) = delete;
    HandlePool &operator=(const HandlePool &) = delete;

    /** Allocate one handle + payload. @return the handle address. */
    Addr acquire();

    /** Free a random handle and its payload (no-op when empty). */
    void releaseRandom();

    /** Re-point a random handle at a freshly allocated payload. */
    void retargetRandom();

    /** Touch every handle and payload. */
    void touchAll();

    /** Free everything. */
    void clear();

    std::uint64_t size() const { return handles_.size(); }

  private:
    Context &ctx_;
    std::uint64_t payload_size_;
    std::vector<Addr> handles_; // program-side (stack/global) roots
    FnId fn_acquire_, fn_release_, fn_retarget_;
};

} // namespace istl

} // namespace heapmd

#endif // HEAPMD_ISTL_HANDLE_POOL_HH
