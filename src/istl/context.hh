/**
 * @file
 * Shared execution context of the instrumented data structures.
 */

#ifndef HEAPMD_ISTL_CONTEXT_HH
#define HEAPMD_ISTL_CONTEXT_HH

#include "faults/fault_plan.hh"
#include "runtime/heap_api.hh"
#include "support/random.hh"

namespace heapmd
{

namespace istl
{

/**
 * Everything a container needs to run "inside" the monitored program:
 * the instrumented heap, the active fault plan, and a deterministic
 * random stream.  One context per workload run.
 */
struct Context
{
    Context(HeapApi &heap_api, FaultPlan &fault_plan,
            std::uint64_t seed)
        : heap(heap_api), faults(fault_plan), rng(seed)
    {
    }

    HeapApi &heap;
    FaultPlan &faults;
    Rng rng;

    /** Convenience: roll a fault at an injection site. */
    bool
    fire(FaultKind kind)
    {
        return faults.fire(kind, rng);
    }
};

} // namespace istl

} // namespace heapmd

#endif // HEAPMD_ISTL_CONTEXT_HH
