#include "istl/descriptor_table.hh"

#include "support/logging.hh"

namespace heapmd
{

namespace istl
{

DescriptorTable::DescriptorTable(Context &ctx,
                                 std::uint64_t slot_count,
                                 std::uint64_t desc_size)
    : ctx_(ctx), slot_count_(slot_count), desc_size_(desc_size),
      fn_populate_(ctx.heap.intern("DescriptorTable::populate")),
      fn_transfer_(ctx.heap.intern("DescriptorTable::transfer")),
      fn_clear_(ctx.heap.intern("DescriptorTable::clear"))
{
    if (slot_count_ == 0)
        HEAPMD_PANIC("descriptor table needs at least one slot");
    table_ = ctx_.heap.malloc(slot_count_ * 8);
}

DescriptorTable::~DescriptorTable()
{
    clear();
    ctx_.heap.free(table_);
}

Addr
DescriptorTable::slotAddr(std::uint64_t index) const
{
    return table_ + 8 * index;
}

void
DescriptorTable::populate(std::uint64_t index)
{
    if (index >= slot_count_)
        return;
    FunctionScope scope(ctx_.heap, fn_populate_);
    const Addr old = ctx_.heap.loadPtr(slotAddr(index));
    if (old != kNullAddr)
        ctx_.heap.free(old);
    const Addr desc = ctx_.heap.malloc(desc_size_);
    ctx_.heap.storeData(desc, ctx_.rng() & 0xFFFF);
    ctx_.heap.storePtr(slotAddr(index), desc);
}

Addr
DescriptorTable::transfer(std::uint64_t index, Dll &sink)
{
    if (index >= slot_count_)
        return kNullAddr;
    FunctionScope scope(ctx_.heap, fn_transfer_);

    const Addr victim = ctx_.heap.loadPtr(slotAddr(index));
    if (victim == kNullAddr)
        return kNullAddr;

    const Addr node = sink.pushBack();

    if (slot_count_ > 1 && ctx_.fire(FaultKind::TypoLeak)) {
        // BUG (injected): the Figure 11 fragment --
        //   pPropDescList->next = pTableDesc[i].pPropDesc;  // 'i'!
        //   pTableDesc[j].pPropDesc = NULL;
        // Slot j's descriptor loses its only reference: leaked.
        std::uint64_t wrong = ctx_.rng.below(slot_count_);
        if (wrong == index)
            wrong = (wrong + 1) % slot_count_;
        const Addr copied = ctx_.heap.loadPtr(slotAddr(wrong));
        if (copied != kNullAddr)
            sink.adoptPayload(node, copied);
        ctx_.heap.storePtr(slotAddr(index), kNullAddr);
        return victim;
    }

    sink.adoptPayload(node, victim);
    ctx_.heap.storePtr(slotAddr(index), kNullAddr);
    return kNullAddr;
}

Addr
DescriptorTable::descriptorAt(std::uint64_t index)
{
    if (index >= slot_count_)
        return kNullAddr;
    return ctx_.heap.loadPtr(slotAddr(index));
}

void
DescriptorTable::touchAll()
{
    ctx_.heap.touch(table_);
    for (std::uint64_t i = 0; i < slot_count_; ++i) {
        const Addr desc = ctx_.heap.loadPtr(slotAddr(i));
        if (desc != kNullAddr)
            ctx_.heap.touch(desc);
    }
}

void
DescriptorTable::clear()
{
    FunctionScope scope(ctx_.heap, fn_clear_);
    for (std::uint64_t i = 0; i < slot_count_; ++i) {
        const Addr desc = ctx_.heap.loadPtr(slotAddr(i));
        if (desc != kNullAddr) {
            ctx_.heap.free(desc);
            ctx_.heap.storePtr(slotAddr(i), kNullAddr);
        }
    }
}

} // namespace istl

} // namespace heapmd
