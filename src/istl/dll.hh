/**
 * @file
 * Instrumented doubly-linked list (the Figure 1 structure).
 */

#ifndef HEAPMD_ISTL_DLL_HH
#define HEAPMD_ISTL_DLL_HH

#include <cstdint>

#include "istl/context.hh"
#include "support/types.hh"

namespace heapmd
{

namespace istl
{

/**
 * Doubly-linked list whose nodes live in the simulated heap.
 *
 * Node layout (40 bytes):
 *   +0  payload pointer (optional separately allocated leaf)
 *   +8  next pointer
 *   +16 prev pointer
 *   +24 two data words
 *
 * Interior nodes normally have indegree 2 (predecessor's next and
 * successor's prev).  Injection site: FaultKind::DllMissingPrev makes
 * insertAfter() skip the prev-pointer updates, exactly the bug of
 * Figure 1, leaving the new node with indegree 1.
 */
class Dll
{
  public:
    static constexpr std::uint64_t kNodeSize = 40;
    static constexpr std::uint64_t kPayloadOff = 0;
    static constexpr std::uint64_t kNextOff = 8;
    static constexpr std::uint64_t kPrevOff = 16;
    static constexpr std::uint64_t kDataOff = 24;

    /**
     * @param ctx          shared instrumentation context.
     * @param payload_size bytes of leaf payload per node; 0 for none.
     */
    Dll(Context &ctx, std::uint64_t payload_size = 0);

    ~Dll();

    Dll(const Dll &) = delete;
    Dll &operator=(const Dll &) = delete;

    /** Append at the tail. @return the new node's address. */
    Addr pushBack();

    /** Prepend at the head. @return the new node's address. */
    Addr pushFront();

    /**
     * Insert right after @p node (the Figure 1 code path).
     * Injection site for DllMissingPrev.
     * @return the new node's address.
     */
    Addr insertAfter(Addr node);

    /**
     * Advance the list's roving cursor by @p advance nodes (wrapping
     * to the head) and insert after it -- the cheap way a program
     * inserts at uniformly distributed interior positions.
     * @return the new node's address.
     */
    Addr insertAtCursor(std::uint64_t advance);

    /** Node under the roving cursor (kNullAddr when empty). */
    Addr cursor() const { return cursor_; }

    /** Unlink and free the head node (no-op when empty). */
    void popFront();

    /**
     * Unlink and free @p node using its next/prev pointers, as the
     * program under test would; with corrupted prev pointers the
     * unlink is (realistically) incomplete.
     */
    void remove(Addr node);

    /**
     * Attach an externally owned payload to @p node (shared-state
     * scenarios).  Frees any payload this list owned on that node.
     */
    void sharePayload(Addr node, Addr payload);

    /**
     * Take ownership of @p payload on @p node: the list frees it
     * with the node.  Frees any payload the node already owned.
     */
    void adoptPayload(Addr node, Addr payload);

    /** Walk the list touching every node (and payload). */
    void traverse();

    /** Node at walk position @p index, or kNullAddr past the end. */
    Addr nodeAt(std::uint64_t index);

    /** Free all nodes (and owned payloads). */
    void clear();

    std::uint64_t size() const { return size_; }

    Addr head() const { return head_; }
    Addr tail() const { return tail_; }

  private:
    Addr allocNode();
    void freeNode(Addr node);

    Context &ctx_;
    std::uint64_t payload_size_;
    Addr head_ = kNullAddr;
    Addr tail_ = kNullAddr;
    Addr cursor_ = kNullAddr;
    std::uint64_t size_ = 0;
    FnId fn_push_, fn_insert_, fn_remove_, fn_traverse_, fn_clear_;
};

} // namespace istl

} // namespace heapmd

#endif // HEAPMD_ISTL_DLL_HH
