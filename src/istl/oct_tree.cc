#include "istl/oct_tree.hh"

#include <unordered_set>

namespace heapmd
{

namespace istl
{

OctTree::OctTree(Context &ctx)
    : ctx_(ctx),
      fn_build_(ctx.heap.intern("OctTree::build")),
      fn_traverse_(ctx.heap.intern("OctTree::traverse")),
      fn_clear_(ctx.heap.intern("OctTree::clear"))
{
}

OctTree::~OctTree()
{
    clear();
}

void
OctTree::build(std::uint32_t depth, double branch_prob)
{
    FunctionScope scope(ctx_.heap, fn_build_);
    clear();
    share_pool_.assign(depth + 1, {});
    root_ = buildRec(depth, branch_prob);
    share_pool_.clear();
}

Addr
OctTree::buildRec(std::uint32_t depth, double branch_prob)
{
    const Addr node = ctx_.heap.malloc(kNodeSize);
    nodes_.push_back(node);
    ctx_.heap.storeData(node + kDataOff, ctx_.rng() & 0xFFFF);

    if (depth > 0) {
        for (std::uint32_t c = 0; c < kFanout; ++c) {
            if (!ctx_.rng.chance(branch_prob))
                continue;
            Addr child = kNullAddr;
            auto &pool = share_pool_[depth - 1];
            if (!pool.empty() && ctx_.fire(FaultKind::OctTreeDag)) {
                // BUG (injected): reuse an already-built subtree of
                // the same depth instead of allocating a fresh one
                // -- the construction produces an oct-DAG.
                child = pool[ctx_.rng.below(pool.size())];
            } else {
                child = buildRec(depth - 1, branch_prob);
                pool.push_back(child);
            }
            ctx_.heap.storePtr(node + kChildOff + 8 * c, child);
        }
    }
    return node;
}

void
OctTree::buildBudget(std::uint64_t node_budget, double branch_prob)
{
    FunctionScope scope(ctx_.heap, fn_build_);
    clear();
    if (node_budget == 0)
        return;

    const auto make_node = [this]() {
        const Addr node = ctx_.heap.malloc(kNodeSize);
        nodes_.push_back(node);
        ctx_.heap.storeData(node + kDataOff, ctx_.rng() & 0xFFFF);
        return node;
    };

    std::uint64_t remaining = node_budget;
    root_ = make_node();
    --remaining;

    // Breadth-first: every popped node receives children while the
    // budget lasts; recently built nodes double as the DAG share
    // pool.
    std::vector<Addr> frontier{root_};
    std::vector<Addr> pool;
    std::size_t head = 0;
    while (remaining > 0 && head < frontier.size()) {
        const Addr node = frontier[head++];
        for (std::uint32_t c = 0; c < kFanout && remaining > 0; ++c) {
            if (!ctx_.rng.chance(branch_prob))
                continue;
            Addr child = kNullAddr;
            if (!pool.empty() && ctx_.fire(FaultKind::OctTreeDag)) {
                // BUG (injected): reuse an existing subtree -- the
                // construction produces an oct-DAG.
                child = pool[ctx_.rng.below(pool.size())];
            } else {
                child = make_node();
                --remaining;
                frontier.push_back(child);
                pool.push_back(child);
            }
            ctx_.heap.storePtr(node + kChildOff + 8 * c, child);
        }
    }
}

void
OctTree::traverse()
{
    if (root_ == kNullAddr)
        return;
    FunctionScope scope(ctx_.heap, fn_traverse_);
    std::unordered_set<Addr> seen;
    std::vector<Addr> stack{root_};
    while (!stack.empty()) {
        const Addr node = stack.back();
        stack.pop_back();
        if (!seen.insert(node).second)
            continue; // shared subtree: visit once
        ctx_.heap.touch(node);
        for (std::uint32_t c = 0; c < kFanout; ++c) {
            const Addr child =
                ctx_.heap.loadPtr(node + kChildOff + 8 * c);
            if (child != kNullAddr)
                stack.push_back(child);
        }
    }
}

void
OctTree::clear()
{
    if (nodes_.empty()) {
        root_ = kNullAddr;
        return;
    }
    FunctionScope scope(ctx_.heap, fn_clear_);
    // Free by allocation record rather than by pointer chasing: every
    // node is freed exactly once even when the structure is a DAG.
    for (Addr node : nodes_)
        ctx_.heap.free(node);
    nodes_.clear();
    root_ = kNullAddr;
}

} // namespace istl

} // namespace heapmd
