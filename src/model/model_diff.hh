/**
 * @file
 * Model diffing: the "program evolution" application of Section 6.
 *
 * "HeapMD's ability to identify stable characteristics of the
 * heap-graph ... can potentially be used to aid software evolution by
 * tracking important changes in the heap behavior of different
 * versions of software."  Comparing two calibrated models shows
 * exactly that: which metrics gained or lost stability between
 * builds, and how far the calibrated ranges moved.
 */

#ifndef HEAPMD_MODEL_MODEL_DIFF_HH
#define HEAPMD_MODEL_MODEL_DIFF_HH

#include <string>
#include <vector>

#include "model/model.hh"

namespace heapmd
{

/** One metric's change between two models. */
struct MetricDiff
{
    enum class Kind
    {
        GainedStability, //!< stable in new, not in old
        LostStability,   //!< stable in old, not in new
        RangeShifted,    //!< stable in both, range moved notably
        Unchanged,       //!< stable in both, ranges agree
    };

    MetricId id = MetricId::Roots;
    Kind kind = Kind::Unchanged;

    /** Old calibration (zeroed when not stable in the old model). */
    double oldMin = 0.0, oldMax = 0.0;

    /** New calibration (zeroed when not stable in the new model). */
    double newMin = 0.0, newMax = 0.0;

    /**
     * Range movement score: max bound displacement as a fraction of
     * the old span (0 when either side is missing).
     */
    double shift = 0.0;
};

/** Full comparison of two models. */
struct ModelDiff
{
    std::vector<MetricDiff> metrics; //!< one entry per changed metric

    /** True when no metric changed stability or range. */
    bool unchanged() const { return metrics.empty(); }

    /** Human-readable report. */
    std::string describe() const;
};

/**
 * Compare @p older and @p newer.
 *
 * @param shift_tolerance ranges whose bounds move by less than this
 *        fraction of the old span (and less than 1 percentage point)
 *        count as unchanged; Figure 7(B) shows clean builds move
 *        their ranges barely at all.
 */
ModelDiff diffModels(const HeapModel &older, const HeapModel &newer,
                     double shift_tolerance = 0.15);

} // namespace heapmd

#endif // HEAPMD_MODEL_MODEL_DIFF_HH
