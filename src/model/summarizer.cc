#include "model/summarizer.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"
#include "telemetry/telemetry.hh"

namespace heapmd
{

MetricSummarizer::MetricSummarizer(SummarizerConfig config)
    : config_(config)
{
    if (config_.stableInputFraction <= 0.0 ||
        config_.stableInputFraction > 1.0) {
        HEAPMD_FATAL("stableInputFraction must be in (0, 1]");
    }
}

void
MetricSummarizer::addRun(const MetricSeries &series)
{
    HEAPMD_TRACE_SPAN("model.add_run");
    HEAPMD_COUNTER_INC("model.runs_summarized");
    RunAnalysis analysis;
    analysis.label = series.label;
    for (MetricId id : kAllMetrics) {
        const std::size_t i = metricIndex(id);
        analysis.perMetric[i] =
            analyzeMetric(series, id, config_.thresholds);
        analysis.stable[i] =
            isGloballyStable(analysis.perMetric[i], config_.thresholds);
        analysis.klass[i] =
            classify(analysis.perMetric[i], config_.thresholds);
    }
    runs_.push_back(std::move(analysis));
}

std::size_t
MetricSummarizer::stableRunCount(MetricId id) const
{
    const std::size_t i = metricIndex(id);
    std::size_t count = 0;
    for (const RunAnalysis &run : runs_)
        count += run.stable[i] ? 1 : 0;
    return count;
}

std::vector<bool>
MetricSummarizer::rejectOutliers(MetricId id,
                                 std::vector<bool> qualifying) const
{
    const std::size_t i = metricIndex(id);
    std::size_t count = 0;
    for (std::size_t r = 0; r < qualifying.size(); ++r)
        count += qualifying[r] ? 1 : 0;
    if (count < 3 || config_.outlierGapFraction < 0.0)
        return qualifying; // too few runs to call anything an outlier

    // Leave-one-out: a run whose envelope sits far beyond the range
    // of the *other* stable runs carries a bug that manifested during
    // training; clean extremal runs extend the range only modestly.
    std::vector<bool> keep = qualifying;
    for (std::size_t r = 0; r < runs_.size(); ++r) {
        if (!qualifying[r])
            continue;
        double lo = std::numeric_limits<double>::infinity();
        double hi = -std::numeric_limits<double>::infinity();
        for (std::size_t o = 0; o < runs_.size(); ++o) {
            if (!qualifying[o] || o == r)
                continue;
            lo = std::min(lo, runs_[o].perMetric[i].minValue);
            hi = std::max(hi, runs_[o].perMetric[i].maxValue);
        }
        const double margin =
            std::max(config_.outlierGapFraction * (hi - lo),
                     config_.outlierGapFloor);
        const FluctuationSummary &fs = runs_[r].perMetric[i];
        if (fs.maxValue > hi + margin || fs.minValue < lo - margin)
            keep[r] = false;
    }
    return keep;
}

std::vector<bool>
MetricSummarizer::rangeContributors(MetricId id) const
{
    const std::size_t i = metricIndex(id);
    std::vector<bool> qualifying(runs_.size(), false);
    for (std::size_t r = 0; r < runs_.size(); ++r)
        qualifying[r] = runs_[r].stable[i];
    return rejectOutliers(id, std::move(qualifying));
}

std::optional<HeapModel::Entry>
MetricSummarizer::buildEntry(MetricId id,
                             const std::vector<bool> &included,
                             std::size_t stable_runs,
                             bool locally_stable) const
{
    const std::size_t i = metricIndex(id);
    HeapModel::Entry entry;
    entry.id = id;
    entry.stableRuns = stable_runs;
    entry.locallyStable = locally_stable;
    entry.minValue = std::numeric_limits<double>::infinity();
    entry.maxValue = -std::numeric_limits<double>::infinity();
    double avg_sum = 0.0, std_sum = 0.0;
    std::size_t contributors = 0;
    for (std::size_t r = 0; r < runs_.size(); ++r) {
        if (!included[r])
            continue;
        const FluctuationSummary &fs = runs_[r].perMetric[i];
        entry.minValue = std::min(entry.minValue, fs.minValue);
        entry.maxValue = std::max(entry.maxValue, fs.maxValue);
        avg_sum += fs.avgChange;
        std_sum += fs.stdDev;
        ++contributors;
    }
    if (contributors == 0)
        return std::nullopt;
    entry.avgChange = avg_sum / static_cast<double>(contributors);
    entry.stdDev = std_sum / static_cast<double>(contributors);
    if (entry.maxValue < config_.minMeaningfulValue)
        return std::nullopt; // degenerate near-zero metric
    return entry;
}

HeapModel
MetricSummarizer::buildModel(const std::string &program_name) const
{
    HEAPMD_TRACE_SPAN("model.build");
    HEAPMD_COUNTER_INC("model.builds");
    HeapModel model;
    model.programName = program_name;
    model.trainingRuns = runs_.size();
    if (runs_.empty())
        return model;

    const std::size_t needed = std::max<std::size_t>(
        config_.minStableRuns,
        static_cast<std::size_t>(std::ceil(
            config_.stableInputFraction *
            static_cast<double>(runs_.size()))));

    for (MetricId id : kAllMetrics) {
        const std::size_t stable_runs = stableRunCount(id);
        if (stable_runs < needed)
            continue;
        const auto entry = buildEntry(id, rangeContributors(id),
                                      stable_runs, false);
        if (entry)
            model.addEntry(*entry);
    }

    if (config_.includeLocallyStable) {
        // Future-work extension: metrics that are at least locally
        // stable (flat within phases) on enough inputs, and not
        // already in the model as globally stable.
        for (MetricId id : kAllMetrics) {
            if (model.isStable(id))
                continue;
            const std::size_t i = metricIndex(id);
            std::vector<bool> qualifying(runs_.size(), false);
            std::size_t count = 0;
            for (std::size_t r = 0; r < runs_.size(); ++r) {
                qualifying[r] =
                    runs_[r].klass[i] != Stability::Unstable;
                count += qualifying[r] ? 1 : 0;
            }
            if (count < needed)
                continue;
            const auto entry = buildEntry(
                id, rejectOutliers(id, std::move(qualifying)), count,
                true);
            if (entry)
                model.addEntry(*entry);
        }
    }

    // Metrics never stable on any input feed the pathological check.
    for (MetricId id : kAllMetrics) {
        if (stableRunCount(id) == 0)
            model.unstableMetrics.push_back(id);
    }
    return model;
}

std::vector<std::size_t>
MetricSummarizer::suspectTrainingRuns(const HeapModel &model) const
{
    std::vector<std::size_t> suspects;
    for (std::size_t r = 0; r < runs_.size(); ++r) {
        bool out_of_range = false;
        for (const HeapModel::Entry &e : model.entries()) {
            const std::size_t i = metricIndex(e.id);
            const FluctuationSummary &fs = runs_[r].perMetric[i];
            if (runs_[r].stable[i] && rangeContributors(e.id)[r])
                continue; // this run contributed to the range
            const double slack = std::max(
                config_.suspectSlackFraction *
                    (e.maxValue - e.minValue),
                config_.suspectSlackAbs);
            if (fs.minValue < e.minValue - slack ||
                fs.maxValue > e.maxValue + slack) {
                out_of_range = true;
                break;
            }
        }
        if (out_of_range)
            suspects.push_back(r);
    }
    return suspects;
}

} // namespace heapmd
