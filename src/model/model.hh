/**
 * @file
 * The calibrated heap-behaviour model produced by training.
 */

#ifndef HEAPMD_MODEL_MODEL_HH
#define HEAPMD_MODEL_MODEL_HH

#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "metrics/metric.hh"

namespace heapmd
{

/**
 * The "summarized metric report" of Section 2.1: for each metric that
 * was identified as globally stable during training, the minimum and
 * maximum values it attained across the stable training runs.  This
 * is the entire model the anomaly detector checks against.
 */
class HeapModel
{
  public:
    /** Calibration record of one stable metric. */
    struct Entry
    {
        MetricId id = MetricId::Roots;
        double minValue = 0.0;   //!< calibrated range lower bound
        double maxValue = 0.0;   //!< calibrated range upper bound
        double avgChange = 0.0;  //!< mean avg-%-change over stable runs
        double stdDev = 0.0;     //!< mean change-stddev over stable runs
        std::size_t stableRuns = 0; //!< training inputs it was stable on

        /**
         * True for *locally* stable metrics (Section 2.1: flat within
         * program phases, spiky across them).  These are an opt-in
         * extension the paper lists as future work; the detector
         * checks them against a widened range (phase spikes are
         * expected excursions, not anomalies).
         */
        bool locallyStable = false;
    };

    /** Name of the program the model was calibrated for. */
    std::string programName;

    /** Number of training inputs consumed. */
    std::size_t trainingRuns = 0;

    /** Add a stable-metric calibration (one per metric at most). */
    void addEntry(const Entry &entry);

    /** True when @p id was identified as globally stable. */
    bool isStable(MetricId id) const;

    /** Calibration of @p id, or nullopt when not stable. */
    std::optional<Entry> entry(MetricId id) const;

    /** All stable-metric calibrations, in metric order. */
    const std::vector<Entry> &entries() const { return entries_; }

    /**
     * Metrics that were *never* stable on any training input.  The
     * execution checker uses these for the "pathological bug" check
     * (Section 4.1: normally unstable metrics becoming stable).
     */
    std::vector<MetricId> unstableMetrics;

    /** Number of stable metrics (global + local entries). */
    std::size_t stableMetricCount() const { return entries_.size(); }

    /** Number of globally stable entries only. */
    std::size_t globallyStableMetricCount() const;

    /** Number of locally stable entries only. */
    std::size_t locallyStableMetricCount() const;

    /**
     * True when @p value violates the calibrated range of @p id.
     * Always false for metrics that are not in the model.
     */
    bool violates(MetricId id, double value) const;

    /** Serialize as a line-oriented text document. */
    void save(std::ostream &os) const;

    /** Parse a document produced by save(); fatal on malformed. */
    static HeapModel load(std::istream &is);

  private:
    std::vector<Entry> entries_;
};

} // namespace heapmd

#endif // HEAPMD_MODEL_MODEL_HH
