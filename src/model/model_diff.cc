#include "model/model_diff.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace heapmd
{

std::string
ModelDiff::describe() const
{
    if (metrics.empty())
        return "models agree: no stability or range changes\n";
    std::ostringstream os;
    for (const MetricDiff &d : metrics) {
        os << metricName(d.id) << ": ";
        switch (d.kind) {
          case MetricDiff::Kind::GainedStability:
            os << "GAINED stability, new range [" << d.newMin << ", "
               << d.newMax << "]";
            break;
          case MetricDiff::Kind::LostStability:
            os << "LOST stability (was [" << d.oldMin << ", "
               << d.oldMax << "])";
            break;
          case MetricDiff::Kind::RangeShifted:
            os << "range moved [" << d.oldMin << ", " << d.oldMax
               << "] -> [" << d.newMin << ", " << d.newMax
               << "] (shift " << d.shift << ")";
            break;
          case MetricDiff::Kind::Unchanged:
            os << "unchanged";
            break;
        }
        os << '\n';
    }
    return os.str();
}

ModelDiff
diffModels(const HeapModel &older, const HeapModel &newer,
           double shift_tolerance)
{
    ModelDiff diff;
    for (MetricId id : kAllMetrics) {
        const auto old_entry = older.entry(id);
        const auto new_entry = newer.entry(id);
        if (!old_entry && !new_entry)
            continue;

        MetricDiff d;
        d.id = id;
        if (old_entry) {
            d.oldMin = old_entry->minValue;
            d.oldMax = old_entry->maxValue;
        }
        if (new_entry) {
            d.newMin = new_entry->minValue;
            d.newMax = new_entry->maxValue;
        }

        if (old_entry && !new_entry) {
            d.kind = MetricDiff::Kind::LostStability;
        } else if (!old_entry && new_entry) {
            d.kind = MetricDiff::Kind::GainedStability;
        } else {
            const double span =
                std::max(d.oldMax - d.oldMin, 1e-9);
            const double moved =
                std::max(std::fabs(d.newMin - d.oldMin),
                         std::fabs(d.newMax - d.oldMax));
            d.shift = moved / span;
            const bool notable = d.shift > shift_tolerance &&
                                 moved > 1.0; // >1 percentage point
            d.kind = notable ? MetricDiff::Kind::RangeShifted
                             : MetricDiff::Kind::Unchanged;
        }
        if (d.kind != MetricDiff::Kind::Unchanged)
            diff.metrics.push_back(d);
    }
    return diff;
}

} // namespace heapmd
