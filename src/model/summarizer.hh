/**
 * @file
 * The metric summarizer: consolidates per-run metric reports into a
 * HeapModel (Section 2.1, "The metric summarizer").
 */

#ifndef HEAPMD_MODEL_SUMMARIZER_HH
#define HEAPMD_MODEL_SUMMARIZER_HH

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "metrics/stability.hh"
#include "model/model.hh"

namespace heapmd
{

/** Knobs of the summarizer. */
struct SummarizerConfig
{
    /** Stability thresholds (paper: +/-1% avg, stddev 5, trim 10%). */
    StabilityThresholds thresholds;

    /**
     * Fraction of training inputs on which a metric must be stable to
     * be declared globally stable (paper: 40%, Section 4.1).
     */
    double stableInputFraction = 0.40;

    /**
     * Minimum number of stable inputs regardless of fraction (the
     * paper reports "usually about 3" inputs suffice).
     */
    std::size_t minStableRuns = 1;

    /**
     * Metrics whose maximum observed value (percent) never reaches
     * this floor are dropped from the model: a constant-zero metric
     * is trivially "stable" but its [0, 0] range would flag any
     * measurement noise as an anomaly.
     */
    double minMeaningfulValue = 0.5;

    /**
     * Leave-one-out outlier rejection during range calibration: a
     * stable run whose value envelope extends beyond the remaining
     * stable runs' range by more than
     * max(outlierGapFraction * their span, outlierGapFloor) is
     * excluded from the range and reported as a suspect training
     * input.  This automates the paper's manual step of selecting
     * inputs "where the same set of metrics were consistently
     * stable" (Section 4.1): a training input carrying a manifested
     * bug can look stable at a displaced value, and must not
     * silently widen the model.  Set the fraction negative to
     * disable.
     */
    double outlierGapFraction = 1.0;
    double outlierGapFloor = 0.75; //!< percentage points

    /**
     * Slack applied when classifying training runs as suspect
     * (Section 4.1's "treated as buggy" rule), mirroring the
     * execution checker's calibration slack: a run is suspect only
     * when its envelope leaves the calibrated range by more than
     * max(suspectSlackFraction * span, suspectSlackAbs).
     */
    double suspectSlackFraction = 0.25;
    double suspectSlackAbs = 1.0;

    /**
     * Also admit *locally stable* metrics into the model (Section
     * 2.1's classification; the paper lists this as future work,
     * Section 4.4 item 3).  Local entries calibrate the same min/max
     * range but are checked by the detector against a widened band,
     * since phase spikes are expected excursions for them.
     */
    bool includeLocallyStable = false;
};

/** Per-run, per-metric analysis retained for reporting (Figure 7). */
struct RunAnalysis
{
    std::string label; //!< copied from the series
    std::array<FluctuationSummary, kNumMetrics> perMetric{};
    std::array<bool, kNumMetrics> stable{};
    std::array<Stability, kNumMetrics> klass{};
};

/**
 * Consumes the MetricSeries of each training run and produces the
 * calibrated model: metrics stable on enough inputs become model
 * entries whose range is the min/max those metrics attained across
 * their *stable* runs.
 */
class MetricSummarizer
{
  public:
    explicit MetricSummarizer(SummarizerConfig config = {});

    /** Analyze one training run and retain its summary. */
    void addRun(const MetricSeries &series);

    /** Number of runs consumed. */
    std::size_t runCount() const { return runs_.size(); }

    /** Per-run analyses, in addRun order. */
    const std::vector<RunAnalysis> &runs() const { return runs_; }

    /** Number of runs on which @p id met the stability thresholds. */
    std::size_t stableRunCount(MetricId id) const;

    /** Build the calibrated model from the runs consumed so far. */
    HeapModel buildModel(const std::string &program_name) const;

    /**
     * Indices of training runs where some model-stable metric leaves
     * the calibrated range; the paper treats such training inputs as
     * buggy (Section 4.1).
     */
    std::vector<std::size_t>
    suspectTrainingRuns(const HeapModel &model) const;

    const SummarizerConfig &config() const { return config_; }

  private:
    /**
     * For metric @p id: which stable runs contribute to the range
     * after leave-one-out outlier rejection.  Entries are false for
     * unstable runs and for rejected outliers.
     */
    std::vector<bool> rangeContributors(MetricId id) const;

    /** Shared gap-rejection pass over an arbitrary qualifying mask. */
    std::vector<bool>
    rejectOutliers(MetricId id, std::vector<bool> qualifying) const;

    /** Build one model entry from the qualifying runs, or nothing. */
    std::optional<HeapModel::Entry>
    buildEntry(MetricId id, const std::vector<bool> &included,
               std::size_t stable_runs, bool locally_stable) const;

    SummarizerConfig config_;
    std::vector<RunAnalysis> runs_;
};

} // namespace heapmd

#endif // HEAPMD_MODEL_SUMMARIZER_HH
