#include "model/model.hh"

#include <sstream>

#include "support/logging.hh"

namespace heapmd
{

void
HeapModel::addEntry(const Entry &entry)
{
    if (isStable(entry.id))
        HEAPMD_PANIC("duplicate model entry for ",
                     metricName(entry.id));
    if (entry.minValue > entry.maxValue)
        HEAPMD_PANIC("model entry with min > max for ",
                     metricName(entry.id));
    entries_.push_back(entry);
}

std::size_t
HeapModel::globallyStableMetricCount() const
{
    std::size_t n = 0;
    for (const Entry &e : entries_)
        n += e.locallyStable ? 0 : 1;
    return n;
}

std::size_t
HeapModel::locallyStableMetricCount() const
{
    std::size_t n = 0;
    for (const Entry &e : entries_)
        n += e.locallyStable ? 1 : 0;
    return n;
}

bool
HeapModel::isStable(MetricId id) const
{
    return entry(id).has_value();
}

std::optional<HeapModel::Entry>
HeapModel::entry(MetricId id) const
{
    for (const Entry &e : entries_) {
        if (e.id == id)
            return e;
    }
    return std::nullopt;
}

bool
HeapModel::violates(MetricId id, double value) const
{
    const auto e = entry(id);
    if (!e)
        return false;
    return value < e->minValue || value > e->maxValue;
}

void
HeapModel::save(std::ostream &os) const
{
    os << "heapmd-model v1\n";
    os << "program " << programName << '\n';
    os << "runs " << trainingRuns << '\n';
    os.precision(17);
    for (const Entry &e : entries_) {
        os << "metric " << metricName(e.id)
           << " kind " << (e.locallyStable ? "local" : "global")
           << " min " << e.minValue
           << " max " << e.maxValue
           << " avg " << e.avgChange
           << " std " << e.stdDev
           << " stable_runs " << e.stableRuns << '\n';
    }
    for (MetricId id : unstableMetrics)
        os << "unstable " << metricName(id) << '\n';
    os << "end\n";
}

HeapModel
HeapModel::load(std::istream &is)
{
    HeapModel model;
    std::string line;

    if (!std::getline(is, line) || line != "heapmd-model v1")
        HEAPMD_FATAL("not a heapmd model (bad header)");

    bool saw_end = false;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "program") {
            std::string rest;
            std::getline(ls, rest);
            if (!rest.empty() && rest.front() == ' ')
                rest.erase(0, 1);
            model.programName = rest;
        } else if (key == "runs") {
            ls >> model.trainingRuns;
        } else if (key == "metric") {
            Entry e;
            std::string name, token, kind;
            ls >> name >> token;
            if (token == "kind") { // current format
                ls >> kind >> token;
                e.locallyStable = kind == "local";
            } // else: legacy format without the kind field
            std::string kmax, kavg, kstd, kruns;
            ls >> e.minValue >> kmax >> e.maxValue >> kavg >>
                e.avgChange >> kstd >> e.stdDev >> kruns >>
                e.stableRuns;
            if (!ls || token != "min" || kmax != "max" ||
                kavg != "avg" || kstd != "std" ||
                kruns != "stable_runs") {
                HEAPMD_FATAL("malformed model metric line: ", line);
            }
            e.id = metricFromName(name);
            model.addEntry(e);
        } else if (key == "unstable") {
            std::string name;
            ls >> name;
            model.unstableMetrics.push_back(metricFromName(name));
        } else if (key == "end") {
            saw_end = true;
            break;
        } else {
            HEAPMD_FATAL("unknown model key '", key, "'");
        }
    }
    if (!saw_end)
        HEAPMD_FATAL("model document missing 'end'");
    return model;
}

} // namespace heapmd
