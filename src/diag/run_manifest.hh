/**
 * @file
 * Run manifests: self-describing records of one heapmd run.
 *
 * Every `train` / `check` / `replay` invocation can write a manifest:
 * what was run (command line, config knobs), what it consumed (input
 * artifact paths + content fingerprints), what happened (event/sample
 * counts, wall/CPU time, anomaly-report tallies, bundle paths), the
 * final telemetry counter snapshot, and per-metric series summary
 * statistics.  Two runs are then comparable without re-running --
 * `heapmd trend` consumes exactly these documents.
 *
 * Same canonical-JSON contract as incident bundles: stable field
 * names, versioned schema, byte-for-byte save/load round-trip.
 */

#ifndef HEAPMD_DIAG_RUN_MANIFEST_HH
#define HEAPMD_DIAG_RUN_MANIFEST_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/heapmd.hh"
#include "metrics/series.hh"
#include "telemetry/registry.hh"

namespace heapmd
{
namespace diag
{

/** Manifest document type tag (the JSON "kind" member). */
inline constexpr const char *kManifestKind = "heapmd.manifest";

/**
 * Current manifest schema version.  Version 2 added the "env"
 * object (hardwareConcurrency, sanitizer); version 3 added the
 * `phases[]` block plus env peakRssBytes/durationNanos; version 4
 * added config.rotateBytes (capture segment-rotation provenance,
 * pooled by `fleet-merge`).  Older documents still load, with the
 * newer fields defaulted.
 */
inline constexpr std::uint64_t kManifestSchemaVersion = 4;

/** One input artifact a run consumed. */
struct ManifestInput
{
    std::string role;        //!< "model", "trace", ...
    std::string path;
    std::string fingerprint; //!< "fnv1a:<hex16>", "" when unreadable
    std::uint64_t bytes = 0;
};

/** Summary statistics of one metric over the run. */
struct ManifestMetric
{
    std::string metric; //!< metricName()
    SeriesSummary summary;
};

/** One telemetry counter at run end. */
struct ManifestCounter
{
    std::string name;
    std::uint64_t value = 0;
};

/** One telemetry gauge at run end. */
struct ManifestGauge
{
    std::string name;
    std::int64_t value = 0;
};

/**
 * Aggregated accounting of one pipeline phase (schema v3), mirroring
 * telemetry::PhaseStats: how often the phase ran, summed wall and
 * CPU time, and bytes processed.  `heapmd trend` compares wall time
 * per phase so a slowdown is attributed to a stage, not just the
 * end-to-end run.
 */
struct ManifestPhase
{
    std::string name; //!< "phase.<stage>", sorted
    std::uint64_t count = 0;
    std::uint64_t wallNanos = 0;
    std::uint64_t cpuNanos = 0;
    std::uint64_t bytes = 0;
};

/** The whole run record. */
struct RunManifest
{
    std::uint64_t schemaVersion = kManifestSchemaVersion;
    std::string command;     //!< "train", "check", "replay"
    std::string commandLine; //!< argv joined with spaces
    std::string program;     //!< app name or series label

    /** Config knobs that shape the run. */
    std::uint64_t metricFrequency = 0; //!< frq
    bool includeLocallyStable = false; //!< --local
    std::uint64_t seed = 0;
    std::uint64_t version = 0;
    double scale = 1.0;
    std::string fault;      //!< "" when no fault injected
    double faultRate = 0.0;

    /**
     * Segment-rotation threshold of the capture that produced the
     * input trace (schema v4); 0 = monolithic / not a capture run.
     * Together with metricFrequency this is the sampling provenance
     * `fleet-merge` refuses to pool silently across mismatches.
     */
    std::uint64_t rotateBytes = 0;

    /**
     * Execution environment (schema v2).  Deliberately excludes the
     * worker count: output is byte-identical at any --jobs, so the
     * manifest must be too.  0 / "" on documents loaded from v1.
     */
    std::uint64_t hardwareConcurrency = 0;
    std::string sanitizer; //!< "none" or the -fsanitize list

    /**
     * Process-level resource footprint (schema v3): ru_maxrss at
     * manifest-write time and wall-clock duration of the whole CLI
     * invocation.  Both are timing-like and excluded from the
     * byte-identity contract (normalized like *_ns counters); trend's
     * env-rss check is how a memory regression becomes visible.
     */
    std::uint64_t peakRssBytes = 0;
    std::uint64_t durationNanos = 0;

    std::vector<ManifestInput> inputs;

    /** Per-phase accounting (schema v3), sorted by phase name. */
    std::vector<ManifestPhase> phases;

    /** Run accounting. */
    std::uint64_t events = 0;  //!< runtime ticks consumed
    std::uint64_t samples = 0; //!< metric computation points
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t liveBlocksAtExit = 0;
    std::uint64_t wallNanos = 0;
    std::uint64_t cpuNanos = 0;

    /** Anomaly-report tallies (0 everywhere for train/observe). */
    std::uint64_t reportsTotal = 0;
    std::uint64_t heapAnomalies = 0;
    std::uint64_t poorlyDisguised = 0;
    std::uint64_t pathological = 0;
    std::vector<std::string> bundlePaths; //!< bundles this run wrote

    std::vector<ManifestMetric> metrics;   //!< per-metric summaries
    std::vector<ManifestCounter> counters; //!< sorted by name
    std::vector<ManifestGauge> gauges;     //!< sorted by name

    /** samples / events; 0 when no events (trend's drop detector). */
    double sampleRate() const;
};

/**
 * Assemble the run-derived portion of a manifest from a pipeline
 * outcome.  The caller fills command identity, config knobs, inputs,
 * and bundle paths (CLI concerns the pipeline cannot know).
 */
RunManifest makeRunManifest(const std::string &command,
                            const std::string &command_line,
                            const RunOutcome &run,
                            const CheckResult *check);

/** Record an input artifact: fingerprints @p path best-effort. */
void addManifestInput(RunManifest &manifest, const std::string &role,
                      const std::string &path);

/** Copy the counter/gauge sections from a telemetry snapshot. */
void captureCounters(RunManifest &manifest,
                     const telemetry::MetricsSnapshot &snapshot);

/** Canonical JSON rendering (ends with a newline). */
void saveRunManifest(const RunManifest &manifest, std::ostream &os);

/** saveRunManifest into a string. */
std::string manifestToJson(const RunManifest &manifest);

/**
 * Parse a manifest document.
 * @return false with a description in @p error on malformed input.
 */
bool loadRunManifest(const std::string &json, RunManifest &out,
                     std::string *error);

/** loadRunManifest over a file's contents. */
bool loadRunManifestFile(const std::string &path, RunManifest &out,
                         std::string *error);

/**
 * Cheap pre-flight: parse only kind + schemaVersion of the manifest
 * document in @p json.  Succeeds for any version number -- the point
 * is to let callers (trend, fleet-merge) reject unknown or mixed
 * versions as a *usage* error, with the offending version in hand,
 * before a full load turns it into a generic parse failure.
 */
bool peekManifestSchemaVersion(const std::string &json,
                               std::uint64_t &version,
                               std::string *error);

/** peekManifestSchemaVersion over a file's contents. */
bool peekManifestSchemaVersionFile(const std::string &path,
                                   std::uint64_t &version,
                                   std::string *error);

} // namespace diag
} // namespace heapmd

#endif // HEAPMD_DIAG_RUN_MANIFEST_HH
