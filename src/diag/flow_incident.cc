#include "diag/flow_incident.hh"

#include <sstream>

#include "diag/json.hh"
#include "telemetry/telemetry.hh"

namespace heapmd
{
namespace diag
{

namespace
{

FlowSiteRecord
siteRecord(const analysis::FlowAnalysis &analysis,
           const analysis::FlowSite &site)
{
    FlowSiteRecord out;
    out.known = site.known;
    if (!site.known)
        return out;
    out.fnId = site.fn;
    out.name = analysis.fnName(site.fn);
    out.eventIndex = site.eventIndex;
    out.byteOffset = site.byteOffset;
    return out;
}

void
saveSite(JsonWriter &w, const char *key, const FlowSiteRecord &site)
{
    w.beginObject(key);
    w.fieldBool("known", site.known);
    w.field("fnId", static_cast<std::uint64_t>(site.fnId));
    w.field("name", site.name);
    w.field("eventIndex", site.eventIndex);
    w.field("byteOffset", site.byteOffset);
    w.endObject();
}

bool
fail(std::string *error, const std::string &what)
{
    if (error != nullptr)
        *error = "flow incident: " + what;
    return false;
}

bool
loadSite(const telemetry::JsonValue &root, const char *key,
         FlowSiteRecord &out, std::string *error)
{
    const telemetry::JsonValue *site = jsonObject(root, key, error);
    if (site == nullptr)
        return false;
    std::uint64_t id = 0;
    if (!jsonBool(*site, "known", out.known, error) ||
        !jsonU64(*site, "fnId", id, error) ||
        !jsonString(*site, "name", out.name, error) ||
        !jsonU64(*site, "eventIndex", out.eventIndex, error) ||
        !jsonU64(*site, "byteOffset", out.byteOffset, error)) {
        return false;
    }
    out.fnId = static_cast<FnId>(id);
    return true;
}

} // namespace

FlowIncident
makeFlowIncident(const analysis::FlowAnalysis &analysis,
                 const analysis::FlowFinding &finding,
                 const std::string &program)
{
    FlowIncident out;
    out.program = program;
    out.rule = finding.rule;
    out.severity = analysis::severityName(finding.severity);
    out.message = finding.message;
    out.byteOffset = finding.byteOffset;
    out.eventIndex = finding.eventIndex;
    out.addr = finding.addr;
    out.base = finding.base;
    out.size = finding.size;
    out.lifetimeEvents = finding.lifetimeEvents;
    out.objects = finding.objects;
    out.bytes = finding.bytes;
    out.allocSite = siteRecord(analysis, finding.allocSite);
    out.freeSite = siteRecord(analysis, finding.freeSite);
    HEAPMD_COUNTER_INC("diag.flow_incidents_built");
    return out;
}

void
saveFlowIncident(const FlowIncident &incident, std::ostream &os)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("kind", kFlowKind);
    w.field("schemaVersion", incident.schemaVersion);
    w.field("program", incident.program);
    w.field("rule", incident.rule);
    w.field("severity", incident.severity);
    w.field("message", incident.message);
    w.field("byteOffset", incident.byteOffset);
    w.field("eventIndex", incident.eventIndex);
    w.field("addr", incident.addr);
    w.field("base", incident.base);
    w.field("size", incident.size);
    w.field("lifetimeEvents", incident.lifetimeEvents);
    w.field("objects", incident.objects);
    w.field("bytes", incident.bytes);
    saveSite(w, "allocSite", incident.allocSite);
    saveSite(w, "freeSite", incident.freeSite);
    w.endObject();
    os << "\n";
}

std::string
flowIncidentToJson(const FlowIncident &incident)
{
    std::ostringstream os;
    saveFlowIncident(incident, os);
    return os.str();
}

bool
loadFlowIncident(const std::string &json, FlowIncident &out,
                 std::string *error)
{
    telemetry::JsonValue root;
    std::string parse_error;
    if (!telemetry::parseJson(json, root, &parse_error))
        return fail(error, parse_error);
    if (!root.isObject())
        return fail(error, "root is not an object");

    std::string kind;
    if (!jsonString(root, "kind", kind, error))
        return false;
    if (kind != kFlowKind)
        return fail(error,
                    "kind '" + kind + "' is not '" + kFlowKind + "'");

    FlowIncident incident;
    if (!jsonU64(root, "schemaVersion", incident.schemaVersion,
                 error))
        return false;
    if (incident.schemaVersion != kFlowSchemaVersion)
        return fail(error,
                    "unsupported schemaVersion " +
                        std::to_string(incident.schemaVersion));

    if (!jsonString(root, "program", incident.program, error) ||
        !jsonString(root, "rule", incident.rule, error) ||
        !jsonString(root, "severity", incident.severity, error) ||
        !jsonString(root, "message", incident.message, error) ||
        !jsonU64(root, "byteOffset", incident.byteOffset, error) ||
        !jsonU64(root, "eventIndex", incident.eventIndex, error) ||
        !jsonU64(root, "addr", incident.addr, error) ||
        !jsonU64(root, "base", incident.base, error) ||
        !jsonU64(root, "size", incident.size, error) ||
        !jsonU64(root, "lifetimeEvents", incident.lifetimeEvents,
                 error) ||
        !jsonU64(root, "objects", incident.objects, error) ||
        !jsonU64(root, "bytes", incident.bytes, error) ||
        !loadSite(root, "allocSite", incident.allocSite, error) ||
        !loadSite(root, "freeSite", incident.freeSite, error)) {
        return false;
    }

    out = std::move(incident);
    return true;
}

bool
loadFlowIncidentFile(const std::string &path, FlowIncident &out,
                     std::string *error)
{
    std::string text;
    if (!readFileText(path, text, error))
        return false;
    return loadFlowIncident(text, out, error);
}

} // namespace diag
} // namespace heapmd
