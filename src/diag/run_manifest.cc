#include "diag/run_manifest.hh"

#include <fstream>
#include <sstream>

#include "diag/json.hh"
#include "support/build_env.hh"
#include "support/hash.hh"
#include "telemetry/telemetry.hh"

namespace heapmd
{
namespace diag
{

double
RunManifest::sampleRate() const
{
    if (events == 0)
        return 0.0;
    return static_cast<double>(samples) /
           static_cast<double>(events);
}

RunManifest
makeRunManifest(const std::string &command,
                const std::string &command_line, const RunOutcome &run,
                const CheckResult *check)
{
    RunManifest manifest;
    manifest.command = command;
    manifest.commandLine = command_line;
    manifest.program = run.series.label;
    manifest.hardwareConcurrency = support::hardwareConcurrency();
    manifest.sanitizer = support::kSanitizeMode;
    manifest.events = run.finalTick;
    manifest.samples = run.series.size();
    manifest.allocs = run.graphStats.allocs;
    manifest.frees = run.graphStats.frees;
    manifest.liveBlocksAtExit = run.liveBlocksAtExit;
    manifest.wallNanos = run.wallNanos;
    manifest.cpuNanos = run.cpuNanos;

    if (check != nullptr) {
        manifest.reportsTotal = check->reports.size();
        manifest.heapAnomalies = check->countOf(BugClass::HeapAnomaly);
        manifest.poorlyDisguised =
            check->countOf(BugClass::PoorlyDisguised);
        manifest.pathological = check->countOf(BugClass::Pathological);
    }

    for (MetricId id : kAllMetrics)
        manifest.metrics.push_back(
            {metricName(id), run.series.summaryOf(id)});

    HEAPMD_COUNTER_INC("diag.manifests_built");
    return manifest;
}

void
addManifestInput(RunManifest &manifest, const std::string &role,
                 const std::string &path)
{
    ManifestInput input;
    input.role = role;
    input.path = path;
    if (auto fingerprint = fileFingerprint(path))
        input.fingerprint = *fingerprint;
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (in)
        input.bytes = static_cast<std::uint64_t>(in.tellg());
    manifest.inputs.push_back(std::move(input));
}

void
captureCounters(RunManifest &manifest,
                const telemetry::MetricsSnapshot &snapshot)
{
    manifest.counters.clear();
    manifest.gauges.clear();
    for (const auto &counter : snapshot.counters)
        manifest.counters.push_back({counter.name, counter.value});
    for (const auto &gauge : snapshot.gauges)
        manifest.gauges.push_back({gauge.name, gauge.value});
}

void
saveRunManifest(const RunManifest &manifest, std::ostream &os)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("kind", kManifestKind);
    // Always write the current schema: an older document that was
    // loaded and re-saved gains the newer blocks (env, phases) with
    // defaulted values, so it must claim the current version.
    w.field("schemaVersion", kManifestSchemaVersion);
    w.field("command", manifest.command);
    w.field("commandLine", manifest.commandLine);
    w.field("program", manifest.program);
    w.beginObject("config");
    w.field("metricFrequency", manifest.metricFrequency);
    w.fieldBool("includeLocallyStable",
                manifest.includeLocallyStable);
    w.field("seed", manifest.seed);
    w.field("version", manifest.version);
    w.field("scale", manifest.scale);
    w.field("fault", manifest.fault);
    w.field("faultRate", manifest.faultRate);
    w.field("rotateBytes", manifest.rotateBytes);
    w.endObject();
    w.beginObject("env");
    w.field("hardwareConcurrency", manifest.hardwareConcurrency);
    w.field("sanitizer", manifest.sanitizer);
    w.field("peakRssBytes", manifest.peakRssBytes);
    w.field("durationNanos", manifest.durationNanos);
    w.endObject();
    w.beginArray("inputs");
    for (const ManifestInput &input : manifest.inputs) {
        w.beginObject();
        w.field("role", input.role);
        w.field("path", input.path);
        w.field("fingerprint", input.fingerprint);
        w.field("bytes", input.bytes);
        w.endObject();
    }
    w.endArray();
    w.beginArray("phases");
    for (const ManifestPhase &phase : manifest.phases) {
        w.beginObject();
        w.field("name", phase.name);
        w.field("count", phase.count);
        w.field("wallNanos", phase.wallNanos);
        w.field("cpuNanos", phase.cpuNanos);
        w.field("bytes", phase.bytes);
        w.endObject();
    }
    w.endArray();
    w.beginObject("run");
    w.field("events", manifest.events);
    w.field("samples", manifest.samples);
    w.field("allocs", manifest.allocs);
    w.field("frees", manifest.frees);
    w.field("liveBlocksAtExit", manifest.liveBlocksAtExit);
    w.field("wallNanos", manifest.wallNanos);
    w.field("cpuNanos", manifest.cpuNanos);
    w.endObject();
    w.beginObject("reports");
    w.field("total", manifest.reportsTotal);
    w.field("heapAnomalies", manifest.heapAnomalies);
    w.field("poorlyDisguised", manifest.poorlyDisguised);
    w.field("pathological", manifest.pathological);
    w.beginArray("bundles");
    for (const std::string &path : manifest.bundlePaths)
        w.element(path);
    w.endArray();
    w.endObject();
    w.beginArray("metrics");
    for (const ManifestMetric &metric : manifest.metrics) {
        w.beginObject();
        w.field("metric", metric.metric);
        w.field("count",
                static_cast<std::uint64_t>(metric.summary.count));
        w.field("min", metric.summary.min);
        w.field("max", metric.summary.max);
        w.field("mean", metric.summary.mean);
        w.field("stddev", metric.summary.stddev);
        w.endObject();
    }
    w.endArray();
    w.beginArray("counters");
    for (const ManifestCounter &counter : manifest.counters) {
        w.beginObject();
        w.field("name", counter.name);
        w.field("value", counter.value);
        w.endObject();
    }
    w.endArray();
    w.beginArray("gauges");
    for (const ManifestGauge &gauge : manifest.gauges) {
        w.beginObject();
        w.field("name", gauge.name);
        w.field("value", gauge.value);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

std::string
manifestToJson(const RunManifest &manifest)
{
    std::ostringstream os;
    saveRunManifest(manifest, os);
    return os.str();
}

namespace
{

bool
fail(std::string *error, const std::string &what)
{
    if (error != nullptr)
        *error = "run manifest: " + what;
    return false;
}

} // namespace

bool
loadRunManifest(const std::string &json, RunManifest &out,
                std::string *error)
{
    telemetry::JsonValue root;
    std::string parse_error;
    if (!telemetry::parseJson(json, root, &parse_error))
        return fail(error, parse_error);
    if (!root.isObject())
        return fail(error, "root is not an object");

    std::string kind;
    if (!jsonString(root, "kind", kind, error))
        return false;
    if (kind != kManifestKind)
        return fail(error, "kind '" + kind + "' is not '" +
                               kManifestKind + "'");

    RunManifest manifest;
    if (!jsonU64(root, "schemaVersion", manifest.schemaVersion,
                 error)) {
        return false;
    }
    if (manifest.schemaVersion < 1 ||
        manifest.schemaVersion > kManifestSchemaVersion)
        return fail(error,
                    "unsupported schemaVersion " +
                        std::to_string(manifest.schemaVersion));

    if (!jsonString(root, "command", manifest.command, error) ||
        !jsonString(root, "commandLine", manifest.commandLine,
                    error) ||
        !jsonString(root, "program", manifest.program, error)) {
        return false;
    }

    const telemetry::JsonValue *config =
        jsonObject(root, "config", error);
    if (config == nullptr)
        return false;
    if (!jsonU64(*config, "metricFrequency",
                 manifest.metricFrequency, error) ||
        !jsonBool(*config, "includeLocallyStable",
                  manifest.includeLocallyStable, error) ||
        !jsonU64(*config, "seed", manifest.seed, error) ||
        !jsonU64(*config, "version", manifest.version, error) ||
        !jsonNumber(*config, "scale", manifest.scale, error) ||
        !jsonString(*config, "fault", manifest.fault, error) ||
        !jsonNumber(*config, "faultRate", manifest.faultRate,
                    error)) {
        return false;
    }
    // v4 adds capture rotation provenance; older documents default 0.
    if (manifest.schemaVersion >= 4 &&
        !jsonU64(*config, "rotateBytes", manifest.rotateBytes,
                 error)) {
        return false;
    }

    // env: required from v2 on; v1 documents predate it.
    if (manifest.schemaVersion >= 2) {
        const telemetry::JsonValue *env =
            jsonObject(root, "env", error);
        if (env == nullptr)
            return false;
        if (!jsonU64(*env, "hardwareConcurrency",
                     manifest.hardwareConcurrency, error) ||
            !jsonString(*env, "sanitizer", manifest.sanitizer,
                        error)) {
            return false;
        }
        // v3 adds the process resource footprint.
        if (manifest.schemaVersion >= 3 &&
            (!jsonU64(*env, "peakRssBytes", manifest.peakRssBytes,
                      error) ||
             !jsonU64(*env, "durationNanos",
                      manifest.durationNanos, error))) {
            return false;
        }
    }

    // phases: required from v3 on (may be empty).
    if (manifest.schemaVersion >= 3) {
        const telemetry::JsonValue *phases =
            jsonArray(root, "phases", error);
        if (phases == nullptr)
            return false;
        for (const telemetry::JsonValue &phase : phases->array) {
            if (!phase.isObject())
                return fail(error, "phases entry is not an object");
            ManifestPhase parsed;
            if (!jsonString(phase, "name", parsed.name, error) ||
                !jsonU64(phase, "count", parsed.count, error) ||
                !jsonU64(phase, "wallNanos", parsed.wallNanos,
                         error) ||
                !jsonU64(phase, "cpuNanos", parsed.cpuNanos,
                         error) ||
                !jsonU64(phase, "bytes", parsed.bytes, error)) {
                return false;
            }
            manifest.phases.push_back(std::move(parsed));
        }
    }

    const telemetry::JsonValue *inputs =
        jsonArray(root, "inputs", error);
    if (inputs == nullptr)
        return false;
    for (const telemetry::JsonValue &input : inputs->array) {
        if (!input.isObject())
            return fail(error, "inputs entry is not an object");
        ManifestInput parsed;
        if (!jsonString(input, "role", parsed.role, error) ||
            !jsonString(input, "path", parsed.path, error) ||
            !jsonString(input, "fingerprint", parsed.fingerprint,
                        error) ||
            !jsonU64(input, "bytes", parsed.bytes, error)) {
            return false;
        }
        manifest.inputs.push_back(std::move(parsed));
    }

    const telemetry::JsonValue *run = jsonObject(root, "run", error);
    if (run == nullptr)
        return false;
    if (!jsonU64(*run, "events", manifest.events, error) ||
        !jsonU64(*run, "samples", manifest.samples, error) ||
        !jsonU64(*run, "allocs", manifest.allocs, error) ||
        !jsonU64(*run, "frees", manifest.frees, error) ||
        !jsonU64(*run, "liveBlocksAtExit", manifest.liveBlocksAtExit,
                 error) ||
        !jsonU64(*run, "wallNanos", manifest.wallNanos, error) ||
        !jsonU64(*run, "cpuNanos", manifest.cpuNanos, error)) {
        return false;
    }

    const telemetry::JsonValue *reports =
        jsonObject(root, "reports", error);
    if (reports == nullptr)
        return false;
    if (!jsonU64(*reports, "total", manifest.reportsTotal, error) ||
        !jsonU64(*reports, "heapAnomalies", manifest.heapAnomalies,
                 error) ||
        !jsonU64(*reports, "poorlyDisguised",
                 manifest.poorlyDisguised, error) ||
        !jsonU64(*reports, "pathological", manifest.pathological,
                 error)) {
        return false;
    }
    const telemetry::JsonValue *bundles =
        jsonArray(*reports, "bundles", error);
    if (bundles == nullptr)
        return false;
    for (const telemetry::JsonValue &bundle : bundles->array) {
        if (!bundle.isString())
            return fail(error, "bundles entry is not a string");
        manifest.bundlePaths.push_back(bundle.string);
    }

    const telemetry::JsonValue *metrics =
        jsonArray(root, "metrics", error);
    if (metrics == nullptr)
        return false;
    for (const telemetry::JsonValue &metric : metrics->array) {
        if (!metric.isObject())
            return fail(error, "metrics entry is not an object");
        ManifestMetric parsed;
        std::uint64_t count = 0;
        if (!jsonString(metric, "metric", parsed.metric, error) ||
            !jsonU64(metric, "count", count, error) ||
            !jsonNumber(metric, "min", parsed.summary.min, error) ||
            !jsonNumber(metric, "max", parsed.summary.max, error) ||
            !jsonNumber(metric, "mean", parsed.summary.mean, error) ||
            !jsonNumber(metric, "stddev", parsed.summary.stddev,
                        error)) {
            return false;
        }
        parsed.summary.count = static_cast<std::size_t>(count);
        manifest.metrics.push_back(std::move(parsed));
    }

    const telemetry::JsonValue *counters =
        jsonArray(root, "counters", error);
    if (counters == nullptr)
        return false;
    for (const telemetry::JsonValue &counter : counters->array) {
        if (!counter.isObject())
            return fail(error, "counters entry is not an object");
        ManifestCounter parsed;
        if (!jsonString(counter, "name", parsed.name, error) ||
            !jsonU64(counter, "value", parsed.value, error)) {
            return false;
        }
        manifest.counters.push_back(std::move(parsed));
    }

    const telemetry::JsonValue *gauges =
        jsonArray(root, "gauges", error);
    if (gauges == nullptr)
        return false;
    for (const telemetry::JsonValue &gauge : gauges->array) {
        if (!gauge.isObject())
            return fail(error, "gauges entry is not an object");
        ManifestGauge parsed;
        if (!jsonString(gauge, "name", parsed.name, error) ||
            !jsonI64(gauge, "value", parsed.value, error)) {
            return false;
        }
        manifest.gauges.push_back(std::move(parsed));
    }

    out = std::move(manifest);
    return true;
}

bool
loadRunManifestFile(const std::string &path, RunManifest &out,
                    std::string *error)
{
    std::string text;
    if (!readFileText(path, text, error))
        return false;
    return loadRunManifest(text, out, error);
}

bool
peekManifestSchemaVersion(const std::string &json,
                          std::uint64_t &version, std::string *error)
{
    telemetry::JsonValue root;
    std::string parse_error;
    if (!telemetry::parseJson(json, root, &parse_error))
        return fail(error, parse_error);
    if (!root.isObject())
        return fail(error, "root is not an object");
    std::string kind;
    if (!jsonString(root, "kind", kind, error))
        return false;
    if (kind != kManifestKind)
        return fail(error, "kind '" + kind + "' is not '" +
                               kManifestKind + "'");
    return jsonU64(root, "schemaVersion", version, error);
}

bool
peekManifestSchemaVersionFile(const std::string &path,
                              std::uint64_t &version,
                              std::string *error)
{
    std::string text;
    if (!readFileText(path, text, error))
        return false;
    return peekManifestSchemaVersion(text, version, error);
}

} // namespace diag
} // namespace heapmd
