/**
 * @file
 * Cross-run trend tracking (`heapmd trend`).
 *
 * Compares run manifests -- a clean baseline against one or more
 * candidate runs -- and flags regressions: new anomaly reports,
 * telemetry counter deltas beyond tolerance, and metric sample-rate
 * drops.  Findings are reported through analysis::Report under the
 * `trend.*` rule family; error-severity findings are regressions
 * (CLI exit code 3, the findings status), warnings are comparability
 * hazards, notes are context.
 *
 * Environment checks (manifest schema v2 `env` section):
 *   trend.env-sanitizer    baseline/candidate sanitizer modes differ
 *   trend.env-concurrency  host core counts differ between the runs
 *   trend.env-single-core  candidate ran on one core (parallel
 *                          speedups are nominal there)
 *
 * Schema v3 adds resource/phase regression checks:
 *   trend.env-rss          candidate peak RSS grew beyond tolerance
 *   trend.phase-wall       one pipeline phase's wall time grew
 *                          beyond tolerance (per-stage slowdowns)
 */

#ifndef HEAPMD_DIAG_TREND_HH
#define HEAPMD_DIAG_TREND_HH

#include "analysis/report.hh"
#include "diag/run_manifest.hh"

namespace heapmd
{
namespace diag
{

/** Tolerances of the regression detectors. */
struct TrendOptions
{
    /**
     * Relative counter change that counts as a regression.  Counters
     * below counterMinBase in the baseline are ignored (small-count
     * noise), as are timing counters (`*_ns`): wall time is not
     * reproducible across hosts.
     */
    double counterTolerance = 0.10;
    std::uint64_t counterMinBase = 100;

    /** Relative samples-per-event drop that counts as a regression. */
    double sampleRateTolerance = 0.10;

    /**
     * Relative peak-RSS growth that counts as a regression.  Small
     * baselines (below rssMinBaseBytes) are skipped: allocator noise
     * dominates tiny processes.  Generous by default — RSS varies
     * run to run far more than event counts do.
     */
    double rssTolerance = 0.35;
    std::uint64_t rssMinBaseBytes = 32ull * 1024 * 1024;

    /**
     * Relative per-phase wall-time growth that counts as a
     * regression.  Phases whose baseline wall time is below
     * phaseMinBaseNanos are skipped (scheduler noise).  Wall time is
     * host-dependent, so the default tolerance is deliberately loose
     * and the finding points at the phase, not a precise ratio.
     */
    double phaseWallTolerance = 1.0;
    std::uint64_t phaseMinBaseNanos = 50ull * 1000 * 1000;
};

/**
 * Compare @p candidate against @p baseline, appending trend.*
 * findings to @p report.  Error findings mean a regression.
 */
void compareManifests(const RunManifest &baseline,
                      const RunManifest &candidate,
                      const TrendOptions &options,
                      analysis::Report &report);

/** True when @p name is a timing counter trend should ignore. */
bool isTimingCounter(const std::string &name);

} // namespace diag
} // namespace heapmd

#endif // HEAPMD_DIAG_TREND_HH
