#include "diag/render.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace heapmd
{
namespace diag
{

namespace
{

/** Darkest-to-brightest ASCII intensity ramp ('.' lowest so minimum
 *  values stay visible next to the caret line's spaces). */
constexpr const char *kRamp = ".,:-=+*#%@";
constexpr std::size_t kRampSize = 10;

std::string
formatValue(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.4f", value);
    return buf;
}

/** "inner <- mid <- outer" over already-resolved frame names. */
std::string
formatFrames(const std::vector<BundleFrame> &frames)
{
    if (frames.empty())
        return "<empty stack>";
    std::string out;
    for (std::size_t i = 0; i < frames.size(); ++i) {
        if (i)
            out += " <- ";
        out += frames[i].name;
    }
    return out;
}

void
renderPhase(std::ostringstream &os, const char *title,
            const std::vector<const BundleLogEntry *> &entries,
            std::size_t limit)
{
    if (entries.empty())
        return;
    os << "  stacks " << title << " (" << entries.size()
       << " snapshot" << (entries.size() == 1 ? "" : "s") << "):\n";
    const std::size_t shown = std::min(limit, entries.size());
    for (std::size_t i = 0; i < shown; ++i) {
        const BundleLogEntry &entry = *entries[i];
        os << "    point " << entry.pointIndex << " tick "
           << entry.tick << " value " << formatValue(entry.metricValue)
           << ": " << formatFrames(entry.frames) << "\n";
    }
    if (shown < entries.size())
        os << "    ... " << entries.size() - shown << " more ...\n";
}

} // namespace

std::string
asciiSparkline(const std::vector<double> &values)
{
    if (values.empty())
        return "";
    const auto [lo_it, hi_it] =
        std::minmax_element(values.begin(), values.end());
    const double lo = *lo_it;
    const double span = *hi_it - lo;
    std::string out;
    out.reserve(values.size());
    for (double v : values) {
        std::size_t level = kRampSize / 2;
        if (span > 0.0) {
            level = static_cast<std::size_t>((v - lo) / span *
                                             (kRampSize - 1) +
                                             0.5);
            level = std::min(level, kRampSize - 1);
        }
        out += kRamp[level];
    }
    return out;
}

std::string
renderIncident(const IncidentBundle &bundle,
               const RenderOptions &options)
{
    std::ostringstream os;
    os << "incident: " << bundle.bugClass << " on " << bundle.metric
       << " (" << bundle.direction << ")\n";
    os << "  program: " << bundle.program << "\n";
    os << "  observed " << formatValue(bundle.observedValue)
       << " outside calibrated [" << formatValue(bundle.calibratedMin)
       << ", " << formatValue(bundle.calibratedMax) << "] at point "
       << bundle.pointIndex << ", tick " << bundle.tick << "\n";

    // The root-cause hint leads: the paper's headline is that HeapMD
    // "is often able to pinpoint the function responsible" (4.3).
    if (bundle.suspects.empty()) {
        os << "  suspect functions: none (no stack context logged)\n";
    } else {
        os << "  suspect functions (innermost frame across "
           << bundle.contextLog.size() << " snapshots):\n";
        const std::size_t shown =
            std::min(options.maxSuspects, bundle.suspects.size());
        for (std::size_t i = 0; i < shown; ++i) {
            const BundleSuspect &suspect = bundle.suspects[i];
            os << "    " << i + 1 << ". " << suspect.name << "  "
               << suspect.snapshots << "/" << bundle.contextLog.size()
               << "\n";
        }
        if (shown < bundle.suspects.size())
            os << "    ... " << bundle.suspects.size() - shown
               << " more ...\n";
    }

    if (!bundle.window.empty()) {
        std::vector<double> values;
        values.reserve(bundle.window.size());
        std::size_t crossing = bundle.window.size(); // = off the end
        for (std::size_t i = 0; i < bundle.window.size(); ++i) {
            values.push_back(bundle.window[i].value);
            if (bundle.window[i].pointIndex == bundle.pointIndex)
                crossing = i;
        }
        const auto [lo, hi] =
            std::minmax_element(values.begin(), values.end());
        os << "  trajectory points " << bundle.window.front().pointIndex
           << ".." << bundle.window.back().pointIndex << " (min "
           << formatValue(*lo) << ", max " << formatValue(*hi)
           << ", ^ marks the crossing):\n";
        os << "    " << asciiSparkline(values) << "\n";
        if (crossing < bundle.window.size())
            os << "    " << std::string(crossing, ' ') << "^\n";
    }

    // Context stacks, split around the crossing point.
    std::vector<const BundleLogEntry *> before, during, after;
    for (const BundleLogEntry &entry : bundle.contextLog) {
        if (entry.pointIndex < bundle.pointIndex)
            before.push_back(&entry);
        else if (entry.pointIndex == bundle.pointIndex)
            during.push_back(&entry);
        else
            after.push_back(&entry);
    }
    renderPhase(os, "before the crossing", before,
                options.stacksPerPhase);
    renderPhase(os, "at the crossing", during, options.stacksPerPhase);
    renderPhase(os, "after the crossing", after,
                options.stacksPerPhase);
    return os.str();
}

namespace
{

std::string
formatHex(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

std::string
formatSite(const FlowSiteRecord &site)
{
    if (!site.known)
        return "(unknown site)";
    return "event " + std::to_string(site.eventIndex) + " (byte " +
           std::to_string(site.byteOffset) + ") in " +
           (site.name.empty() ? "(no function)" : site.name);
}

/** One actionable sentence per flow rule. */
const char *
triageHint(const std::string &rule)
{
    if (rule == "flow.double_free")
        return "two owners released the same object: drop the "
               "redundant free, or hand off ownership explicitly";
    if (rule == "flow.free_unallocated")
        return "the freed pointer never came from the allocator: "
               "check for pointer arithmetic or a stale copy";
    if (rule == "flow.size_mismatch")
        return "an interior pointer reached free(): keep the base "
               "pointer for deallocation";
    if (rule == "flow.negative_size")
        return "a negative length reached the allocator: validate "
               "the size computation before allocating";
    if (rule == "flow.write_freed")
        return "a pointer kept past free() was written through: "
               "null the reference at the free site or reorder "
               "teardown";
    if (rule == "flow.write_unmapped")
        return "the store target was never a heap object: check "
               "for an uninitialized or corrupted pointer";
    if (rule == "flow.overlap_alloc")
        return "the allocator handed out overlapping extents: the "
               "trace is internally inconsistent or the recorder "
               "missed a free";
    if (rule == "flow.dangling_edge")
        return "a stale pointer to a recycled object was loaded and "
               "written through: null the reference when its target "
               "is freed";
    if (rule == "flow.leak_at_exit")
        return "objects from this site were never freed: add "
               "teardown, or suppress if the leak is intentional";
    return "see DESIGN.md section 12 for the flow.* rule catalog";
}

} // namespace

std::string
renderFlowIncident(const FlowIncident &incident)
{
    std::ostringstream os;
    os << "flow incident: " << incident.rule << " ("
       << incident.severity << ")\n";
    os << "  program: " << incident.program << "\n";
    os << "  at event " << incident.eventIndex << " (byte "
       << incident.byteOffset << "), address "
       << formatHex(incident.addr) << "\n";
    if (incident.size != 0) {
        os << "  object [" << formatHex(incident.base) << ", "
           << formatHex(incident.base + incident.size) << "), "
           << incident.size << " byte(s)";
        if (incident.lifetimeEvents != 0)
            os << ", lifetime " << incident.lifetimeEvents
               << " event(s)";
        os << "\n";
    }
    if (incident.rule == "flow.leak_at_exit") {
        os << "  leaked: " << incident.objects
           << " object(s), " << incident.bytes << " byte(s)\n";
    } else if (incident.objects != 0) {
        os << "  stale edges: " << incident.objects << "\n";
    }
    if (incident.allocSite.known)
        os << "  allocated at " << formatSite(incident.allocSite)
           << "\n";
    if (incident.freeSite.known)
        os << "  freed at " << formatSite(incident.freeSite) << "\n";
    os << "  detail: " << incident.message << "\n";
    os << "  triage: " << triageHint(incident.rule) << "\n";
    return os.str();
}

} // namespace diag
} // namespace heapmd
