/**
 * @file
 * Incident bundles: durable, versioned anomaly-report artifacts.
 *
 * The paper's payoff is the context HeapMD hands a developer when a
 * stable metric crosses its calibrated extreme (Sections 2.2, 4.3).
 * An in-memory BugReport dies with the run; an incident bundle is the
 * same evidence serialized as canonical JSON -- classification,
 * crossing, calibrated range, the full call-stack context log with
 * frames resolved through the FunctionRegistry, and a window of the
 * violated metric's time series around the crossing -- so incidents
 * can be archived, diffed, rendered (`heapmd report`), audited
 * (`heapmd audit`, diag.* rules), and trended across runs
 * (`heapmd trend`).
 *
 * Schema stability contract: field names are stable once shipped;
 * additions bump kBundleSchemaVersion.  saveIncidentBundle() is
 * canonical, so save(load(save(x))) == save(x) byte for byte.
 */

#ifndef HEAPMD_DIAG_INCIDENT_BUNDLE_HH
#define HEAPMD_DIAG_INCIDENT_BUNDLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "detector/bug_report.hh"
#include "metrics/series.hh"
#include "runtime/call_stack.hh"

namespace heapmd
{
namespace diag
{

/** Bundle document type tag (the JSON "kind" member). */
inline constexpr const char *kBundleKind = "heapmd.incident";

/** Current bundle schema version. */
inline constexpr std::uint64_t kBundleSchemaVersion = 1;

/** Default +/- pointIndex radius of the serialized metric window. */
inline constexpr std::uint64_t kDefaultWindowRadius = 16;

/** One resolved stack frame (id plus registry name at capture time). */
struct BundleFrame
{
    FnId fnId = kNoFunction;
    std::string name; //!< "<fn#N>" when the id was unregistered
};

/** One serialized call-stack snapshot from the circular buffer. */
struct BundleLogEntry
{
    std::uint64_t tick = 0;
    std::uint64_t pointIndex = 0;
    double metricValue = 0.0;
    std::vector<BundleFrame> frames; //!< innermost first
};

/** One ranked suspect (innermost-frame frequency). */
struct BundleSuspect
{
    FnId fnId = kNoFunction;
    std::string name;
    std::uint64_t snapshots = 0; //!< snapshots it was innermost in
};

/** The whole serialized incident. */
struct IncidentBundle
{
    std::uint64_t schemaVersion = kBundleSchemaVersion;
    std::string program; //!< series label ("gzip seed 3 v1")

    std::string bugClass;  //!< bugClassName()
    std::string metric;    //!< metricName()
    std::string direction; //!< anomalyDirectionName()

    double observedValue = 0.0;
    double calibratedMin = 0.0;
    double calibratedMax = 0.0;
    std::uint64_t tick = 0;
    std::uint64_t pointIndex = 0;

    /** Ranked suspects; first entry is BugReport::suspectFunction(). */
    std::vector<BundleSuspect> suspects;

    std::vector<BundleLogEntry> contextLog; //!< oldest first

    /** The violated metric around the crossing. */
    std::uint64_t windowRadius = kDefaultWindowRadius;
    std::vector<SeriesPoint> window;
};

/**
 * Build a bundle from a finalized report.  Frames are resolved
 * through @p registry (unregistered ids render as "<fn#N>"); the
 * series window is cut from @p series around the crossing point.
 */
IncidentBundle
makeIncidentBundle(const BugReport &report,
                   const FunctionRegistry &registry,
                   const MetricSeries &series,
                   std::uint64_t window_radius = kDefaultWindowRadius);

/** Canonical JSON rendering (ends with a newline). */
void saveIncidentBundle(const IncidentBundle &bundle,
                        std::ostream &os);

/** saveIncidentBundle into a string. */
std::string bundleToJson(const IncidentBundle &bundle);

/**
 * Parse a bundle document.
 * @return false with a description in @p error on malformed input.
 */
bool loadIncidentBundle(const std::string &json, IncidentBundle &out,
                        std::string *error);

/** loadIncidentBundle over a file's contents. */
bool loadIncidentBundleFile(const std::string &path,
                            IncidentBundle &out, std::string *error);

} // namespace diag
} // namespace heapmd

#endif // HEAPMD_DIAG_INCIDENT_BUNDLE_HH
