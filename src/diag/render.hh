/**
 * @file
 * Human-readable incident rendering (`heapmd report`).
 *
 * Turns a serialized incident bundle back into what the paper's
 * Section 4.3 walkthroughs show a developer: the suspect function
 * first, the trajectory of the violated metric around the crossing
 * (ASCII sparkline), and the logged call stacks before, during, and
 * after the crossing.
 */

#ifndef HEAPMD_DIAG_RENDER_HH
#define HEAPMD_DIAG_RENDER_HH

#include <string>
#include <vector>

#include "diag/flow_incident.hh"
#include "diag/incident_bundle.hh"

namespace heapmd
{
namespace diag
{

/**
 * One character per value, scaled into the ASCII ramp ".,:-=+*#%@"
 * over [min(values), max(values)].  A flat series renders mid-ramp.
 */
std::string asciiSparkline(const std::vector<double> &values);

/** Tunables of renderIncident(). */
struct RenderOptions
{
    /** Context stacks shown per phase (before/during/after). */
    std::size_t stacksPerPhase = 3;

    /** Ranked suspects shown. */
    std::size_t maxSuspects = 5;
};

/** Render @p bundle as a developer-facing incident page. */
std::string renderIncident(const IncidentBundle &bundle,
                           const RenderOptions &options = {});

/**
 * Render a flow incident (audit --deep finding) the way
 * renderIncident() renders a detector anomaly: headline, provenance,
 * and a per-rule triage hint.
 */
std::string renderFlowIncident(const FlowIncident &incident);

} // namespace diag
} // namespace heapmd

#endif // HEAPMD_DIAG_RENDER_HH
