#include "diag/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace heapmd
{
namespace diag
{

std::string
formatJsonNumber(double value)
{
    // JSON has no NaN/Inf; diagnostics values are percentages and
    // counts, so non-finite means a bug upstream -- render 0 rather
    // than emit an unparsable document.
    if (!std::isfinite(value))
        return "0";
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof buf, value);
    return std::string(buf, res.ptr);
}

void
JsonWriter::beginValue()
{
    if (!has_entry_.empty()) {
        if (has_entry_.back())
            os_ << ",";
        has_entry_.back() = true;
        os_ << "\n";
        for (std::size_t i = 0; i < has_entry_.size(); ++i)
            os_ << "  ";
    }
}

void
JsonWriter::key(const std::string &name)
{
    beginValue();
    os_ << "\"" << telemetry::jsonEscape(name) << "\": ";
}

void
JsonWriter::beginObject()
{
    beginValue();
    os_ << "{";
    has_entry_.push_back(false);
}

void
JsonWriter::beginObject(const std::string &name)
{
    key(name);
    os_ << "{";
    has_entry_.push_back(false);
}

void
JsonWriter::endObject()
{
    const bool had_entry = has_entry_.back();
    has_entry_.pop_back();
    if (had_entry) {
        os_ << "\n";
        for (std::size_t i = 0; i < has_entry_.size(); ++i)
            os_ << "  ";
    }
    os_ << "}";
}

void
JsonWriter::beginArray(const std::string &name)
{
    key(name);
    os_ << "[";
    has_entry_.push_back(false);
}

void
JsonWriter::endArray()
{
    const bool had_entry = has_entry_.back();
    has_entry_.pop_back();
    if (had_entry) {
        os_ << "\n";
        for (std::size_t i = 0; i < has_entry_.size(); ++i)
            os_ << "  ";
    }
    os_ << "]";
}

void
JsonWriter::field(const std::string &name, const std::string &value)
{
    key(name);
    os_ << "\"" << telemetry::jsonEscape(value) << "\"";
}

void
JsonWriter::field(const std::string &name, const char *value)
{
    field(name, std::string(value));
}

void
JsonWriter::field(const std::string &name, double value)
{
    key(name);
    os_ << formatJsonNumber(value);
}

void
JsonWriter::field(const std::string &name, std::uint64_t value)
{
    key(name);
    os_ << value;
}

void
JsonWriter::field(const std::string &name, std::int64_t value)
{
    key(name);
    os_ << value;
}

void
JsonWriter::fieldBool(const std::string &name, bool value)
{
    key(name);
    os_ << (value ? "true" : "false");
}

void
JsonWriter::nullField(const std::string &name)
{
    key(name);
    os_ << "null";
}

void
JsonWriter::element(double value)
{
    beginValue();
    os_ << formatJsonNumber(value);
}

void
JsonWriter::element(const std::string &value)
{
    beginValue();
    os_ << "\"" << telemetry::jsonEscape(value) << "\"";
}

namespace
{

bool
missing(const char *key, const char *what, std::string *error)
{
    if (error != nullptr)
        *error = std::string("member '") + key + "' " + what;
    return false;
}

} // namespace

bool
jsonString(const telemetry::JsonValue &object, const char *key,
           std::string &out, std::string *error)
{
    const telemetry::JsonValue *member = object.find(key);
    if (member == nullptr)
        return missing(key, "is missing", error);
    if (!member->isString())
        return missing(key, "is not a string", error);
    out = member->string;
    return true;
}

bool
jsonNumber(const telemetry::JsonValue &object, const char *key,
           double &out, std::string *error)
{
    const telemetry::JsonValue *member = object.find(key);
    if (member == nullptr)
        return missing(key, "is missing", error);
    if (!member->isNumber())
        return missing(key, "is not a number", error);
    out = member->number;
    return true;
}

bool
jsonU64(const telemetry::JsonValue &object, const char *key,
        std::uint64_t &out, std::string *error)
{
    double value = 0.0;
    if (!jsonNumber(object, key, value, error))
        return false;
    if (value < 0.0)
        return missing(key, "is negative", error);
    out = static_cast<std::uint64_t>(value);
    return true;
}

bool
jsonI64(const telemetry::JsonValue &object, const char *key,
        std::int64_t &out, std::string *error)
{
    double value = 0.0;
    if (!jsonNumber(object, key, value, error))
        return false;
    out = static_cast<std::int64_t>(value);
    return true;
}

bool
jsonBool(const telemetry::JsonValue &object, const char *key,
         bool &out, std::string *error)
{
    const telemetry::JsonValue *member = object.find(key);
    if (member == nullptr)
        return missing(key, "is missing", error);
    if (member->kind != telemetry::JsonValue::Kind::Bool)
        return missing(key, "is not a boolean", error);
    out = member->boolean;
    return true;
}

const telemetry::JsonValue *
jsonArray(const telemetry::JsonValue &object, const char *key,
          std::string *error)
{
    const telemetry::JsonValue *member = object.find(key);
    if (member == nullptr) {
        missing(key, "is missing", error);
        return nullptr;
    }
    if (!member->isArray()) {
        missing(key, "is not an array", error);
        return nullptr;
    }
    return member;
}

const telemetry::JsonValue *
jsonObject(const telemetry::JsonValue &object, const char *key,
           std::string *error)
{
    const telemetry::JsonValue *member = object.find(key);
    if (member == nullptr) {
        missing(key, "is missing", error);
        return nullptr;
    }
    if (!member->isObject()) {
        missing(key, "is not an object", error);
        return nullptr;
    }
    return member;
}

bool
readFileText(const std::string &path, std::string &out,
             std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr)
            *error = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

} // namespace diag
} // namespace heapmd
