#include "diag/incident_bundle.hh"

#include <sstream>

#include "diag/json.hh"
#include "telemetry/telemetry.hh"

namespace heapmd
{
namespace diag
{

IncidentBundle
makeIncidentBundle(const BugReport &report,
                   const FunctionRegistry &registry,
                   const MetricSeries &series,
                   std::uint64_t window_radius)
{
    IncidentBundle bundle;
    bundle.program = series.label;
    bundle.bugClass = bugClassName(report.klass);
    bundle.metric = metricName(report.metric);
    bundle.direction = anomalyDirectionName(report.direction);
    bundle.observedValue = report.observedValue;
    bundle.calibratedMin = report.calibratedMin;
    bundle.calibratedMax = report.calibratedMax;
    bundle.tick = report.tick;
    bundle.pointIndex = report.pointIndex;

    for (const auto &[fn, count] : report.suspectRanking())
        bundle.suspects.push_back({fn, registry.name(fn), count});

    bundle.contextLog.reserve(report.contextLog.size());
    for (const StackLogEntry &entry : report.contextLog) {
        BundleLogEntry out;
        out.tick = entry.tick;
        out.pointIndex = entry.pointIndex;
        out.metricValue = entry.metricValue;
        out.frames.reserve(entry.frames.size());
        for (FnId fn : entry.frames)
            out.frames.push_back({fn, registry.name(fn)});
        bundle.contextLog.push_back(std::move(out));
    }

    bundle.windowRadius = window_radius;
    bundle.window =
        series.window(report.metric, report.pointIndex, window_radius);
    HEAPMD_COUNTER_INC("diag.bundles_built");
    return bundle;
}

void
saveIncidentBundle(const IncidentBundle &bundle, std::ostream &os)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("kind", kBundleKind);
    w.field("schemaVersion", bundle.schemaVersion);
    w.field("program", bundle.program);
    w.field("bugClass", bundle.bugClass);
    w.field("metric", bundle.metric);
    w.field("direction", bundle.direction);
    w.field("observedValue", bundle.observedValue);
    w.field("calibratedMin", bundle.calibratedMin);
    w.field("calibratedMax", bundle.calibratedMax);
    w.field("tick", bundle.tick);
    w.field("pointIndex", bundle.pointIndex);
    w.beginArray("suspects");
    for (const BundleSuspect &suspect : bundle.suspects) {
        w.beginObject();
        w.field("fnId", static_cast<std::uint64_t>(suspect.fnId));
        w.field("name", suspect.name);
        w.field("snapshots", suspect.snapshots);
        w.endObject();
    }
    w.endArray();
    w.beginArray("contextLog");
    for (const BundleLogEntry &entry : bundle.contextLog) {
        w.beginObject();
        w.field("tick", entry.tick);
        w.field("pointIndex", entry.pointIndex);
        w.field("metricValue", entry.metricValue);
        w.beginArray("frames");
        for (const BundleFrame &frame : entry.frames) {
            w.beginObject();
            w.field("fnId", static_cast<std::uint64_t>(frame.fnId));
            w.field("name", frame.name);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.beginObject("window");
    w.field("metric", bundle.metric);
    w.field("radius", bundle.windowRadius);
    w.beginArray("points");
    for (const SeriesPoint &point : bundle.window) {
        w.beginObject();
        w.field("pointIndex", point.pointIndex);
        w.field("tick", static_cast<std::uint64_t>(point.tick));
        w.field("value", point.value);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.endObject();
    os << "\n";
}

std::string
bundleToJson(const IncidentBundle &bundle)
{
    std::ostringstream os;
    saveIncidentBundle(bundle, os);
    return os.str();
}

namespace
{

bool
fail(std::string *error, const std::string &what)
{
    if (error != nullptr)
        *error = "incident bundle: " + what;
    return false;
}

bool
loadFrames(const telemetry::JsonValue &entry,
           std::vector<BundleFrame> &out, std::string *error)
{
    const telemetry::JsonValue *frames =
        jsonArray(entry, "frames", error);
    if (frames == nullptr)
        return false;
    for (const telemetry::JsonValue &frame : frames->array) {
        if (!frame.isObject())
            return fail(error, "frame is not an object");
        BundleFrame parsed;
        std::uint64_t id = 0;
        if (!jsonU64(frame, "fnId", id, error) ||
            !jsonString(frame, "name", parsed.name, error)) {
            return false;
        }
        parsed.fnId = static_cast<FnId>(id);
        out.push_back(std::move(parsed));
    }
    return true;
}

} // namespace

bool
loadIncidentBundle(const std::string &json, IncidentBundle &out,
                   std::string *error)
{
    telemetry::JsonValue root;
    std::string parse_error;
    if (!telemetry::parseJson(json, root, &parse_error))
        return fail(error, parse_error);
    if (!root.isObject())
        return fail(error, "root is not an object");

    std::string kind;
    if (!jsonString(root, "kind", kind, error))
        return false;
    if (kind != kBundleKind)
        return fail(error, "kind '" + kind + "' is not '" +
                               kBundleKind + "'");

    IncidentBundle bundle;
    if (!jsonU64(root, "schemaVersion", bundle.schemaVersion, error))
        return false;
    if (bundle.schemaVersion != kBundleSchemaVersion)
        return fail(error,
                    "unsupported schemaVersion " +
                        std::to_string(bundle.schemaVersion));

    if (!jsonString(root, "program", bundle.program, error) ||
        !jsonString(root, "bugClass", bundle.bugClass, error) ||
        !jsonString(root, "metric", bundle.metric, error) ||
        !jsonString(root, "direction", bundle.direction, error) ||
        !jsonNumber(root, "observedValue", bundle.observedValue,
                    error) ||
        !jsonNumber(root, "calibratedMin", bundle.calibratedMin,
                    error) ||
        !jsonNumber(root, "calibratedMax", bundle.calibratedMax,
                    error) ||
        !jsonU64(root, "tick", bundle.tick, error) ||
        !jsonU64(root, "pointIndex", bundle.pointIndex, error)) {
        return false;
    }

    const telemetry::JsonValue *suspects =
        jsonArray(root, "suspects", error);
    if (suspects == nullptr)
        return false;
    for (const telemetry::JsonValue &suspect : suspects->array) {
        if (!suspect.isObject())
            return fail(error, "suspects entry is not an object");
        BundleSuspect parsed;
        std::uint64_t id = 0;
        if (!jsonU64(suspect, "fnId", id, error) ||
            !jsonString(suspect, "name", parsed.name, error) ||
            !jsonU64(suspect, "snapshots", parsed.snapshots, error)) {
            return false;
        }
        parsed.fnId = static_cast<FnId>(id);
        bundle.suspects.push_back(std::move(parsed));
    }

    const telemetry::JsonValue *log =
        jsonArray(root, "contextLog", error);
    if (log == nullptr)
        return false;
    for (const telemetry::JsonValue &entry : log->array) {
        if (!entry.isObject())
            return fail(error, "contextLog entry is not an object");
        BundleLogEntry parsed;
        if (!jsonU64(entry, "tick", parsed.tick, error) ||
            !jsonU64(entry, "pointIndex", parsed.pointIndex, error) ||
            !jsonNumber(entry, "metricValue", parsed.metricValue,
                        error) ||
            !loadFrames(entry, parsed.frames, error)) {
            return false;
        }
        bundle.contextLog.push_back(std::move(parsed));
    }

    const telemetry::JsonValue *window =
        jsonObject(root, "window", error);
    if (window == nullptr)
        return false;
    std::string window_metric;
    if (!jsonString(*window, "metric", window_metric, error) ||
        !jsonU64(*window, "radius", bundle.windowRadius, error)) {
        return false;
    }
    if (window_metric != bundle.metric)
        return fail(error, "window metric '" + window_metric +
                               "' does not match '" + bundle.metric +
                               "'");
    const telemetry::JsonValue *points =
        jsonArray(*window, "points", error);
    if (points == nullptr)
        return false;
    for (const telemetry::JsonValue &point : points->array) {
        if (!point.isObject())
            return fail(error, "window point is not an object");
        SeriesPoint parsed;
        std::uint64_t tick = 0;
        if (!jsonU64(point, "pointIndex", parsed.pointIndex, error) ||
            !jsonU64(point, "tick", tick, error) ||
            !jsonNumber(point, "value", parsed.value, error)) {
            return false;
        }
        parsed.tick = tick;
        bundle.window.push_back(parsed);
    }

    out = std::move(bundle);
    return true;
}

bool
loadIncidentBundleFile(const std::string &path, IncidentBundle &out,
                       std::string *error)
{
    std::string text;
    if (!readFileText(path, text, error))
        return false;
    return loadIncidentBundle(text, out, error);
}

} // namespace diag
} // namespace heapmd
