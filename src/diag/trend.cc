#include "diag/trend.hh"

#include <cmath>
#include <cstdio>
#include <map>

namespace heapmd
{
namespace diag
{

namespace
{

std::string
percent(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%+.1f%%", fraction * 100.0);
    return buf;
}

void
compareReportCounts(const RunManifest &baseline,
                    const RunManifest &candidate,
                    analysis::Report &report)
{
    if (candidate.reportsTotal > baseline.reportsTotal) {
        std::string message =
            "candidate '" + candidate.program + "' produced " +
            std::to_string(candidate.reportsTotal) +
            " anomaly report(s) vs " +
            std::to_string(baseline.reportsTotal) +
            " in the baseline (heap-anomaly " +
            std::to_string(candidate.heapAnomalies) +
            ", poorly-disguised " +
            std::to_string(candidate.poorlyDisguised) +
            ", pathological " +
            std::to_string(candidate.pathological) + ")";
        for (const std::string &bundle : candidate.bundlePaths)
            message += "; bundle " + bundle;
        report.error("trend.new-anomalies", std::move(message));
    } else if (candidate.reportsTotal < baseline.reportsTotal) {
        report.note("trend.fewer-anomalies",
                    "candidate produced " +
                        std::to_string(candidate.reportsTotal) +
                        " anomaly report(s) vs " +
                        std::to_string(baseline.reportsTotal) +
                        " in the baseline");
    }
}

void
compareCounters(const RunManifest &baseline,
                const RunManifest &candidate,
                const TrendOptions &options, analysis::Report &report)
{
    std::map<std::string, std::uint64_t> candidate_counters;
    for (const ManifestCounter &counter : candidate.counters)
        candidate_counters[counter.name] = counter.value;

    for (const ManifestCounter &counter : baseline.counters) {
        if (isTimingCounter(counter.name))
            continue;
        const auto it = candidate_counters.find(counter.name);
        if (it == candidate_counters.end()) {
            report.warning("trend.counter-missing",
                           "counter '" + counter.name +
                               "' present in the baseline is missing "
                               "from the candidate");
            continue;
        }
        if (counter.value < options.counterMinBase)
            continue;
        const double base = static_cast<double>(counter.value);
        const double delta =
            (static_cast<double>(it->second) - base) / base;
        if (std::fabs(delta) > options.counterTolerance) {
            report.error(
                "trend.counter-delta",
                "counter '" + counter.name + "' moved " +
                    percent(delta) + " (" +
                    std::to_string(counter.value) + " -> " +
                    std::to_string(it->second) +
                    "), beyond the " +
                    percent(options.counterTolerance).substr(1) +
                    " tolerance");
        }
    }
}

void
compareSampleRates(const RunManifest &baseline,
                   const RunManifest &candidate,
                   const TrendOptions &options,
                   analysis::Report &report)
{
    const double base_rate = baseline.sampleRate();
    const double cand_rate = candidate.sampleRate();
    if (base_rate <= 0.0)
        return;
    if (cand_rate < base_rate * (1.0 - options.sampleRateTolerance)) {
        report.error(
            "trend.sample-rate-drop",
            "candidate sampled " + std::to_string(candidate.samples) +
                " points over " + std::to_string(candidate.events) +
                " events vs " + std::to_string(baseline.samples) +
                " over " + std::to_string(baseline.events) +
                " in the baseline (" +
                percent(cand_rate / base_rate - 1.0) + ")");
    }
}

void
compareInputs(const RunManifest &baseline,
              const RunManifest &candidate, analysis::Report &report)
{
    std::map<std::string, std::string> baseline_inputs;
    for (const ManifestInput &input : baseline.inputs)
        baseline_inputs[input.role] = input.fingerprint;
    for (const ManifestInput &input : candidate.inputs) {
        const auto it = baseline_inputs.find(input.role);
        if (it != baseline_inputs.end() &&
            it->second != input.fingerprint) {
            report.note("trend.input-changed",
                        "input '" + input.role +
                            "' changed content between the runs (" +
                            it->second + " -> " + input.fingerprint +
                            ")");
        }
    }
}

/**
 * Environment comparability (manifest schema v2).  A TSan or ASan
 * binary runs a different allocator and 5-15x slower, and throughput
 * scales with the host's cores, so cross-environment deltas are
 * hazards, not regressions.  Manifests loaded from v1 documents have
 * neither field; those stay silent.
 */
void
compareEnvironments(const RunManifest &baseline,
                    const RunManifest &candidate,
                    analysis::Report &report)
{
    if (!baseline.sanitizer.empty() && !candidate.sanitizer.empty() &&
        baseline.sanitizer != candidate.sanitizer) {
        report.warning("trend.env-sanitizer",
                       "baseline was built with sanitizer '" +
                           baseline.sanitizer + "', candidate with '" +
                           candidate.sanitizer +
                           "'; timing and allocator behaviour are "
                           "not comparable");
    }
    if (baseline.hardwareConcurrency > 0 &&
        candidate.hardwareConcurrency > 0 &&
        baseline.hardwareConcurrency !=
            candidate.hardwareConcurrency) {
        report.warning(
            "trend.env-concurrency",
            "baseline ran on " +
                std::to_string(baseline.hardwareConcurrency) +
                " core(s), candidate on " +
                std::to_string(candidate.hardwareConcurrency) +
                "; throughput deltas reflect the host, not the code");
    }
    if (candidate.hardwareConcurrency == 1) {
        report.note("trend.env-single-core",
                    "candidate ran on a single core: parallel "
                    "speedups are nominal there, expect ~1x or "
                    "slightly below");
    }
}

std::string
humanBytes(std::uint64_t bytes)
{
    char buf[32];
    if (bytes >= 1024ull * 1024 * 1024)
        std::snprintf(buf, sizeof buf, "%.1f GiB",
                      static_cast<double>(bytes) / (1024.0 * 1024 * 1024));
    else if (bytes >= 1024ull * 1024)
        std::snprintf(buf, sizeof buf, "%.1f MiB",
                      static_cast<double>(bytes) / (1024.0 * 1024));
    else
        std::snprintf(buf, sizeof buf, "%llu B",
                      static_cast<unsigned long long>(bytes));
    return buf;
}

/**
 * Peak-RSS regression (manifest schema v3).  Only growth is flagged:
 * a shrink is an improvement.  Manifests loaded from older documents
 * carry 0 and stay silent, as do tiny baselines where allocator and
 * page-cache noise dominate.
 */
void
compareResources(const RunManifest &baseline,
                 const RunManifest &candidate,
                 const TrendOptions &options, analysis::Report &report)
{
    if (baseline.peakRssBytes < options.rssMinBaseBytes ||
        candidate.peakRssBytes == 0)
        return;
    const double base = static_cast<double>(baseline.peakRssBytes);
    const double delta =
        (static_cast<double>(candidate.peakRssBytes) - base) / base;
    if (delta > options.rssTolerance) {
        report.error("trend.env-rss",
                     "candidate peak RSS grew " + percent(delta) +
                         " (" + humanBytes(baseline.peakRssBytes) +
                         " -> " + humanBytes(candidate.peakRssBytes) +
                         "), beyond the " +
                         percent(options.rssTolerance).substr(1) +
                         " tolerance");
    }
}

/**
 * Per-phase wall-time regression (manifest schema v3).  Matching is
 * by phase name; a phase present only in the candidate is noted, not
 * flagged, since new instrumentation is not a slowdown.  Wall time is
 * host-dependent, so phases below the minimum baseline duration are
 * skipped entirely.
 */
void
comparePhases(const RunManifest &baseline, const RunManifest &candidate,
              const TrendOptions &options, analysis::Report &report)
{
    std::map<std::string, const ManifestPhase *> baseline_phases;
    for (const ManifestPhase &phase : baseline.phases)
        baseline_phases[phase.name] = &phase;

    for (const ManifestPhase &phase : candidate.phases) {
        const auto it = baseline_phases.find(phase.name);
        if (it == baseline_phases.end()) {
            report.note("trend.phase-new",
                        "phase '" + phase.name +
                            "' appears only in the candidate");
            continue;
        }
        const ManifestPhase &base_phase = *it->second;
        if (base_phase.wallNanos < options.phaseMinBaseNanos)
            continue;
        const double base = static_cast<double>(base_phase.wallNanos);
        const double delta =
            (static_cast<double>(phase.wallNanos) - base) / base;
        if (delta > options.phaseWallTolerance) {
            report.error(
                "trend.phase-wall",
                "phase '" + phase.name + "' wall time grew " +
                    percent(delta) + " (" +
                    std::to_string(base_phase.wallNanos / 1000000) +
                    " ms -> " +
                    std::to_string(phase.wallNanos / 1000000) +
                    " ms over " + std::to_string(phase.count) +
                    " run(s)), beyond the " +
                    percent(options.phaseWallTolerance).substr(1) +
                    " tolerance");
        }
    }
}

} // namespace

bool
isTimingCounter(const std::string &name)
{
    const std::string suffix = "_ns";
    return name.size() >= suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

void
compareManifests(const RunManifest &baseline,
                 const RunManifest &candidate,
                 const TrendOptions &options, analysis::Report &report)
{
    if (baseline.program != candidate.program) {
        report.warning("trend.program-mismatch",
                       "comparing '" + candidate.program +
                           "' against baseline '" + baseline.program +
                           "'; deltas may not be meaningful");
    }
    compareEnvironments(baseline, candidate, report);
    compareResources(baseline, candidate, options, report);
    compareReportCounts(baseline, candidate, report);
    compareCounters(baseline, candidate, options, report);
    compareSampleRates(baseline, candidate, options, report);
    compareInputs(baseline, candidate, report);
    comparePhases(baseline, candidate, options, report);
}

} // namespace diag
} // namespace heapmd
