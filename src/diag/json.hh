/**
 * @file
 * Canonical JSON emission for diagnostics artifacts.
 *
 * Incident bundles and run manifests must round-trip byte-for-byte
 * (save(load(save(x))) == save(x)) so artifacts can be diffed and
 * content-hashed across runs.  That requires one canonical rendering:
 * fixed field order (the save functions), two-space indentation, and
 * shortest-round-trip number formatting (std::to_chars), which strtod
 * parses back to the identical double.
 */

#ifndef HEAPMD_DIAG_JSON_HH
#define HEAPMD_DIAG_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "telemetry/trace_json.hh"

namespace heapmd
{
namespace diag
{

/** Shortest text that strtod parses back to exactly @p value. */
std::string formatJsonNumber(double value);

/**
 * Streaming canonical-JSON writer.  The caller supplies the field
 * order; the writer owns commas, indentation, escaping, and number
 * formatting.  Layout: every member/element on its own line, two
 * spaces per depth, no trailing newline after the root's closing
 * brace (savers append one).
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    /** Root or nested anonymous object (array element). */
    void beginObject();
    void endObject();

    /** `"key": {` */
    void beginObject(const std::string &key);

    /** `"key": [` */
    void beginArray(const std::string &key);
    void endArray();

    /** `"key": "value"` */
    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);

    /** `"key": <number>` */
    void field(const std::string &key, double value);
    void field(const std::string &key, std::uint64_t value);
    void field(const std::string &key, std::int64_t value);

    /** `"key": true|false` */
    void fieldBool(const std::string &key, bool value);

    /** `"key": null` */
    void nullField(const std::string &key);

    /** Bare array element. */
    void element(double value);
    void element(const std::string &value);

  private:
    void beginValue();           //!< comma + newline + indent
    void key(const std::string &name);

    std::ostream &os_;
    std::vector<bool> has_entry_; //!< per open scope
};

/**
 * Typed member accessors over a parsed telemetry::JsonValue.  Each
 * returns false and appends "<where>: ..." to @p error when the member
 * is missing or has the wrong type.
 */
bool jsonString(const telemetry::JsonValue &object, const char *key,
                std::string &out, std::string *error);
bool jsonNumber(const telemetry::JsonValue &object, const char *key,
                double &out, std::string *error);
bool jsonU64(const telemetry::JsonValue &object, const char *key,
             std::uint64_t &out, std::string *error);
bool jsonI64(const telemetry::JsonValue &object, const char *key,
             std::int64_t &out, std::string *error);
bool jsonBool(const telemetry::JsonValue &object, const char *key,
              bool &out, std::string *error);
const telemetry::JsonValue *
jsonArray(const telemetry::JsonValue &object, const char *key,
          std::string *error);
const telemetry::JsonValue *
jsonObject(const telemetry::JsonValue &object, const char *key,
           std::string *error);

/** Read a whole file; false (with message) when unreadable. */
bool readFileText(const std::string &path, std::string &out,
                  std::string *error);

} // namespace diag
} // namespace heapmd

#endif // HEAPMD_DIAG_JSON_HH
