/**
 * @file
 * Flow incidents: durable artifacts for shadow-heap flow findings.
 *
 * `heapmd audit --deep` decides heap-correctness properties straight
 * from the trace (flow.* rules, src/analysis/flow_lint.hh).  A
 * Report finding dies with the process; a flow incident is the same
 * evidence as canonical JSON -- rule, severity, faulting address,
 * the object's extent, its allocation/free site pair resolved
 * through the trace's function table, and the object lifetime -- so
 * a flow finding can be archived, rendered (`heapmd report`), and
 * audited (`heapmd audit --bundle`, diag.* rules) exactly like a
 * detector incident bundle.
 *
 * Schema stability contract matches incident_bundle.hh: field names
 * are stable once shipped; additions bump kFlowSchemaVersion.
 * saveFlowIncident() is canonical, so save(load(save(x))) == save(x)
 * byte for byte.
 */

#ifndef HEAPMD_DIAG_FLOW_INCIDENT_HH
#define HEAPMD_DIAG_FLOW_INCIDENT_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "analysis/flow_lint.hh"
#include "support/types.hh"

namespace heapmd
{
namespace diag
{

/** Flow document type tag (the JSON "kind" member). */
inline constexpr const char *kFlowKind = "heapmd.flow";

/** Current flow-incident schema version. */
inline constexpr std::uint64_t kFlowSchemaVersion = 1;

/** One serialized allocation/free site. */
struct FlowSiteRecord
{
    bool known = false;
    FnId fnId = kNoFunction;
    std::string name; //!< resolved via the trace's function table
    std::uint64_t eventIndex = 0;
    std::uint64_t byteOffset = 0;
};

/** One serialized flow finding. */
struct FlowIncident
{
    std::uint64_t schemaVersion = kFlowSchemaVersion;
    std::string program; //!< the audited trace path
    std::string rule;    //!< stable id, e.g. "flow.double_free"
    std::string severity; //!< "note" | "warning" | "error"
    std::string message;
    std::uint64_t byteOffset = 0;
    std::uint64_t eventIndex = 0;
    std::uint64_t addr = 0;
    std::uint64_t base = 0;
    std::uint64_t size = 0;
    std::uint64_t lifetimeEvents = 0;
    std::uint64_t objects = 0; //!< leak/dangling: object/edge count
    std::uint64_t bytes = 0;   //!< leak: total bytes at the site
    FlowSiteRecord allocSite;
    FlowSiteRecord freeSite;
};

/**
 * Build a flow incident from one structured finding, resolving site
 * function names through the analysis' footer table.
 */
FlowIncident makeFlowIncident(const analysis::FlowAnalysis &analysis,
                              const analysis::FlowFinding &finding,
                              const std::string &program);

/** Canonical JSON rendering (ends with a newline). */
void saveFlowIncident(const FlowIncident &incident, std::ostream &os);

/** saveFlowIncident into a string. */
std::string flowIncidentToJson(const FlowIncident &incident);

/**
 * Parse a flow-incident document.
 * @return false with a description in @p error on malformed input.
 */
bool loadFlowIncident(const std::string &json, FlowIncident &out,
                      std::string *error);

/** loadFlowIncident over a file's contents. */
bool loadFlowIncidentFile(const std::string &path, FlowIncident &out,
                          std::string *error);

} // namespace diag
} // namespace heapmd

#endif // HEAPMD_DIAG_FLOW_INCIDENT_HH
