/**
 * @file
 * Unit tests of the trace codec and record/replay equivalence.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/trace_format.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_writer.hh"

namespace heapmd
{

namespace
{

TEST(VarintTest, RoundTripBoundaries)
{
    const std::uint64_t values[] = {
        0,    1,    127,  128,  129,  16383, 16384,
        (1ull << 32) - 1, 1ull << 32, ~0ull,
    };
    for (std::uint64_t v : values) {
        std::stringstream ss;
        trace::putVarint(ss, v);
        std::uint64_t out = 0;
        ASSERT_TRUE(trace::getVarint(ss, out));
        EXPECT_EQ(out, v);
    }
}

TEST(VarintTest, TruncatedFails)
{
    std::stringstream ss;
    ss.put(static_cast<char>(0x80)); // continuation without payload
    std::uint64_t out = 0;
    EXPECT_FALSE(trace::getVarint(ss, out));
}

TEST(VarintTest, EmptyFails)
{
    std::stringstream ss;
    std::uint64_t out = 0;
    EXPECT_FALSE(trace::getVarint(ss, out));
}

TEST(U32Test, RoundTrip)
{
    std::stringstream ss;
    trace::putU32(ss, 0xdeadbeef);
    std::uint32_t out = 0;
    ASSERT_TRUE(trace::getU32(ss, out));
    EXPECT_EQ(out, 0xdeadbeefu);
}

TEST(EventTest, FactoriesAndEquality)
{
    EXPECT_EQ(Event::alloc(1, 2), Event::alloc(1, 2));
    EXPECT_FALSE(Event::alloc(1, 2) == Event::alloc(1, 3));
    EXPECT_FALSE(Event::alloc(1, 2) == Event::free(1));
    EXPECT_STREQ(eventKindName(EventKind::Realloc), "realloc");
    EXPECT_STREQ(eventKindName(EventKind::FnEnter), "fn-enter");
}

TEST(TraceRoundTripTest, AllEventKinds)
{
    const std::vector<Event> events = {
        Event::alloc(0x1000, 64),
        Event::write(0x1000, 0x2000),
        Event::read(0x1008),
        Event::realloc(0x1000, 0x3000, 128),
        Event::fnEnter(7),
        Event::fnExit(7),
        Event::free(0x3000),
    };

    FunctionRegistry registry;
    registry.intern("alpha");
    registry.intern("beta");

    std::stringstream ss;
    TraceWriter writer(ss, registry);
    Tick tick = 0;
    for (const Event &e : events)
        writer.onEvent(e, ++tick);
    writer.finish();
    EXPECT_EQ(writer.eventCount(), events.size());

    TraceReader reader(ss);
    Event decoded;
    std::size_t i = 0;
    while (reader.next(decoded)) {
        ASSERT_LT(i, events.size());
        EXPECT_EQ(decoded, events[i]) << "event " << i;
        ++i;
    }
    EXPECT_EQ(i, events.size());
    EXPECT_FALSE(reader.malformed());
    ASSERT_EQ(reader.functionNames().size(), 2u);
    EXPECT_EQ(reader.functionNames()[0], "alpha");
    EXPECT_EQ(reader.functionNames()[1], "beta");
}

TEST(TraceRoundTripTest, FinishIsIdempotent)
{
    FunctionRegistry registry;
    std::stringstream ss;
    TraceWriter writer(ss, registry);
    writer.finish();
    writer.finish();
    TraceReader reader(ss);
    Event e;
    EXPECT_FALSE(reader.next(e));
    EXPECT_FALSE(reader.malformed());
}

TEST(TraceReaderDeathTest, BadMagicFatal)
{
    std::stringstream ss;
    ss << "NOTATRACE";
    EXPECT_DEATH(TraceReader reader(ss), "bad magic");
}

TEST(TraceReaderTest, TruncatedStreamFlagsMalformed)
{
    FunctionRegistry registry;
    std::stringstream ss;
    TraceWriter writer(ss, registry);
    writer.onEvent(Event::alloc(0x1000, 64), 1);
    // No finish(): stream ends without a footer.
    TraceReader reader(ss);
    Event e;
    EXPECT_TRUE(reader.next(e));
    EXPECT_FALSE(reader.next(e));
    EXPECT_TRUE(reader.malformed());
}

TEST(TraceWriterDurabilityTest, FlushLeavesReadableTruncatedTrace)
{
    FunctionRegistry registry;
    std::stringstream ss;
    int syncs = 0;
    TraceWriter writer(
        ss, registry,
        TraceWriterOptions{false, [&syncs] { ++syncs; }});
    writer.onEvent(Event::alloc(0x1000, 64), 1);
    writer.onEvent(Event::write(0x1000, 0x2000), 2);
    writer.flush();
    EXPECT_EQ(syncs, 1);

    // The flushed prefix is a readable trace: both events decode,
    // then the reader reports truncation instead of corruption.
    std::stringstream prefix(ss.str());
    TraceReader reader(prefix);
    Event e;
    EXPECT_TRUE(reader.next(e));
    EXPECT_EQ(e, Event::alloc(0x1000, 64));
    EXPECT_TRUE(reader.next(e));
    EXPECT_EQ(e, Event::write(0x1000, 0x2000));
    EXPECT_FALSE(reader.next(e));
    EXPECT_TRUE(reader.malformed());
}

TEST(TraceWriterDurabilityTest, FinalizeIsFinishPlusFlush)
{
    FunctionRegistry registry;
    registry.intern("fn");
    std::stringstream ss;
    int syncs = 0;
    TraceWriter writer(
        ss, registry,
        TraceWriterOptions{false, [&syncs] { ++syncs; }});
    writer.onEvent(Event::fnEnter(0), 1);
    writer.finalize();
    EXPECT_TRUE(writer.finished());
    EXPECT_GE(syncs, 1);
    writer.finalize(); // idempotent
    EXPECT_TRUE(writer.finished());

    std::stringstream whole(ss.str());
    TraceReader reader(whole);
    Event e;
    EXPECT_TRUE(reader.next(e));
    EXPECT_FALSE(reader.next(e));
    EXPECT_FALSE(reader.malformed());
    ASSERT_EQ(reader.functionNames().size(), 1u);
    EXPECT_EQ(reader.functionNames()[0], "fn");
}

TEST(TraceWriterDurabilityTest, CaptureProvenanceHeaderRoundTrip)
{
    FunctionRegistry registry;

    std::stringstream live;
    TraceWriterOptions options;
    options.captureProvenance = true;
    TraceWriter live_writer(live, registry, options);
    live_writer.finish();
    TraceReader live_reader(live);
    EXPECT_TRUE(live_reader.captureProvenance());

    std::stringstream synth;
    TraceWriter synth_writer(synth, registry);
    synth_writer.finish();
    TraceReader synth_reader(synth);
    EXPECT_FALSE(synth_reader.captureProvenance());
}

TEST(TraceReplayTest, ReplayReproducesProcessState)
{
    // Drive a small workload through a recorded process.
    ProcessConfig cfg;
    cfg.metricFrequency = 3;
    Process recorded(cfg);
    std::stringstream ss;
    TraceWriter writer(ss, recorded.registry());
    recorded.addEventObserver(&writer);

    const FnId fn = recorded.registry().intern("work");
    for (int i = 0; i < 10; ++i) {
        recorded.onFnEnter(fn);
        const Addr a = 0x10000 + 0x100 * i;
        recorded.onAlloc(a, 64);
        if (i > 0)
            recorded.onWrite(a, a - 0x100);
        if (i == 5)
            recorded.onFree(0x10000);
        recorded.onFnExit(fn);
    }
    writer.finish();

    Process replayed(cfg);
    TraceReader reader(ss);
    const std::uint64_t n = replayTrace(reader, replayed);
    EXPECT_EQ(n, recorded.now());

    // Graph and series must match exactly.
    EXPECT_EQ(replayed.graph().vertexCount(),
              recorded.graph().vertexCount());
    EXPECT_EQ(replayed.graph().edgeCount(),
              recorded.graph().edgeCount());
    EXPECT_EQ(replayed.graph().stats().liveBytes,
              recorded.graph().stats().liveBytes);
    ASSERT_EQ(replayed.series().size(), recorded.series().size());
    for (std::size_t i = 0; i < replayed.series().size(); ++i) {
        for (MetricId id : kAllMetrics) {
            EXPECT_DOUBLE_EQ(replayed.series().at(i).value(id),
                             recorded.series().at(i).value(id));
        }
    }
    EXPECT_EQ(replayed.registry().name(fn), "work");
}

TEST(TraceReplayTest, CompactEncoding)
{
    // Varint encoding keeps small traces small: every event here fits
    // well under the naive 33-byte fixed-width encoding.
    FunctionRegistry registry;
    std::stringstream ss;
    TraceWriter writer(ss, registry);
    for (int i = 0; i < 100; ++i)
        writer.onEvent(Event::fnEnter(3), i);
    writer.finish();
    EXPECT_LT(ss.str().size(), 100 * 3 + 32u);
}

} // namespace

} // namespace heapmd
