/**
 * @file
 * Unit tests of the trace codec and record/replay equivalence.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "trace/trace_format.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_source.hh"
#include "trace/trace_writer.hh"

namespace heapmd
{

namespace
{

TEST(VarintTest, RoundTripBoundaries)
{
    const std::uint64_t values[] = {
        0,    1,    127,  128,  129,  16383, 16384,
        (1ull << 32) - 1, 1ull << 32, ~0ull,
    };
    for (std::uint64_t v : values) {
        std::stringstream ss;
        trace::putVarint(ss, v);
        std::uint64_t out = 0;
        ASSERT_TRUE(trace::getVarint(ss, out));
        EXPECT_EQ(out, v);
    }
}

TEST(VarintTest, TruncatedFails)
{
    std::stringstream ss;
    ss.put(static_cast<char>(0x80)); // continuation without payload
    std::uint64_t out = 0;
    EXPECT_FALSE(trace::getVarint(ss, out));
}

TEST(VarintTest, EmptyFails)
{
    std::stringstream ss;
    std::uint64_t out = 0;
    EXPECT_FALSE(trace::getVarint(ss, out));
}

TEST(U32Test, RoundTrip)
{
    std::stringstream ss;
    trace::putU32(ss, 0xdeadbeef);
    std::uint32_t out = 0;
    ASSERT_TRUE(trace::getU32(ss, out));
    EXPECT_EQ(out, 0xdeadbeefu);
}

TEST(EventTest, FactoriesAndEquality)
{
    EXPECT_EQ(Event::alloc(1, 2), Event::alloc(1, 2));
    EXPECT_FALSE(Event::alloc(1, 2) == Event::alloc(1, 3));
    EXPECT_FALSE(Event::alloc(1, 2) == Event::free(1));
    EXPECT_STREQ(eventKindName(EventKind::Realloc), "realloc");
    EXPECT_STREQ(eventKindName(EventKind::FnEnter), "fn-enter");
}

TEST(TraceRoundTripTest, AllEventKinds)
{
    const std::vector<Event> events = {
        Event::alloc(0x1000, 64),
        Event::write(0x1000, 0x2000),
        Event::read(0x1008),
        Event::realloc(0x1000, 0x3000, 128),
        Event::fnEnter(7),
        Event::fnExit(7),
        Event::free(0x3000),
    };

    FunctionRegistry registry;
    registry.intern("alpha");
    registry.intern("beta");

    std::stringstream ss;
    TraceWriter writer(ss, registry);
    Tick tick = 0;
    for (const Event &e : events)
        writer.onEvent(e, ++tick);
    writer.finish();
    EXPECT_EQ(writer.eventCount(), events.size());

    TraceReader reader(ss);
    Event decoded;
    std::size_t i = 0;
    while (reader.next(decoded)) {
        ASSERT_LT(i, events.size());
        EXPECT_EQ(decoded, events[i]) << "event " << i;
        ++i;
    }
    EXPECT_EQ(i, events.size());
    EXPECT_FALSE(reader.malformed());
    ASSERT_EQ(reader.functionNames().size(), 2u);
    EXPECT_EQ(reader.functionNames()[0], "alpha");
    EXPECT_EQ(reader.functionNames()[1], "beta");
}

TEST(TraceRoundTripTest, FinishIsIdempotent)
{
    FunctionRegistry registry;
    std::stringstream ss;
    TraceWriter writer(ss, registry);
    writer.finish();
    writer.finish();
    TraceReader reader(ss);
    Event e;
    EXPECT_FALSE(reader.next(e));
    EXPECT_FALSE(reader.malformed());
}

TEST(TraceReaderDeathTest, BadMagicFatal)
{
    std::stringstream ss;
    ss << "NOTATRACE";
    EXPECT_DEATH(TraceReader reader(ss), "bad magic");
}

TEST(TraceReaderTest, TruncatedStreamFlagsMalformed)
{
    FunctionRegistry registry;
    std::stringstream ss;
    TraceWriter writer(ss, registry);
    writer.onEvent(Event::alloc(0x1000, 64), 1);
    // No finish(): stream ends without a footer.
    TraceReader reader(ss);
    Event e;
    EXPECT_TRUE(reader.next(e));
    EXPECT_FALSE(reader.next(e));
    EXPECT_TRUE(reader.malformed());
}

TEST(TraceWriterDurabilityTest, FlushLeavesReadableTruncatedTrace)
{
    FunctionRegistry registry;
    std::stringstream ss;
    int syncs = 0;
    TraceWriter writer(
        ss, registry,
        TraceWriterOptions{false, [&syncs] { ++syncs; }});
    writer.onEvent(Event::alloc(0x1000, 64), 1);
    writer.onEvent(Event::write(0x1000, 0x2000), 2);
    writer.flush();
    EXPECT_EQ(syncs, 1);

    // The flushed prefix is a readable trace: both events decode,
    // then the reader reports truncation instead of corruption.
    std::stringstream prefix(ss.str());
    TraceReader reader(prefix);
    Event e;
    EXPECT_TRUE(reader.next(e));
    EXPECT_EQ(e, Event::alloc(0x1000, 64));
    EXPECT_TRUE(reader.next(e));
    EXPECT_EQ(e, Event::write(0x1000, 0x2000));
    EXPECT_FALSE(reader.next(e));
    EXPECT_TRUE(reader.malformed());
}

TEST(TraceWriterDurabilityTest, FinalizeIsFinishPlusFlush)
{
    FunctionRegistry registry;
    registry.intern("fn");
    std::stringstream ss;
    int syncs = 0;
    TraceWriter writer(
        ss, registry,
        TraceWriterOptions{false, [&syncs] { ++syncs; }});
    writer.onEvent(Event::fnEnter(0), 1);
    writer.finalize();
    EXPECT_TRUE(writer.finished());
    EXPECT_GE(syncs, 1);
    writer.finalize(); // idempotent
    EXPECT_TRUE(writer.finished());

    std::stringstream whole(ss.str());
    TraceReader reader(whole);
    Event e;
    EXPECT_TRUE(reader.next(e));
    EXPECT_FALSE(reader.next(e));
    EXPECT_FALSE(reader.malformed());
    ASSERT_EQ(reader.functionNames().size(), 1u);
    EXPECT_EQ(reader.functionNames()[0], "fn");
}

TEST(TraceWriterDurabilityTest, CaptureProvenanceHeaderRoundTrip)
{
    FunctionRegistry registry;

    std::stringstream live;
    TraceWriterOptions options;
    options.captureProvenance = true;
    TraceWriter live_writer(live, registry, options);
    live_writer.finish();
    TraceReader live_reader(live);
    EXPECT_TRUE(live_reader.captureProvenance());

    std::stringstream synth;
    TraceWriter synth_writer(synth, registry);
    synth_writer.finish();
    TraceReader synth_reader(synth);
    EXPECT_FALSE(synth_reader.captureProvenance());
}

TEST(TraceReplayTest, ReplayReproducesProcessState)
{
    // Drive a small workload through a recorded process.
    ProcessConfig cfg;
    cfg.metricFrequency = 3;
    Process recorded(cfg);
    std::stringstream ss;
    TraceWriter writer(ss, recorded.registry());
    recorded.addEventObserver(&writer);

    const FnId fn = recorded.registry().intern("work");
    for (int i = 0; i < 10; ++i) {
        recorded.onFnEnter(fn);
        const Addr a = 0x10000 + 0x100 * i;
        recorded.onAlloc(a, 64);
        if (i > 0)
            recorded.onWrite(a, a - 0x100);
        if (i == 5)
            recorded.onFree(0x10000);
        recorded.onFnExit(fn);
    }
    writer.finish();

    Process replayed(cfg);
    TraceReader reader(ss);
    const std::uint64_t n = replayTrace(reader, replayed);
    EXPECT_EQ(n, recorded.now());

    // Graph and series must match exactly.
    EXPECT_EQ(replayed.graph().vertexCount(),
              recorded.graph().vertexCount());
    EXPECT_EQ(replayed.graph().edgeCount(),
              recorded.graph().edgeCount());
    EXPECT_EQ(replayed.graph().stats().liveBytes,
              recorded.graph().stats().liveBytes);
    ASSERT_EQ(replayed.series().size(), recorded.series().size());
    for (std::size_t i = 0; i < replayed.series().size(); ++i) {
        for (MetricId id : kAllMetrics) {
            EXPECT_DOUBLE_EQ(replayed.series().at(i).value(id),
                             recorded.series().at(i).value(id));
        }
    }
    EXPECT_EQ(replayed.registry().name(fn), "work");
}

/** Everything one decode pass yields, for cross-path comparison. */
struct DecodeResult
{
    std::vector<Event> events;
    std::vector<std::string> names;
    std::uint64_t count = 0;
    bool malformed = false;
    std::string error;
};

DecodeResult
drain(TraceReader &reader)
{
    DecodeResult result;
    Event event;
    while (reader.next(event))
        result.events.push_back(event);
    result.names = reader.functionNames();
    result.count = reader.eventCount();
    result.malformed = reader.malformed();
    result.error = reader.error();
    return result;
}

DecodeResult
decodeChunked(const std::string &bytes, std::size_t chunk_size)
{
    std::stringstream ss(bytes);
    TraceReader reader(ss, chunk_size);
    return drain(reader);
}

DecodeResult
decodeMemory(const std::string &bytes)
{
    trace::MemorySource source(
        reinterpret_cast<const unsigned char *>(bytes.data()),
        bytes.size());
    TraceReader reader(source);
    return drain(reader);
}

/** A well-formed trace exercising every event kind repeatedly. */
std::string
mixedTrace(int rounds)
{
    FunctionRegistry registry;
    registry.intern("alpha");
    registry.intern("a-much-longer-function-name-for-the-footer");
    std::stringstream ss;
    TraceWriter writer(ss, registry);
    Tick tick = 0;
    for (int i = 0; i < rounds; ++i) {
        const Addr a = 0x1000 + 0x100 * i;
        writer.onEvent(Event::fnEnter(1), ++tick);
        writer.onEvent(Event::alloc(a, 64 + i), ++tick);
        writer.onEvent(Event::write(a, a + 8), ++tick);
        writer.onEvent(Event::read(a + 8), ++tick);
        writer.onEvent(Event::realloc(a, a + 0x40, 128), ++tick);
        writer.onEvent(Event::free(a + 0x40), ++tick);
        writer.onEvent(Event::fnExit(1), ++tick);
    }
    writer.finish();
    return ss.str();
}

TEST(BufferedDecodeTest, ChunkSizeInvariantDecode)
{
    const std::string bytes = mixedTrace(40);
    const DecodeResult baseline = decodeMemory(bytes);
    EXPECT_FALSE(baseline.malformed);
    EXPECT_EQ(baseline.count, 40u * 7u);
    ASSERT_EQ(baseline.names.size(), 2u);

    // Tiny chunk sizes force every decode path (tags, each varint
    // byte, the footer count/lengths/names) across refill boundaries.
    for (std::size_t chunk : {1u, 2u, 3u, 5u, 7u, 13u, 64u, 4096u}) {
        const DecodeResult got = decodeChunked(bytes, chunk);
        EXPECT_EQ(got.events, baseline.events) << "chunk " << chunk;
        EXPECT_EQ(got.names, baseline.names) << "chunk " << chunk;
        EXPECT_EQ(got.count, baseline.count) << "chunk " << chunk;
        EXPECT_FALSE(got.malformed) << "chunk " << chunk;
    }
}

TEST(BufferedDecodeTest, DefaultChunkRefillStraddle)
{
    // Enough events that the default 64 KiB buffer refills several
    // times, so varints and the footer straddle real boundaries.
    const std::string bytes = mixedTrace(6000);
    ASSERT_GT(bytes.size(), 3 * trace::kDefaultChunkSize);
    const DecodeResult got =
        decodeChunked(bytes, trace::kDefaultChunkSize);
    EXPECT_FALSE(got.malformed);
    EXPECT_EQ(got.count, 6000u * 7u);
    EXPECT_EQ(got.events, decodeMemory(bytes).events);
}

TEST(BufferedDecodeTest, ErrorStringsAreChunkSizeInvariant)
{
    std::stringstream header;
    trace::putHeader(header);
    const std::string h = header.str(); // 8-byte version-1 header

    struct Case
    {
        const char *label;
        std::string bytes;
        std::string error;
    };
    const std::vector<Case> cases = {
        {"no footer", h + '\x00' + '\x10' + '\x40',
         "stream ends at byte 11 without the footer marker "
         "[trace.no-footer]"},
        {"truncated varint",
         h + '\x00' + static_cast<char>(0x80),
         "stream ends inside a LEB128 varint "
         "[trace.varint-truncated] in alloc event at byte 8"},
        {"overlong varint",
         h + '\x00' +
             std::string(10, static_cast<char>(0x80)) + '\x01',
         "LEB128 varint longer than 10 bytes "
         "[trace.varint-overlong] in alloc event at byte 8"},
        {"unknown tag", h + '\x63',
         "unknown event tag 99 at byte 8 [trace.unknown-tag]"},
        {"footer count truncated",
         h + static_cast<char>(trace::kFooterMarker),
         "stream ends inside a LEB128 varint "
         "[trace.varint-truncated] in the function-table count "
         "[trace.footer-truncated]"},
        {"name length truncated",
         h + static_cast<char>(trace::kFooterMarker) + '\x02' +
             '\x01' + 'x',
         "stream ends inside a LEB128 varint "
         "[trace.varint-truncated] in the name length of function 1 "
         "of 2 [trace.footer-truncated]"},
    };
    for (const Case &c : cases) {
        const DecodeResult baseline = decodeMemory(c.bytes);
        EXPECT_TRUE(baseline.malformed) << c.label;
        EXPECT_EQ(baseline.error, c.error) << c.label;
        for (std::size_t chunk : {1u, 2u, 3u, 9u, 4096u}) {
            const DecodeResult got = decodeChunked(c.bytes, chunk);
            EXPECT_TRUE(got.malformed)
                << c.label << " chunk " << chunk;
            EXPECT_EQ(got.error, c.error)
                << c.label << " chunk " << chunk;
        }
    }
}

TEST(BufferedDecodeTest, FooterNameLengthOverflowIsBounded)
{
    // A corrupt footer declaring a multi-exabyte name length must
    // fail with the truncation rule -- after copying only the bytes
    // that exist, never pre-allocating the claimed length.
    std::stringstream ss;
    trace::putHeader(ss);
    ss.put(static_cast<char>(trace::kFooterMarker));
    trace::putVarint(ss, 1);     // one function
    trace::putVarint(ss, ~0ull); // claimed name length
    ss << "ab";                  // only two bytes follow
    const std::string bytes = ss.str();

    for (std::size_t chunk : {1u, 4u, 4096u}) {
        const DecodeResult got = decodeChunked(bytes, chunk);
        EXPECT_TRUE(got.malformed) << "chunk " << chunk;
        EXPECT_EQ(got.error,
                  "stream ends inside the name of function 0 of 1 "
                  "[trace.footer-truncated]")
            << "chunk " << chunk;
        EXPECT_TRUE(got.names.empty());
    }
    EXPECT_EQ(decodeMemory(bytes).error,
              "stream ends inside the name of function 0 of 1 "
              "[trace.footer-truncated]");
}

TEST(BufferedDecodeTest, FileSourceMatchesStreamDecode)
{
    const std::string bytes = mixedTrace(25);
    const auto path = std::filesystem::temp_directory_path() /
                      "heapmd_trace_test_file.trace";
    {
        std::ofstream out(path, std::ios::binary);
        out << bytes;
    }
    trace::FileSource source(path.string());
    ASSERT_TRUE(source.ok()) << source.error();
    TraceReader reader(source);
    const DecodeResult got = drain(reader);
    EXPECT_EQ(got.events, decodeMemory(bytes).events);
    EXPECT_EQ(got.names, decodeMemory(bytes).names);
    EXPECT_FALSE(got.malformed);
    std::filesystem::remove(path);

    trace::FileSource missing(
        (std::filesystem::temp_directory_path() /
         "heapmd_no_such_trace.trace")
            .string());
    EXPECT_FALSE(missing.ok());
    EXPECT_FALSE(missing.error().empty());
}

TEST(TraceReplayTest, CompactEncoding)
{
    // Varint encoding keeps small traces small: every event here fits
    // well under the naive 33-byte fixed-width encoding.
    FunctionRegistry registry;
    std::stringstream ss;
    TraceWriter writer(ss, registry);
    for (int i = 0; i < 100; ++i)
        writer.onEvent(Event::fnEnter(3), i);
    writer.finish();
    EXPECT_LT(ss.str().size(), 100 * 3 + 32u);
}

} // namespace

} // namespace heapmd
