/**
 * @file
 * Unit tests of the telemetry layer: instrument registry, trace
 * sessions (including the JSON they emit on disk), and the trace-JSON
 * validator that CI runs over --trace-out artifacts.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "telemetry/phase.hh"
#include "telemetry/registry.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/trace_json.hh"
#include "telemetry/trace_session.hh"

namespace heapmd
{
namespace telemetry
{

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

class TelemetryTest : public testing::Test
{
  protected:
    void SetUp() override { Registry::instance().resetAll(); }
};

TEST_F(TelemetryTest, CounterGetOrCreateReturnsSameInstrument)
{
    Counter &a = Registry::instance().counter("test.counter_a");
    Counter &b = Registry::instance().counter("test.counter_a");
    EXPECT_EQ(&a, &b);
    a.add(3);
    b.increment();
    EXPECT_EQ(a.value(), 4u);
    a.reset();
    EXPECT_EQ(b.value(), 0u);
}

TEST_F(TelemetryTest, GaugeMovesBothWays)
{
    Gauge &g = Registry::instance().gauge("test.gauge");
    g.add(10);
    g.sub(3);
    EXPECT_EQ(g.value(), 7);
    g.add(-9);
    EXPECT_EQ(g.value(), -2);
    g.set(42);
    EXPECT_EQ(g.value(), 42);
}

TEST_F(TelemetryTest, HistogramBucketsAndOverflow)
{
    Histogram &h = Registry::instance().histogram(
        "test.hist", std::vector<std::uint64_t>{10, 100});
    h.observe(5);    // bucket 0 (<= 10)
    h.observe(10);   // bucket 0 (inclusive bound)
    h.observe(50);   // bucket 1 (<= 100)
    h.observe(1000); // overflow
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 1065u);
    const std::vector<std::uint64_t> buckets = h.bucketCounts();
    ASSERT_EQ(buckets.size(), 3u);
    EXPECT_EQ(buckets[0], 2u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[2], 1u);
}

TEST_F(TelemetryTest, SnapshotIsSortedAndResetAllZeroes)
{
    Registry::instance().counter("test.zzz").add(1);
    Registry::instance().counter("test.aaa").add(2);
    Registry::instance().gauge("test.gauge").set(-5);
    Registry::instance().histogram("test.hist").observe(7);

    const MetricsSnapshot snap = Registry::instance().snapshotAll();
    EXPECT_FALSE(snap.empty());
    for (std::size_t i = 1; i < snap.counters.size(); ++i)
        EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);

    bool found = false;
    for (const auto &c : snap.counters) {
        if (c.name == "test.aaa") {
            EXPECT_EQ(c.value, 2u);
            found = true;
        }
    }
    EXPECT_TRUE(found);

    Registry::instance().resetAll();
    const MetricsSnapshot zeroed = Registry::instance().snapshotAll();
    for (const auto &c : zeroed.counters)
        EXPECT_EQ(c.value, 0u) << c.name;
    for (const auto &g : zeroed.gauges)
        EXPECT_EQ(g.value, 0) << g.name;
    for (const auto &h : zeroed.histograms)
        EXPECT_EQ(h.count, 0u) << h.name;
}

TEST_F(TelemetryTest, StatsTableHasARowPerInstrument)
{
    Registry::instance().counter("test.rows").add(9);
    Registry::instance().gauge("test.level").set(3);
    const MetricsSnapshot snap = Registry::instance().snapshotAll();
    const TextTable table = statsTable(snap);
    EXPECT_EQ(table.rowCount(), snap.counters.size() +
                                    snap.gauges.size() +
                                    snap.histograms.size());
    EXPECT_GE(table.rowCount(), 2u);
}

TEST_F(TelemetryTest, TraceSessionWritesValidChromeTraceJson)
{
    const std::string path =
        testing::TempDir() + "telemetry_test_trace.json";
    ASSERT_TRUE(TraceSession::start(path));
    EXPECT_TRUE(TraceSession::active());
    // A second start while active must be refused.
    EXPECT_FALSE(TraceSession::start(path + ".second"));

    {
        ScopedSpan span("test.span");
        TraceSession::instant("test.instant", "heapmd");
        TraceSession::counter("test.counter", 42.0);
    }
    const std::uint64_t written = TraceSession::stop();
    EXPECT_FALSE(TraceSession::active());
    // span + instant + counter (metadata events are not buffered).
    EXPECT_EQ(written, 3u);

    const std::string text = slurp(path);
    ASSERT_FALSE(text.empty());

    TraceJsonStats stats;
    std::string error;
    EXPECT_TRUE(validateTraceEventJson(text, &stats, &error)) << error;
    EXPECT_EQ(stats.events, 5u);
    EXPECT_EQ(stats.spans, 1u);
    EXPECT_EQ(stats.instants, 1u);
    EXPECT_EQ(stats.counters, 1u);
    EXPECT_EQ(stats.metadata, 2u);

    // Poke the parsed document directly: the span must carry its
    // category and a non-negative duration.
    JsonValue root;
    ASSERT_TRUE(parseJson(text, root, &error)) << error;
    const JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool saw_span = false;
    for (const JsonValue &event : events->array) {
        const JsonValue *name = event.find("name");
        if (name != nullptr && name->string == "test.span") {
            saw_span = true;
            const JsonValue *cat = event.find("cat");
            ASSERT_NE(cat, nullptr);
            EXPECT_EQ(cat->string, "heapmd");
            const JsonValue *dur = event.find("dur");
            ASSERT_NE(dur, nullptr);
            EXPECT_GE(dur->number, 0.0);
        }
    }
    EXPECT_TRUE(saw_span);
    std::remove(path.c_str());
}

TEST_F(TelemetryTest, EventsOutsideASessionAreDropped)
{
    ASSERT_FALSE(TraceSession::active());
    TraceSession::instant("test.orphan", "heapmd");
    TraceSession::counter("test.orphan", 1.0);
    { ScopedSpan span("test.orphan_span"); }
    EXPECT_EQ(TraceSession::eventCount(), 0u);
}

TEST_F(TelemetryTest, StartFailsOnUnwritablePath)
{
    EXPECT_FALSE(
        TraceSession::start("/nonexistent-dir/trace.json"));
    EXPECT_FALSE(TraceSession::active());
}

TEST_F(TelemetryTest, ValidatorRejectsMalformedDocuments)
{
    TraceJsonStats stats;
    std::string error;

    EXPECT_FALSE(validateTraceEventJson("not json", &stats, &error));
    EXPECT_FALSE(error.empty());

    EXPECT_FALSE(validateTraceEventJson("[]", &stats, &error));
    EXPECT_FALSE(validateTraceEventJson("{}", &stats, &error));

    // Unknown phase letter.
    EXPECT_FALSE(validateTraceEventJson(
        R"({"traceEvents":[{"name":"x","ph":"Z","ts":0,)"
        R"("pid":1,"tid":1}]})",
        &stats, &error));

    // Complete event without a duration.
    EXPECT_FALSE(validateTraceEventJson(
        R"({"traceEvents":[{"name":"x","ph":"X","ts":0,)"
        R"("pid":1,"tid":1}]})",
        &stats, &error));

    // Counter event without a numeric arg.
    EXPECT_FALSE(validateTraceEventJson(
        R"({"traceEvents":[{"name":"x","ph":"C","ts":0,)"
        R"("pid":1,"tid":1,"args":{"value":"nope"}}]})",
        &stats, &error));

    // Trailing garbage after the document.
    EXPECT_FALSE(
        validateTraceEventJson(R"({"traceEvents":[]} junk)", &stats,
                               &error));

    // A minimal valid document still passes.
    EXPECT_TRUE(validateTraceEventJson(
        R"({"traceEvents":[{"name":"x","ph":"i","ts":1,)"
        R"("pid":1,"tid":1,"s":"t"}]})",
        &stats, &error))
        << error;
    EXPECT_EQ(stats.events, 1u);
    EXPECT_EQ(stats.instants, 1u);
}

#if HEAPMD_TELEMETRY_ENABLED
TEST_F(TelemetryTest, MacrosAccumulateIntoTheRegistry)
{
    for (int i = 0; i < 5; ++i)
        HEAPMD_COUNTER_INC("test.macro_counter");
    HEAPMD_COUNTER_ADD("test.macro_counter", 5);
    HEAPMD_GAUGE_ADD("test.macro_gauge", 3);
    HEAPMD_GAUGE_ADD("test.macro_gauge", -1);
    HEAPMD_HISTOGRAM_OBSERVE("test.macro_hist", 12);
    {
        HEAPMD_TIMED_NS("test.macro_timed_ns", "test.macro_timed");
    }

    Registry &registry = Registry::instance();
    EXPECT_EQ(registry.counter("test.macro_counter").value(), 10u);
    EXPECT_EQ(registry.gauge("test.macro_gauge").value(), 2);
    EXPECT_EQ(registry.histogram("test.macro_hist").count(), 1u);
    EXPECT_EQ(registry.histogram("test.macro_timed").count(), 1u);
    // The timed block must have recorded a consistent total.
    EXPECT_EQ(registry.counter("test.macro_timed_ns").value(),
              registry.histogram("test.macro_timed").sum());
}
#endif // HEAPMD_TELEMETRY_ENABLED

// ---------------------------------------------------------------
// Pipeline phase spans (manifest schema v3 `phases[]` feed).
// ---------------------------------------------------------------

class PhaseTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        PhaseRegistry::instance().reset();
    }
};

TEST_F(PhaseTest, SpanAggregatesWallCpuAndBytes)
{
    {
        PhaseSpan span("phase.test_stage");
        span.addBytes(100);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    {
        PhaseSpan span("phase.test_stage");
        span.addBytes(150);
    }

    const std::vector<PhaseStats> stats =
        PhaseRegistry::instance().snapshot();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].name, "phase.test_stage");
    EXPECT_EQ(stats[0].count, 2u);
    EXPECT_EQ(stats[0].bytes, 250u);
    // The first span slept 2ms: summed wall time must show it.
    EXPECT_GE(stats[0].wallNanos, 2000000u);
    // CPU time never exceeds wall time for a single-threaded span.
    EXPECT_LE(stats[0].cpuNanos, stats[0].wallNanos);
}

TEST_F(PhaseTest, SnapshotSortsByNameAndResetForgets)
{
    PhaseRegistry &registry = PhaseRegistry::instance();
    registry.recordExternal("phase.zeta", 1, 10, 5, 0);
    registry.recordExternal("phase.alpha", 1, 20, 10, 64);
    registry.recordExternal("phase.zeta", 4, 30, 15, 0);

    const std::vector<PhaseStats> stats = registry.snapshot();
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].name, "phase.alpha");
    EXPECT_EQ(stats[1].name, "phase.zeta");
    // recordExternal folds counts, not single spans.
    EXPECT_EQ(stats[1].count, 5u);
    EXPECT_EQ(stats[1].wallNanos, 40u);
    EXPECT_EQ(stats[1].cpuNanos, 20u);
    EXPECT_EQ(stats[0].bytes, 64u);

    registry.reset();
    EXPECT_TRUE(registry.snapshot().empty());
}

TEST_F(PhaseTest, SpansNestAndEachLevelAggregates)
{
    EXPECT_EQ(PhaseSpan::depth(), 0);
    {
        PhaseSpan outer("phase.outer");
        EXPECT_EQ(PhaseSpan::depth(), 1);
        {
            PhaseSpan inner("phase.inner");
            EXPECT_EQ(PhaseSpan::depth(), 2);
        }
        EXPECT_EQ(PhaseSpan::depth(), 1);
    }
    EXPECT_EQ(PhaseSpan::depth(), 0);

    const std::vector<PhaseStats> stats =
        PhaseRegistry::instance().snapshot();
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].name, "phase.inner");
    EXPECT_EQ(stats[0].count, 1u);
    EXPECT_EQ(stats[1].name, "phase.outer");
    EXPECT_EQ(stats[1].count, 1u);
}

TEST_F(PhaseTest, PhaseSpansEmitIntoActiveTraceSession)
{
    const std::string path =
        testing::TempDir() + "telemetry_test_phase_trace.json";
    ASSERT_TRUE(TraceSession::start(path));
    {
        PhaseSpan span("phase.traced");
    }
    const std::uint64_t written = TraceSession::stop();
    EXPECT_EQ(written, 1u);

    const std::string text = slurp(path);
    std::string error;
    JsonValue root;
    ASSERT_TRUE(parseJson(text, root, &error)) << error;
    const JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool saw_phase = false;
    for (const JsonValue &event : events->array) {
        const JsonValue *name = event.find("name");
        if (name == nullptr || name->string != "phase.traced")
            continue;
        saw_phase = true;
        const JsonValue *cat = event.find("cat");
        ASSERT_NE(cat, nullptr);
        EXPECT_EQ(cat->string, "phase");
    }
    EXPECT_TRUE(saw_phase);
    std::remove(path.c_str());
}

} // namespace

} // namespace telemetry
} // namespace heapmd
