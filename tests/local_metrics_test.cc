/**
 * @file
 * Tests of the locally-stable-metric extension (Section 2.1's
 * classification admitted into the model; paper future work).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "detector/anomaly_detector.hh"
#include "detector/execution_checker.hh"
#include "core/heapmd.hh"
#include "model/summarizer.hh"
#include "support/random.hh"

namespace heapmd
{

namespace
{

/**
 * A run where Leaves is flat (globally stable) and InEqOut is flat
 * with occasional phase spikes (locally stable).
 */
MetricSeries
phasedSeries(double leaves, double in_eq_out, std::uint64_t seed)
{
    MetricSeries series;
    Rng rng(seed);
    double spiky = in_eq_out;
    for (std::size_t i = 0; i < 80; ++i) {
        MetricSample s;
        s.pointIndex = i;
        s.vertexCount = 1000;
        if (i % 16 == 0 && i > 0)
            spiky = in_eq_out * (rng.chance(0.5) ? 1.35 : 0.72);
        s.values[metricIndex(MetricId::Leaves)] = leaves;
        s.values[metricIndex(MetricId::InEqOut)] = spiky;
        series.push(s);
    }
    return series;
}

SummarizerConfig
localConfig()
{
    SummarizerConfig cfg;
    cfg.includeLocallyStable = true;
    return cfg;
}

TEST(LocalMetricsTest, DisabledByDefault)
{
    MetricSummarizer summarizer;
    for (std::uint64_t s = 1; s <= 4; ++s)
        summarizer.addRun(phasedSeries(30.0, 20.0, s));
    const HeapModel model = summarizer.buildModel("app");
    EXPECT_TRUE(model.isStable(MetricId::Leaves));
    EXPECT_FALSE(model.isStable(MetricId::InEqOut));
    EXPECT_EQ(model.locallyStableMetricCount(), 0u);
}

TEST(LocalMetricsTest, LocalEntryAdmittedWhenEnabled)
{
    MetricSummarizer summarizer(localConfig());
    for (std::uint64_t s = 1; s <= 4; ++s)
        summarizer.addRun(phasedSeries(30.0, 20.0, s));
    const HeapModel model = summarizer.buildModel("app");

    ASSERT_TRUE(model.isStable(MetricId::InEqOut));
    const auto entry = model.entry(MetricId::InEqOut);
    EXPECT_TRUE(entry->locallyStable);
    EXPECT_EQ(model.locallyStableMetricCount(), 1u);
    EXPECT_GE(model.globallyStableMetricCount(), 1u);
    // The global entry stays global.
    EXPECT_FALSE(model.entry(MetricId::Leaves)->locallyStable);
    // The local range covers the phase plateaus.
    EXPECT_LE(entry->minValue, 20.0 * 0.72 + 0.01);
    EXPECT_GE(entry->maxValue, 20.0 * 1.35 - 0.01);
}

TEST(LocalMetricsTest, SerializationRoundTripsKind)
{
    MetricSummarizer summarizer(localConfig());
    for (std::uint64_t s = 1; s <= 4; ++s)
        summarizer.addRun(phasedSeries(30.0, 20.0, s));
    const HeapModel model = summarizer.buildModel("app");

    std::stringstream ss;
    model.save(ss);
    const HeapModel loaded = HeapModel::load(ss);
    ASSERT_TRUE(loaded.isStable(MetricId::InEqOut));
    EXPECT_TRUE(loaded.entry(MetricId::InEqOut)->locallyStable);
    EXPECT_FALSE(loaded.entry(MetricId::Leaves)->locallyStable);
}

TEST(LocalMetricsTest, LegacyModelTextStillLoads)
{
    std::stringstream ss(
        "heapmd-model v1\n"
        "program legacy\n"
        "runs 5\n"
        "metric Leaves min 10 max 20 avg 0.1 std 1 stable_runs 5\n"
        "end\n");
    const HeapModel model = HeapModel::load(ss);
    ASSERT_TRUE(model.isStable(MetricId::Leaves));
    EXPECT_FALSE(model.entry(MetricId::Leaves)->locallyStable);
}

TEST(LocalMetricsTest, DetectorWidensLocalBands)
{
    // Local entry [10, 20]: slack = 2 x max(0.25 * 10, 1) = 5, so
    // 24 is tolerated where a global entry would have fired.
    HeapModel model;
    HeapModel::Entry e;
    e.id = MetricId::InEqOut;
    e.minValue = 10.0;
    e.maxValue = 20.0;
    e.locallyStable = true;
    model.addEntry(e);

    AnomalyDetector detector(model);
    Process process;
    for (std::uint64_t p = 0; p < 10; ++p) {
        MetricSample s;
        s.pointIndex = p;
        s.vertexCount = 1000;
        for (MetricId id : kAllMetrics)
            s.values[metricIndex(id)] = 15.0;
        s.values[metricIndex(MetricId::InEqOut)] = 24.0;
        detector.onSample(s, process);
    }
    detector.finish();
    EXPECT_TRUE(detector.reports().empty());

    // Far beyond even the widened band: still detected.
    AnomalyDetector strict(model);
    for (std::uint64_t p = 0; p < 10; ++p) {
        MetricSample s;
        s.pointIndex = p;
        s.vertexCount = 1000;
        for (MetricId id : kAllMetrics)
            s.values[metricIndex(id)] = 15.0;
        s.values[metricIndex(MetricId::InEqOut)] = 40.0;
        strict.onSample(s, process);
    }
    strict.finish();
    EXPECT_EQ(strict.reports().size(), 1u);
}

TEST(LocalMetricsTest, SlackHelperValues)
{
    DetectorConfig cfg;
    HeapModel::Entry global;
    global.minValue = 10.0;
    global.maxValue = 20.0;
    EXPECT_DOUBLE_EQ(boundSlack(cfg, global), 2.5);
    HeapModel::Entry local = global;
    local.locallyStable = true;
    EXPECT_DOUBLE_EQ(boundSlack(cfg, local), 6.25);
}

TEST(LocalMetricsTest, PoorlyDisguisedSkipsLocalEntries)
{
    HeapModel model;
    HeapModel::Entry e;
    e.id = MetricId::InEqOut;
    e.minValue = 10.0;
    e.maxValue = 30.0;
    e.locallyStable = true;
    model.addEntry(e);

    // Pinned at the minimum: would be poorly-disguised for a global
    // entry, ignored for a local one.
    MetricSeries series;
    for (std::size_t i = 0; i < 60; ++i) {
        MetricSample s;
        s.pointIndex = i;
        s.vertexCount = 1000;
        s.values[metricIndex(MetricId::InEqOut)] = 10.2;
        series.push(s);
    }
    ExecutionChecker checker(model);
    const CheckResult result = checker.finalize(series, 6000);
    EXPECT_EQ(result.countOf(BugClass::PoorlyDisguised), 0u);
}

TEST(LocalMetricsTest, EndToEndOnWorkload)
{
    // On a real workload the local extension only ever *adds*
    // entries, never perturbs the global ones.
    HeapMDConfig cfg;
    cfg.process.metricFrequency = 200;
    const HeapMD strict_tool(cfg);
    HeapMDConfig lcfg = cfg;
    lcfg.summarizer.includeLocallyStable = true;
    const HeapMD local_tool(lcfg);

    auto app = makeApp("vpr");
    const TrainingOutcome plain =
        strict_tool.train(*app, makeInputs(1, 6, 1, 0.3));
    const TrainingOutcome local =
        local_tool.train(*app, makeInputs(1, 6, 1, 0.3));
    EXPECT_EQ(local.model.globallyStableMetricCount(),
              plain.model.stableMetricCount());
    EXPECT_GE(local.model.stableMetricCount(),
              plain.model.stableMetricCount());
}

} // namespace

} // namespace heapmd
