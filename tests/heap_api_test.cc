/**
 * @file
 * Unit tests of HeapApi: the instrumented program's heap facade.
 */

#include <gtest/gtest.h>

#include "runtime/heap_api.hh"

namespace heapmd
{

namespace
{

class HeapApiTest : public ::testing::Test
{
  protected:
    HeapApiTest()
        : process_(), heap_(process_)
    {
    }

    Process process_;
    HeapApi heap_;
};

TEST_F(HeapApiTest, MallocReportsAndTracks)
{
    const Addr a = heap_.malloc(40);
    EXPECT_NE(a, kNullAddr);
    EXPECT_TRUE(heap_.isLive(a));
    EXPECT_EQ(heap_.blockSize(a), 40u);
    EXPECT_EQ(process_.graph().vertexCount(), 1u);
    EXPECT_EQ(process_.graph().objectAt(a)->size, 40u);
}

TEST_F(HeapApiTest, MallocZeroPromotedToOne)
{
    const Addr a = heap_.malloc(0);
    EXPECT_EQ(heap_.blockSize(a), 1u);
}

TEST_F(HeapApiTest, FreeClearsEverywhere)
{
    const Addr a = heap_.malloc(40);
    heap_.free(a);
    EXPECT_FALSE(heap_.isLive(a));
    EXPECT_EQ(process_.graph().vertexCount(), 0u);
    EXPECT_EQ(heap_.liveCount(), 0u);
}

TEST_F(HeapApiTest, DoubleFreeStillReported)
{
    const Addr a = heap_.malloc(40);
    heap_.free(a);
    heap_.free(a); // buggy, but observable
    EXPECT_EQ(process_.graph().stats().unknownFrees, 1u);
}

TEST_F(HeapApiTest, StoreAndLoadPointer)
{
    const Addr a = heap_.malloc(64);
    const Addr b = heap_.malloc(64);
    heap_.storePtr(a + 8, b);
    EXPECT_EQ(heap_.loadPtr(a + 8), b);
    EXPECT_TRUE(process_.graph().hasEdge(
        process_.graph().objectAt(a)->id,
        process_.graph().objectAt(b)->id));
    heap_.storePtr(a + 8, kNullAddr);
    EXPECT_EQ(heap_.loadPtr(a + 8), kNullAddr);
    EXPECT_EQ(process_.graph().edgeCount(), 0u);
}

TEST_F(HeapApiTest, LoadEmitsReadEvent)
{
    const Addr a = heap_.malloc(16);
    const Tick before = process_.now();
    heap_.loadPtr(a);
    EXPECT_EQ(process_.now(), before + 1);
}

TEST_F(HeapApiTest, StoreDataDoesNotShadow)
{
    const Addr a = heap_.malloc(16);
    heap_.storeData(a, 1234);
    EXPECT_EQ(heap_.loadPtr(a), kNullAddr); // data not readable back
}

TEST_F(HeapApiTest, FreeDropsShadowInRange)
{
    const Addr a = heap_.malloc(64);
    const Addr b = heap_.malloc(64);
    heap_.storePtr(a + 8, b);
    heap_.free(a);
    // Address likely reused by the next malloc of the same class.
    const Addr c = heap_.malloc(64);
    EXPECT_EQ(c, a); // LIFO reuse
    EXPECT_EQ(heap_.loadPtr(c + 8), kNullAddr); // old shadow gone
}

TEST_F(HeapApiTest, DanglingPointerValueSurvivesTargetFree)
{
    const Addr a = heap_.malloc(64);
    const Addr b = heap_.malloc(64);
    heap_.storePtr(a + 8, b);
    heap_.free(b);
    // The stored value still reads back (dangling), but the graph
    // edge is gone.
    EXPECT_EQ(heap_.loadPtr(a + 8), b);
    EXPECT_EQ(process_.graph().edgeCount(), 0u);
}

TEST_F(HeapApiTest, ReallocGrowInPlaceKeepsShadow)
{
    const Addr a = heap_.malloc(20); // class 32
    const Addr b = heap_.malloc(64);
    heap_.storePtr(a, b);
    const Addr a2 = heap_.realloc(a, 30); // same class
    EXPECT_EQ(a2, a);
    EXPECT_EQ(heap_.loadPtr(a2), b);
    EXPECT_EQ(heap_.blockSize(a2), 30u);
}

TEST_F(HeapApiTest, ReallocMoveCopiesPointerSlots)
{
    const Addr a = heap_.malloc(32);
    const Addr b = heap_.malloc(64);
    heap_.storePtr(a + 8, b);
    const Addr a2 = heap_.realloc(a, 512); // class change -> move
    EXPECT_NE(a2, a);
    EXPECT_EQ(heap_.loadPtr(a2 + 8), b);
    EXPECT_FALSE(heap_.isLive(a));
    // Graph edge re-established at the new slot.
    EXPECT_TRUE(process_.graph().hasEdge(
        process_.graph().objectAt(a2)->id,
        process_.graph().objectAt(b)->id));
}

TEST_F(HeapApiTest, ReallocShrinkDropsTailShadow)
{
    const Addr a = heap_.malloc(256);
    const Addr b = heap_.malloc(64);
    heap_.storePtr(a + 8, b);
    heap_.storePtr(a + 200, b);
    const Addr a2 = heap_.realloc(a, 64);
    EXPECT_EQ(heap_.loadPtr(a2 + 8), b);
    EXPECT_EQ(heap_.loadPtr(a2 + 200), kNullAddr);
}

TEST_F(HeapApiTest, ReallocNullIsMalloc)
{
    const Addr a = heap_.realloc(kNullAddr, 48);
    EXPECT_TRUE(heap_.isLive(a));
}

TEST_F(HeapApiTest, ReallocZeroIsFree)
{
    const Addr a = heap_.malloc(48);
    EXPECT_EQ(heap_.realloc(a, 0), kNullAddr);
    EXPECT_FALSE(heap_.isLive(a));
}

TEST_F(HeapApiTest, TouchEmitsRead)
{
    const Addr a = heap_.malloc(16);
    const Tick before = process_.now();
    heap_.touch(a);
    EXPECT_EQ(process_.now(), before + 1);
}

TEST_F(HeapApiTest, FunctionScopeBalances)
{
    const FnId fn = heap_.intern("scoped");
    {
        FunctionScope scope(heap_, fn);
        EXPECT_EQ(process_.callStack().top(), fn);
    }
    EXPECT_TRUE(process_.callStack().empty());
    EXPECT_EQ(process_.fnEntries(), 1u);
}

TEST_F(HeapApiTest, InternSharesProcessRegistry)
{
    const FnId fn = heap_.intern("shared_name");
    EXPECT_EQ(process_.registry().name(fn), "shared_name");
}

} // namespace

} // namespace heapmd
