/**
 * @file
 * Unit tests of the SWAT baseline (staleness-based leak detection).
 */

#include <gtest/gtest.h>

#include "swat/swat_detector.hh"

namespace heapmd
{

namespace
{

SwatConfig
fastConfig()
{
    SwatConfig cfg;
    cfg.stalenessThreshold = 100;
    cfg.minObjectAge = 10;
    return cfg;
}

TEST(SwatTest, FreshObjectNotReported)
{
    Process process;
    SwatDetector swat(fastConfig());
    swat.attach(process);
    process.onAlloc(0x1000, 64);
    const auto leaks = swat.finalize(process.now() + 5);
    EXPECT_TRUE(leaks.empty()); // younger than minObjectAge
}

TEST(SwatTest, StaleLiveObjectReported)
{
    Process process;
    SwatDetector swat(fastConfig());
    swat.attach(process);
    process.onAlloc(0x1000, 64);
    // Burn ticks without touching the object.
    for (int i = 0; i < 200; ++i)
        process.onFnEnter(0);
    const auto leaks = swat.finalize(process.now());
    ASSERT_EQ(leaks.size(), 1u);
    EXPECT_EQ(leaks[0].addr, 0x1000u);
    EXPECT_EQ(leaks[0].size, 64u);
    EXPECT_GE(leaks[0].staleness, 100u);
}

TEST(SwatTest, AccessedObjectNotReported)
{
    Process process;
    SwatDetector swat(fastConfig());
    swat.attach(process);
    process.onAlloc(0x1000, 64);
    for (int i = 0; i < 300; ++i) {
        process.onFnEnter(0);
        if (i % 50 == 0)
            process.onRead(0x1000 + 8); // interior access counts
    }
    process.onRead(0x1000);
    const auto leaks = swat.finalize(process.now());
    EXPECT_TRUE(leaks.empty());
}

TEST(SwatTest, WriteCountsAsAccess)
{
    Process process;
    SwatDetector swat(fastConfig());
    swat.attach(process);
    process.onAlloc(0x1000, 64);
    for (int i = 0; i < 300; ++i) {
        process.onFnEnter(0);
        if (i % 40 == 0)
            process.onWrite(0x1000 + 16, 0);
    }
    process.onWrite(0x1000, 0);
    EXPECT_TRUE(swat.finalize(process.now()).empty());
}

TEST(SwatTest, FreedFreshObjectNotReported)
{
    Process process;
    SwatDetector swat(fastConfig());
    swat.attach(process);
    process.onAlloc(0x1000, 64);
    process.onRead(0x1000);
    process.onFree(0x1000);
    for (int i = 0; i < 300; ++i)
        process.onFnEnter(0);
    EXPECT_TRUE(swat.finalize(process.now()).empty());
}

TEST(SwatTest, StaleThenFreedIsStickyReported)
{
    // An object that sat stale past the threshold and was freed at
    // teardown was already reported while the program ran.
    Process process;
    SwatDetector swat(fastConfig());
    swat.attach(process);
    process.onAlloc(0x1000, 64);
    for (int i = 0; i < 300; ++i)
        process.onFnEnter(0);
    process.onFree(0x1000); // cleanup at exit
    const auto leaks = swat.finalize(process.now());
    ASSERT_EQ(leaks.size(), 1u);
    EXPECT_EQ(leaks[0].addr, 0x1000u);
}

TEST(SwatTest, ReallocKeepsTracking)
{
    Process process;
    SwatDetector swat(fastConfig());
    swat.attach(process);
    process.onAlloc(0x1000, 64);
    process.onRealloc(0x1000, 0x2000, 128);
    for (int i = 0; i < 300; ++i)
        process.onFnEnter(0);
    const auto leaks = swat.finalize(process.now());
    ASSERT_EQ(leaks.size(), 1u);
    EXPECT_EQ(leaks[0].addr, 0x2000u);
    EXPECT_EQ(leaks[0].size, 128u);
}

TEST(SwatTest, AllocSiteRecorded)
{
    Process process;
    SwatDetector swat(fastConfig());
    swat.attach(process);
    const FnId fn = process.registry().intern("make_thing");
    process.onFnEnter(fn);
    process.onAlloc(0x1000, 64);
    process.onFnExit(fn);
    for (int i = 0; i < 300; ++i)
        process.onFnEnter(0);
    const auto leaks = swat.finalize(process.now());
    ASSERT_EQ(leaks.size(), 1u);
    EXPECT_EQ(leaks[0].allocSite, fn);
}

TEST(SwatTest, AccessOutsideAnyObjectIgnored)
{
    Process process;
    SwatDetector swat(fastConfig());
    swat.attach(process);
    process.onAlloc(0x1000, 64);
    process.onRead(0x999999);
    EXPECT_EQ(swat.liveCount(), 1u);
    EXPECT_EQ(swat.totalAccesses(), 1u);
}

TEST(SwatTest, AdaptiveSamplingDecaysObservation)
{
    // With a tiny k, a hot allocation site quickly stops being
    // observed: sampled << total.
    SwatConfig cfg = fastConfig();
    cfg.samplingK = 4.0;
    cfg.seed = 99;
    Process process;
    SwatDetector swat(cfg);
    swat.attach(process);
    process.onAlloc(0x1000, 64);
    for (int i = 0; i < 2000; ++i)
        process.onRead(0x1000);
    EXPECT_EQ(swat.totalAccesses(), 2000u);
    EXPECT_LT(swat.sampledAccesses(), 200u);
    EXPECT_GE(swat.sampledAccesses(), 1u);
}

TEST(SwatTest, FullObservationByDefault)
{
    Process process;
    SwatDetector swat(fastConfig());
    swat.attach(process);
    process.onAlloc(0x1000, 64);
    for (int i = 0; i < 500; ++i)
        process.onRead(0x1000);
    EXPECT_EQ(swat.sampledAccesses(), 500u);
}

TEST(SwatDeathTest, DoubleAttachPanics)
{
    Process process;
    SwatDetector swat;
    swat.attach(process);
    EXPECT_DEATH(swat.attach(process), "already attached");
}

TEST(SwatTest, MultipleObjectsIndependentStaleness)
{
    Process process;
    SwatDetector swat(fastConfig());
    swat.attach(process);
    process.onAlloc(0x1000, 64);
    process.onAlloc(0x2000, 64);
    for (int i = 0; i < 300; ++i) {
        process.onFnEnter(0);
        process.onRead(0x2000); // keep the second fresh
    }
    const auto leaks = swat.finalize(process.now());
    ASSERT_EQ(leaks.size(), 1u);
    EXPECT_EQ(leaks[0].addr, 0x1000u);
}

} // namespace

} // namespace heapmd
