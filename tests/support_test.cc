/**
 * @file
 * Unit tests of the support layer: RNG, statistics, ring buffer,
 * table/CSV emitters.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <sstream>

#include "support/csv.hh"
#include "support/random.hh"
#include "support/ring_buffer.hh"
#include "support/stats.hh"
#include "support/table.hh"

namespace heapmd
{

namespace
{

TEST(SplitMix64Test, KnownSequenceIsDeterministic)
{
    std::uint64_t s1 = 42, s2 = 42;
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(splitMix64(s1), splitMix64(s2));
    EXPECT_EQ(s1, s2);
}

TEST(SplitMix64Test, AdvancesState)
{
    std::uint64_t s = 0;
    const std::uint64_t first = splitMix64(s);
    const std::uint64_t second = splitMix64(s);
    EXPECT_NE(first, second);
}

TEST(RngTest, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDifferentStreams)
{
    Rng a(123), b(124);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b()) ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(RngTest, BelowStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(RngTest, BelowOneIsAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngDeathTest, BelowZeroPanics)
{
    Rng rng(1);
    EXPECT_DEATH(rng.below(0), "bound 0");
}

TEST(RngTest, BetweenInclusiveBounds)
{
    Rng rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const std::int64_t v = rng.between(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(RngDeathTest, BetweenReversedPanics)
{
    Rng rng(1);
    EXPECT_DEATH(rng.between(3, -3), "lo > hi");
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0.0;
    for (int i = 0; i < 2000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);
}

TEST(RngTest, ChanceEdges)
{
    Rng rng(3);
    for (int i = 0; i < 32; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_FALSE(rng.chance(-1.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_TRUE(rng.chance(2.0));
    }
}

TEST(RngTest, ChanceApproximatesProbability)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 5000; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 5000.0, 0.3, 0.04);
}

TEST(RngTest, GaussianMeanAndSpread)
{
    Rng rng(19);
    RunningStats stats;
    for (int i = 0; i < 5000; ++i)
        stats.push(rng.gaussian(10.0, 2.0));
    EXPECT_NEAR(stats.mean(), 10.0, 0.2);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.2);
}

TEST(RngTest, WeightedPickRespectsWeights)
{
    Rng rng(23);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 4000; ++i)
        ++counts[rng.weightedPick(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[2] / 4000.0, 0.75, 0.05);
}

TEST(RngDeathTest, WeightedPickRejectsAllZero)
{
    Rng rng(1);
    std::vector<double> weights = {0.0, 0.0};
    EXPECT_DEATH(rng.weightedPick(weights), "positive total");
}

TEST(RngDeathTest, WeightedPickRejectsNegative)
{
    Rng rng(1);
    std::vector<double> weights = {1.0, -0.5};
    EXPECT_DEATH(rng.weightedPick(weights), "negative weight");
}

TEST(RngTest, ForkIsIndependent)
{
    Rng a(31);
    Rng child = a.fork();
    EXPECT_NE(a(), child());
}

TEST(RunningStatsTest, EmptyDefaults)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_EQ(stats.mean(), 0.0);
    EXPECT_EQ(stats.variance(), 0.0);
    EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(RunningStatsTest, KnownValues)
{
    RunningStats stats;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.push(x);
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesCombinedStream)
{
    RunningStats all, left, right;
    Rng rng(37);
    for (int i = 0; i < 100; ++i) {
        const double x = rng.uniform() * 10.0;
        all.push(x);
        (i < 40 ? left : right).push(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides)
{
    RunningStats a, b;
    a.push(1.0);
    a.push(3.0);
    RunningStats copy = a;
    copy.merge(b); // merging empty changes nothing
    EXPECT_EQ(copy.count(), 2u);
    EXPECT_DOUBLE_EQ(copy.mean(), 2.0);
    b.merge(a); // merging into empty copies
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatsTest, ResetClears)
{
    RunningStats stats;
    stats.push(5.0);
    stats.reset();
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_EQ(stats.mean(), 0.0);
}

TEST(MinMaxTest, EnvelopeAndContains)
{
    MinMax mm;
    EXPECT_TRUE(mm.empty());
    EXPECT_FALSE(mm.contains(0.0));
    mm.push(3.0);
    mm.push(-1.0);
    mm.push(2.0);
    EXPECT_DOUBLE_EQ(mm.min(), -1.0);
    EXPECT_DOUBLE_EQ(mm.max(), 3.0);
    EXPECT_DOUBLE_EQ(mm.span(), 4.0);
    EXPECT_TRUE(mm.contains(-1.0));
    EXPECT_TRUE(mm.contains(3.0));
    EXPECT_TRUE(mm.contains(0.0));
    EXPECT_FALSE(mm.contains(3.0001));
    EXPECT_FALSE(mm.contains(-1.0001));
}

TEST(MinMaxTest, Merge)
{
    MinMax a, b;
    a.push(1.0);
    b.push(5.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(VectorStatsTest, MeanAndStddev)
{
    EXPECT_DOUBLE_EQ(meanOf({}), 0.0);
    EXPECT_DOUBLE_EQ(meanOf({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(stddevOf({5.0}), 0.0);
    EXPECT_DOUBLE_EQ(stddevOf({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
                     2.0);
}

TEST(RingBufferTest, FillAndWrap)
{
    RingBuffer<int> ring(3);
    EXPECT_TRUE(ring.empty());
    ring.push(1);
    ring.push(2);
    EXPECT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring.at(0), 1);
    EXPECT_EQ(ring.at(1), 2);
    ring.push(3);
    ring.push(4); // evicts 1
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.at(0), 2);
    EXPECT_EQ(ring.at(2), 4);
}

TEST(RingBufferTest, SnapshotOldestFirst)
{
    RingBuffer<int> ring(4);
    for (int i = 0; i < 10; ++i)
        ring.push(i);
    const std::vector<int> snap = ring.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_EQ(snap.front(), 6);
    EXPECT_EQ(snap.back(), 9);
}

TEST(RingBufferTest, ClearKeepsCapacity)
{
    RingBuffer<int> ring(2);
    ring.push(1);
    ring.clear();
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), 2u);
    ring.push(7);
    EXPECT_EQ(ring.at(0), 7);
}

TEST(RingBufferTest, WrapAroundManyCycles)
{
    RingBuffer<int> ring(3);
    // Push far past capacity so head_ laps the storage repeatedly;
    // the window must always hold the last three values in order.
    for (int i = 0; i < 100; ++i) {
        ring.push(i);
        if (i >= 2) {
            EXPECT_EQ(ring.size(), 3u);
            EXPECT_EQ(ring.at(0), i - 2);
            EXPECT_EQ(ring.at(1), i - 1);
            EXPECT_EQ(ring.at(2), i);
        }
    }
}

TEST(RingBufferTest, MoveOnlyElements)
{
    RingBuffer<std::unique_ptr<int>> ring(2);
    ring.push(std::make_unique<int>(1));
    ring.push(std::make_unique<int>(2));
    ring.push(std::make_unique<int>(3)); // evicts 1
    ASSERT_EQ(ring.size(), 2u);
    EXPECT_EQ(*ring.at(0), 2);
    EXPECT_EQ(*ring.at(1), 3);
    ring.clear();
    EXPECT_TRUE(ring.empty());
}

TEST(RingBufferTest, CapacityOne)
{
    RingBuffer<int> ring(1);
    EXPECT_EQ(ring.capacity(), 1u);
    ring.push(1);
    EXPECT_EQ(ring.at(0), 1);
    ring.push(2); // every push evicts the sole element
    ring.push(3);
    EXPECT_EQ(ring.size(), 1u);
    EXPECT_EQ(ring.at(0), 3);
    const std::vector<int> snap = ring.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap.front(), 3);
}

TEST(RingBufferDeathTest, ZeroCapacityPanics)
{
    EXPECT_DEATH(RingBuffer<int>(0), "capacity");
}

TEST(RingBufferDeathTest, OutOfRangeIndexPanics)
{
    RingBuffer<int> ring(2);
    ring.push(1);
    EXPECT_DEATH(ring.at(1), "out of range");
}

TEST(TextTableTest, AlignsColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"a", "1"});
    table.addRow({"longer", "22"});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TextTableDeathTest, WidthMismatchPanics)
{
    TextTable table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "row width");
}

TEST(TextTableDeathTest, EmptyHeaderPanics)
{
    EXPECT_DEATH(TextTable({}), "at least one column");
}

TEST(FormatTest, DoublesAndPercents)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(-1.0, 0), "-1");
    EXPECT_EQ(fmtPercent(12.345, 1), "12.3%");
}

TEST(CsvWriterTest, PlainRow)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.writeRow({"a", "b", "c"});
    EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(CsvWriterTest, QuotesSpecials)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.writeRow({"with,comma", "with\"quote", "plain"});
    EXPECT_EQ(os.str(), "\"with,comma\",\"with\"\"quote\",plain\n");
}

TEST(CsvWriterTest, NumericRow)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.writeNumericRow({1.5, 2.0}, 2);
    EXPECT_EQ(os.str(), "1.50,2.00\n");
}

TEST(CsvWriterTest, QuotesEmbeddedLineBreaks)
{
    // RFC 4180: cells containing CR or LF must be quoted, or a reader
    // sees a phantom row boundary.
    std::ostringstream os;
    CsvWriter csv(os);
    csv.writeRow({"line\nfeed", "carriage\rreturn", "both\r\nends"});
    EXPECT_EQ(os.str(), "\"line\nfeed\",\"carriage\rreturn\","
                        "\"both\r\nends\"\n");
}

TEST(CsvWriterTest, QuoteDoublingInsideQuotedCell)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.writeRow({"she said \"hi\", twice"});
    EXPECT_EQ(os.str(), "\"she said \"\"hi\"\", twice\"\n");
}

TEST(CsvWriterTest, EmptyCellsStayUnquoted)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.writeRow({"", "x", ""});
    EXPECT_EQ(os.str(), ",x,\n");
}

} // namespace

} // namespace heapmd
