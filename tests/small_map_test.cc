/**
 * @file
 * Tests for SmallMap, the inline-array map behind the heap-graph's
 * per-object edge maps.  A randomized pass keeps a std::unordered_map
 * oracle in lockstep to pin the semantics across the spill boundary.
 */

#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "support/small_map.hh"

using namespace heapmd;

using Map = SmallMap<std::uint64_t, std::uint32_t, 4>;
using Oracle = std::unordered_map<std::uint64_t, std::uint32_t>;

TEST(SmallMap, StartsEmpty)
{
    Map map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.count(7), 0u);
    EXPECT_TRUE(map.begin() == map.end());
}

TEST(SmallMap, InlineInsertFindErase)
{
    Map map;
    EXPECT_TRUE(map.emplace(10, 1));
    EXPECT_TRUE(map.emplace(20, 2));
    EXPECT_FALSE(map.emplace(10, 99)); // duplicate key: no overwrite
    EXPECT_EQ(map.size(), 2u);
    EXPECT_EQ(map.find(10)->second, 1u);
    EXPECT_EQ(map.find(20)->second, 2u);
    EXPECT_TRUE(map.find(30) == map.end());
    EXPECT_EQ(map.erase(10), 1u);
    EXPECT_EQ(map.erase(10), 0u);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(map.count(20), 1u);
}

TEST(SmallMap, OperatorBracketInsertsAndMutates)
{
    Map map;
    map[5] = 3;
    EXPECT_EQ(map[5], 3u);
    ++map[5];
    EXPECT_EQ(map[5], 4u);
    EXPECT_EQ(map[6], 0u); // default-constructed on first touch
    EXPECT_EQ(map.size(), 2u);
}

TEST(SmallMap, SpillsPastInlineCapacity)
{
    Map map;
    Oracle oracle;
    for (std::uint64_t k = 0; k < 20; ++k) {
        map.emplace(k, static_cast<std::uint32_t>(k * 10));
        oracle.emplace(k, static_cast<std::uint32_t>(k * 10));
    }
    EXPECT_EQ(map.size(), 20u);
    EXPECT_TRUE(oracle == map);
    for (std::uint64_t k = 0; k < 20; ++k)
        EXPECT_EQ(map.find(k)->second, k * 10);
}

TEST(SmallMap, EraseAcrossTheSpillBoundary)
{
    Map map;
    for (std::uint64_t k = 0; k < 10; ++k)
        map.emplace(k, 1);
    for (std::uint64_t k = 0; k < 9; ++k)
        EXPECT_EQ(map.erase(k), 1u);
    // Spilled maps stay spilled, but the contents must be exact.
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(map.count(9), 1u);
}

TEST(SmallMap, EraseByIteratorKeepsTheRest)
{
    Map map;
    map.emplace(1, 10);
    map.emplace(2, 20);
    map.emplace(3, 30);
    map.erase(map.find(2));
    EXPECT_EQ(map.size(), 2u);
    EXPECT_EQ(map.count(2), 0u);
    EXPECT_EQ(map.find(1)->second, 10u);
    EXPECT_EQ(map.find(3)->second, 30u);
}

TEST(SmallMap, IterationVisitsEveryEntryOnce)
{
    for (std::uint64_t n : {3u, 12u}) { // inline and spilled
        Map map;
        Oracle oracle;
        for (std::uint64_t k = 0; k < n; ++k) {
            map.emplace(k, static_cast<std::uint32_t>(k + 1));
            oracle.emplace(k, static_cast<std::uint32_t>(k + 1));
        }
        Oracle seen;
        for (const auto &entry : map)
            EXPECT_TRUE(seen.emplace(entry.first, entry.second)
                            .second);
        EXPECT_EQ(seen, oracle);
    }
}

TEST(SmallMap, MutationThroughIterator)
{
    Map map;
    map.emplace(1, 10);
    auto it = map.find(1);
    it->second = 42;
    EXPECT_EQ(map.find(1)->second, 42u);
}

TEST(SmallMap, CopyIsDeep)
{
    Map original;
    for (std::uint64_t k = 0; k < 12; ++k) // force a spill
        original.emplace(k, 1);
    Map copy(original);
    original.erase(std::uint64_t{3});
    original[5] = 99;
    EXPECT_EQ(copy.size(), 12u);
    EXPECT_EQ(copy.find(3)->second, 1u);
    EXPECT_EQ(copy.find(5)->second, 1u);

    Map assigned;
    assigned.emplace(100, 100);
    assigned = copy;
    EXPECT_EQ(assigned.size(), 12u);
    EXPECT_EQ(assigned.count(100), 0u);
}

TEST(SmallMap, OracleEqualityOperators)
{
    Map map;
    Oracle oracle;
    map.emplace(1, 2);
    oracle.emplace(1, 2);
    EXPECT_TRUE(oracle == map);
    EXPECT_FALSE(oracle != map);
    oracle[1] = 3;
    EXPECT_TRUE(oracle != map);
}

TEST(SmallMap, RandomizedParityWithOracle)
{
    std::mt19937_64 rng(20260805);
    Map map;
    Oracle oracle;
    for (int step = 0; step < 20000; ++step) {
        const std::uint64_t key = rng() % 24; // keys collide often
        switch (rng() % 4) {
        case 0:
        case 1: {
            const auto value = static_cast<std::uint32_t>(rng());
            EXPECT_EQ(map.emplace(key, value),
                      oracle.emplace(key, value).second);
            break;
        }
        case 2:
            EXPECT_EQ(map.erase(key), oracle.erase(key));
            break;
        case 3:
            ++map[key];
            ++oracle[key];
            break;
        }
        ASSERT_EQ(map.size(), oracle.size()) << "step " << step;
    }
    EXPECT_TRUE(oracle == map);
}
