/**
 * @file
 * Unit tests of the heap-graph storage layer (DESIGN.md §16): the
 * chunked arena, the generation-tagged slot allocator, the page-
 * indexed extent map, and the HeapGraph-level guarantees they carry
 * (stale-id rejection across slot reuse, single-pass freeOverlapping).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "heapgraph/heap_graph.hh"
#include "heapgraph/page_index.hh"
#include "support/chunked_vector.hh"
#include "support/slot_map.hh"

namespace heapmd
{

namespace
{

// ------------------------------------------------------ ChunkedVector

TEST(ChunkedVectorTest, PushAndIndex)
{
    ChunkedVector<int> v;
    EXPECT_TRUE(v.empty());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(v.push(i), static_cast<std::size_t>(i));
    EXPECT_EQ(v.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(ChunkedVectorTest, AddressesStableAcrossGrowth)
{
    // Unlike std::vector, growing must never move existing elements:
    // the heap-graph holds ObjectRecord references across allocate().
    ChunkedVector<std::uint64_t, 4> v; // 16 per chunk
    std::vector<const std::uint64_t *> addrs;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        v.push(i);
        addrs.push_back(&v[i]);
    }
    for (std::uint64_t i = 0; i < 1000; ++i) {
        EXPECT_EQ(addrs[i], &v[i]);
        EXPECT_EQ(*addrs[i], i);
    }
}

TEST(ChunkedVectorTest, ClearReleasesAndRestarts)
{
    ChunkedVector<int, 2> v;
    for (int i = 0; i < 10; ++i)
        v.push(i);
    v.clear();
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.push(42), 0u);
    EXPECT_EQ(v[0], 42);
}

// ------------------------------------------------------ SlotAllocator

TEST(SlotAllocatorTest, AcquireIsDenseAndLive)
{
    SlotAllocator a;
    EXPECT_EQ(a.acquire(), 0u);
    EXPECT_EQ(a.acquire(), 1u);
    EXPECT_EQ(a.acquire(), 2u);
    EXPECT_EQ(a.liveCount(), 3u);
    EXPECT_TRUE(a.live(1));
    EXPECT_FALSE(a.live(3)); // never allocated
}

TEST(SlotAllocatorTest, ReleaseRecyclesLifo)
{
    SlotAllocator a;
    a.acquire();
    a.acquire();
    a.acquire();
    a.release(1);
    a.release(0);
    EXPECT_EQ(a.freeCount(), 2u);
    EXPECT_EQ(a.acquire(), 0u); // most recently released first
    EXPECT_EQ(a.acquire(), 1u);
    EXPECT_EQ(a.size(), 3u); // no new slots created
}

TEST(SlotAllocatorTest, GenerationBumpInvalidatesOldIds)
{
    SlotAllocator a;
    const std::uint32_t slot = a.acquire();
    const std::uint64_t first_id = a.idOf(slot);
    EXPECT_EQ(a.resolve(first_id), slot);

    a.release(slot);
    EXPECT_EQ(a.resolve(first_id), SlotAllocator::kNoSlot);

    // Recycle the same slot: new id, old one still dead.
    ASSERT_EQ(a.acquire(), slot);
    const std::uint64_t second_id = a.idOf(slot);
    EXPECT_NE(second_id, first_id);
    EXPECT_GT(second_id, first_id); // generation grows monotonically
    EXPECT_EQ(a.resolve(second_id), slot);
    EXPECT_EQ(a.resolve(first_id), SlotAllocator::kNoSlot);
}

TEST(SlotAllocatorTest, IdEncodesGenerationAndSlot)
{
    SlotAllocator a;
    const std::uint32_t slot = a.acquire();
    const std::uint64_t id = a.idOf(slot);
    EXPECT_EQ(SlotAllocator::slotOf(id), slot);
    EXPECT_EQ(SlotAllocator::genOf(id), a.generation(slot));
    EXPECT_GE(id, std::uint64_t{1} << 32); // gen starts at 1
}

TEST(SlotAllocatorTest, ResolveRejectsUnknownAndMalformed)
{
    SlotAllocator a;
    EXPECT_EQ(a.resolve(0), SlotAllocator::kNoSlot);
    EXPECT_EQ(a.resolve(~std::uint64_t{0}), SlotAllocator::kNoSlot);
    a.acquire();
    // Right slot, wrong generation.
    EXPECT_EQ(a.resolve((std::uint64_t{99} << 32) | 0u),
              SlotAllocator::kNoSlot);
}

TEST(SlotAllocatorTest, ClearKeepsGenerationsCounting)
{
    SlotAllocator a;
    const std::uint32_t slot = a.acquire();
    const std::uint64_t before = a.idOf(slot);
    a.clear();
    EXPECT_EQ(a.liveCount(), 0u);
    EXPECT_EQ(a.resolve(before), SlotAllocator::kNoSlot);
    const std::uint32_t again = a.acquire();
    EXPECT_GT(a.idOf(again), before);
}

// ---------------------------------------------------------- PageIndex

TEST(PageIndexTest, LookupWithinSinglePage)
{
    PageIndex idx;
    idx.insert(0x1000, 64, 7);
    idx.insert(0x1040, 32, 8);
    EXPECT_EQ(idx.lookup(0x1000), 7u);
    EXPECT_EQ(idx.lookup(0x103f), 7u);
    EXPECT_EQ(idx.lookup(0x1040), 8u);
    EXPECT_EQ(idx.lookup(0x105f), 8u);
    // Past both extents the candidate is still the predecessor start;
    // the caller's contains() check rejects it.
    EXPECT_EQ(idx.lookup(0x1060), 8u);
    EXPECT_EQ(idx.startAt(0x1000), 7u);
    EXPECT_EQ(idx.startAt(0x1001), PageIndex::kNoSlot);
    EXPECT_EQ(idx.lookup(0x2000), PageIndex::kNoSlot);
}

TEST(PageIndexTest, SpannerCoversInteriorPages)
{
    PageIndex idx;
    // Object spanning pages 1..4 (addr 0x1800, 3 full pages + tails).
    idx.insert(0x1800, 0x3000, 5);
    EXPECT_EQ(idx.lookup(0x1800), 5u);
    EXPECT_EQ(idx.lookup(0x2000), 5u); // page 2 head via spanner
    EXPECT_EQ(idx.lookup(0x3fff), 5u);
    EXPECT_EQ(idx.lookup(0x47ff), 5u); // last byte
    idx.erase(0x1800, 0x3000);
    EXPECT_EQ(idx.lookup(0x2000), PageIndex::kNoSlot);
    EXPECT_EQ(idx.lookup(0x1800), PageIndex::kNoSlot);
    EXPECT_EQ(idx.startCount(), 0u);
}

TEST(PageIndexTest, InPageStartHidesSpanner)
{
    PageIndex idx;
    idx.insert(0x1f00, 0x200, 1); // spans into page 2 (0x2000..0x20ff)
    idx.insert(0x2100, 0x100, 2); // starts inside page 2
    EXPECT_EQ(idx.lookup(0x2000), 1u); // spanner
    EXPECT_EQ(idx.lookup(0x20ff), 1u);
    EXPECT_EQ(idx.lookup(0x2100), 2u); // predecessor start wins
    EXPECT_EQ(idx.lookup(0x21ff), 2u);
}

TEST(PageIndexTest, ForEachStartInWalksAscending)
{
    PageIndex idx;
    const std::vector<Addr> starts = {0x1000, 0x1100, 0x2040,
                                      0x5000, 0x5008};
    for (std::size_t i = 0; i < starts.size(); ++i)
        idx.insert(starts[i], 8, static_cast<std::uint32_t>(i));

    std::vector<Addr> seen;
    idx.forEachStartIn(0x1001, 0x5008,
                       [&](Addr a, std::uint32_t) { seen.push_back(a); });
    EXPECT_EQ(seen, (std::vector<Addr>{0x1100, 0x2040, 0x5000}));

    Addr first = 0;
    std::uint32_t slot = PageIndex::kNoSlot;
    EXPECT_TRUE(idx.firstStartIn(0x1001, 0x6000, first, slot));
    EXPECT_EQ(first, 0x1100u);
    EXPECT_EQ(slot, 1u);
    EXPECT_FALSE(idx.firstStartIn(0x3000, 0x5000, first, slot));
}

TEST(PageIndexTest, EraseIsExactAndClearDropsEverything)
{
    PageIndex idx;
    idx.insert(0x1000, 16, 0);
    idx.insert(0x1010, 16, 1);
    idx.erase(0x1000, 16);
    EXPECT_EQ(idx.lookup(0x1008), PageIndex::kNoSlot);
    EXPECT_EQ(idx.lookup(0x1010), 1u);
    EXPECT_EQ(idx.startCount(), 1u);
    idx.clear();
    EXPECT_EQ(idx.startCount(), 0u);
    EXPECT_EQ(idx.lookup(0x1010), PageIndex::kNoSlot);
}

// ------------------------------------------- HeapGraph id-reuse rules

TEST(SlotReuseTest, StaleIdDeadAfterSlotRecycled)
{
    HeapGraph g;
    const ObjectId a = g.allocate(0x1000, 64);
    ASSERT_TRUE(g.free(0x1000));
    // Same address, same (recycled) arena slot: new identity.
    const ObjectId b = g.allocate(0x1000, 64);
    EXPECT_NE(a, b);
    EXPECT_EQ(SlotAllocator::slotOf(a), SlotAllocator::slotOf(b));
    EXPECT_NE(SlotAllocator::genOf(a), SlotAllocator::genOf(b));
    EXPECT_EQ(g.objectById(a), nullptr);
    ASSERT_NE(g.objectById(b), nullptr);
    EXPECT_EQ(g.objectById(b)->addr, 0x1000u);
    g.checkConsistency();
}

TEST(SlotReuseTest, DanglingEdgeNotResurrectedBySlotReuse)
{
    HeapGraph g;
    g.allocate(0x1000, 64);
    const ObjectId victim = g.allocate(0x2000, 64);
    g.write(0x1000, 0x2000); // edge source -> victim
    ASSERT_TRUE(g.hasEdge(g.objectAt(0x1000)->id, victim));

    ASSERT_TRUE(g.free(0x2000));
    // Recycles the victim's slot at the victim's address.
    const ObjectId imposter = g.allocate(0x2000, 64);

    // The stored pointer still dangles: no edge to the imposter, no
    // edge to the stale id, and the stale id resolves to nothing.
    const ObjectId source = g.objectAt(0x1000)->id;
    EXPECT_FALSE(g.hasEdge(source, imposter));
    EXPECT_FALSE(g.hasEdge(source, victim));
    EXPECT_EQ(g.objectById(victim), nullptr);
    EXPECT_EQ(g.objectAt(0x1000)->outdegree(), 0u);

    // A fresh store re-establishes connectivity to the new object.
    g.write(0x1000, 0x2000);
    EXPECT_TRUE(g.hasEdge(source, imposter));
    g.checkConsistency();
}

TEST(SlotReuseTest, ReallocMoveInvalidatesOldIdUnderReuse)
{
    HeapGraph g;
    const ObjectId target = g.allocate(0x3000, 64);
    const ObjectId old_id = g.allocate(0x1000, 64);
    g.write(0x1000, 0x3000); // out-edge that survives the move
    g.write(0x1008, 0x1000); // self-pointer: must dangle after move

    const ObjectId new_id = g.reallocate(0x1000, 0x2000, 64);
    EXPECT_NE(new_id, old_id);
    EXPECT_EQ(g.objectById(old_id), nullptr);
    ASSERT_NE(g.objectById(new_id), nullptr);
    EXPECT_TRUE(g.hasEdge(new_id, target));
    EXPECT_FALSE(g.hasEdge(new_id, new_id)); // self-pointer dangles

    // Reuse the moved-from slot's address: stale id must stay dead
    // even though address and arena slot are both recycled.
    const ObjectId reuse = g.allocate(0x1000, 64);
    EXPECT_EQ(g.objectById(old_id), nullptr);
    EXPECT_NE(reuse, old_id);
    g.checkConsistency();
}

TEST(SlotReuseTest, IdsUniqueAcrossHeavyChurn)
{
    HeapGraph g;
    std::vector<ObjectId> retired;
    ObjectId prev = kNoObject;
    for (int round = 0; round < 100; ++round) {
        const ObjectId id = g.allocate(0x1000, 32);
        EXPECT_NE(id, prev);
        for (ObjectId dead : retired)
            EXPECT_NE(id, dead);
        ASSERT_TRUE(g.free(0x1000));
        retired.push_back(id);
        prev = id;
    }
    for (ObjectId dead : retired)
        EXPECT_EQ(g.objectById(dead), nullptr);
}

// --------------------------------------- freeOverlapping (single pass)

TEST(FreeOverlappingTest, TenThousandVictimsInOnePass)
{
    HeapGraph g;
    const Addr base = 0x100000;
    const std::uint64_t kObjSize = 48; // straddles page boundaries
    const int kCount = 10000;
    for (int i = 0; i < kCount; ++i)
        g.allocate(base + static_cast<Addr>(i) * kObjSize, kObjSize);
    // Wire neighbours so severing also exercises edge teardown.
    for (int i = 0; i + 1 < kCount; i += 2) {
        g.write(base + static_cast<Addr>(i) * kObjSize,
                base + static_cast<Addr>(i + 1) * kObjSize);
    }
    ASSERT_EQ(g.vertexCount(), static_cast<std::uint64_t>(kCount));
    ASSERT_GT(g.edgeCount(), 0u);

    const std::size_t freed = g.freeOverlapping(
        base, static_cast<std::uint64_t>(kCount) * kObjSize);
    EXPECT_EQ(freed, static_cast<std::size_t>(kCount));
    EXPECT_EQ(g.vertexCount(), 0u);
    EXPECT_EQ(g.edgeCount(), 0u);
    EXPECT_EQ(g.stats().liveBytes, 0u);
    g.checkConsistency();
}

TEST(FreeOverlappingTest, SparesExcludedStartAndOutsideObjects)
{
    HeapGraph g;
    g.allocate(0x1000, 64); // straddles range head: starts before
    g.allocate(0x1040, 64); // inside
    g.allocate(0x1080, 64); // inside, excluded
    g.allocate(0x10c0, 64); // starts exactly at range end: outside
    const std::size_t freed = g.freeOverlapping(0x1020, 0xa0, 0x1080);
    EXPECT_EQ(freed, 2u); // head-straddler + 0x1040
    EXPECT_EQ(g.objectAt(0x1000), nullptr);
    EXPECT_EQ(g.objectAt(0x1040), nullptr);
    ASSERT_NE(g.objectAt(0x1080), nullptr);
    ASSERT_NE(g.objectAt(0x10c0), nullptr);
    g.checkConsistency();
}

TEST(FreeOverlappingTest, RangeSpanningManyPages)
{
    HeapGraph g;
    // One big spanner plus small objects sprinkled across 32 pages.
    g.allocate(0x10000, 0x8000, kNoFunction, 0); // pages 16..23
    for (int i = 0; i < 16; ++i)
        g.allocate(0x20000 + static_cast<Addr>(i) * 0x1000 + 8, 16);
    const std::size_t freed = g.freeOverlapping(0x10800, 0x20000);
    EXPECT_EQ(freed, 17u);
    EXPECT_EQ(g.vertexCount(), 0u);
    g.checkConsistency();
}

} // namespace

} // namespace heapmd
