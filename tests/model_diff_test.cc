/**
 * @file
 * Unit tests of model diffing (the Section 6 "program evolution"
 * application).
 */

#include <gtest/gtest.h>

#include "model/model_diff.hh"

namespace heapmd
{

namespace
{

HeapModel
modelWith(std::initializer_list<HeapModel::Entry> entries)
{
    HeapModel model;
    for (const HeapModel::Entry &e : entries)
        model.addEntry(e);
    return model;
}

HeapModel::Entry
entry(MetricId id, double min, double max)
{
    HeapModel::Entry e;
    e.id = id;
    e.minValue = min;
    e.maxValue = max;
    return e;
}

TEST(ModelDiffTest, IdenticalModelsUnchanged)
{
    const HeapModel a =
        modelWith({entry(MetricId::Leaves, 20.0, 30.0)});
    const HeapModel b =
        modelWith({entry(MetricId::Leaves, 20.0, 30.0)});
    const ModelDiff diff = diffModels(a, b);
    EXPECT_TRUE(diff.unchanged());
    EXPECT_NE(diff.describe().find("models agree"),
              std::string::npos);
}

TEST(ModelDiffTest, SmallShiftWithinToleranceIgnored)
{
    // Figure 7(B): clean builds barely move their ranges.
    const HeapModel a =
        modelWith({entry(MetricId::Leaves, 20.0, 30.0)});
    const HeapModel b =
        modelWith({entry(MetricId::Leaves, 20.5, 30.8)});
    EXPECT_TRUE(diffModels(a, b).unchanged());
}

TEST(ModelDiffTest, LargeShiftReported)
{
    const HeapModel a =
        modelWith({entry(MetricId::Leaves, 20.0, 30.0)});
    const HeapModel b =
        modelWith({entry(MetricId::Leaves, 32.0, 45.0)});
    const ModelDiff diff = diffModels(a, b);
    ASSERT_EQ(diff.metrics.size(), 1u);
    EXPECT_EQ(diff.metrics[0].kind,
              MetricDiff::Kind::RangeShifted);
    EXPECT_GT(diff.metrics[0].shift, 1.0);
    EXPECT_NE(diff.describe().find("range moved"),
              std::string::npos);
}

TEST(ModelDiffTest, LostAndGainedStability)
{
    const HeapModel a =
        modelWith({entry(MetricId::Leaves, 20.0, 30.0)});
    const HeapModel b =
        modelWith({entry(MetricId::Roots, 1.0, 5.0)});
    const ModelDiff diff = diffModels(a, b);
    ASSERT_EQ(diff.metrics.size(), 2u);
    // Metric order follows kAllMetrics: Roots before Leaves.
    EXPECT_EQ(diff.metrics[0].id, MetricId::Roots);
    EXPECT_EQ(diff.metrics[0].kind,
              MetricDiff::Kind::GainedStability);
    EXPECT_EQ(diff.metrics[1].id, MetricId::Leaves);
    EXPECT_EQ(diff.metrics[1].kind,
              MetricDiff::Kind::LostStability);
    const std::string text = diff.describe();
    EXPECT_NE(text.find("GAINED"), std::string::npos);
    EXPECT_NE(text.find("LOST"), std::string::npos);
}

TEST(ModelDiffTest, SubPointShiftIgnoredEvenOnNarrowRanges)
{
    // A narrow range that moves by < 1 percentage point is noise.
    const HeapModel a =
        modelWith({entry(MetricId::Roots, 1.00, 1.20)});
    const HeapModel b =
        modelWith({entry(MetricId::Roots, 1.40, 1.60)});
    EXPECT_TRUE(diffModels(a, b).unchanged());
}

TEST(ModelDiffTest, ToleranceKnob)
{
    const HeapModel a =
        modelWith({entry(MetricId::Leaves, 20.0, 30.0)});
    const HeapModel b =
        modelWith({entry(MetricId::Leaves, 23.0, 33.0)});
    EXPECT_TRUE(diffModels(a, b, 0.50).unchanged());
    EXPECT_FALSE(diffModels(a, b, 0.10).unchanged());
}

TEST(ModelDiffTest, EmptyModels)
{
    EXPECT_TRUE(diffModels(HeapModel{}, HeapModel{}).unchanged());
}

} // namespace

} // namespace heapmd
