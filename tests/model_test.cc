/**
 * @file
 * Unit tests of the HeapModel and the metric summarizer (model
 * constructor back half).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "model/summarizer.hh"
#include "support/random.hh"

namespace heapmd
{

namespace
{

MetricSeries
flatSeries(double value, std::size_t n = 50,
           const std::string &label = "")
{
    MetricSeries series;
    series.label = label;
    for (std::size_t i = 0; i < n; ++i) {
        MetricSample s;
        s.pointIndex = i;
        s.vertexCount = 1000;
        for (MetricId id : kAllMetrics)
            s.values[metricIndex(id)] = value;
        series.push(s);
    }
    return series;
}

/** Flat for most metrics, wildly unstable for @p noisy. */
MetricSeries
mixedSeries(double value, MetricId noisy, std::uint64_t seed)
{
    MetricSeries series;
    Rng rng(seed);
    double wild = 40.0;
    for (std::size_t i = 0; i < 60; ++i) {
        MetricSample s;
        s.pointIndex = i;
        s.vertexCount = 1000;
        for (MetricId id : kAllMetrics)
            s.values[metricIndex(id)] = value;
        if (i % 7 == 0)
            wild *= rng.chance(0.5) ? 1.9 : 0.5;
        s.values[metricIndex(noisy)] = wild;
        series.push(s);
    }
    return series;
}

TEST(HeapModelTest, EntryLookupAndViolation)
{
    HeapModel model;
    HeapModel::Entry e;
    e.id = MetricId::Leaves;
    e.minValue = 10.0;
    e.maxValue = 20.0;
    model.addEntry(e);

    EXPECT_TRUE(model.isStable(MetricId::Leaves));
    EXPECT_FALSE(model.isStable(MetricId::Roots));
    EXPECT_EQ(model.stableMetricCount(), 1u);
    EXPECT_FALSE(model.violates(MetricId::Leaves, 15.0));
    EXPECT_FALSE(model.violates(MetricId::Leaves, 10.0));
    EXPECT_FALSE(model.violates(MetricId::Leaves, 20.0));
    EXPECT_TRUE(model.violates(MetricId::Leaves, 9.99));
    EXPECT_TRUE(model.violates(MetricId::Leaves, 20.01));
    // Metrics not in the model never violate.
    EXPECT_FALSE(model.violates(MetricId::Roots, 99.0));
}

TEST(HeapModelDeathTest, DuplicateEntryPanics)
{
    HeapModel model;
    HeapModel::Entry e;
    e.id = MetricId::Roots;
    e.maxValue = 1.0;
    model.addEntry(e);
    EXPECT_DEATH(model.addEntry(e), "duplicate");
}

TEST(HeapModelDeathTest, InvertedRangePanics)
{
    HeapModel model;
    HeapModel::Entry e;
    e.id = MetricId::Roots;
    e.minValue = 2.0;
    e.maxValue = 1.0;
    EXPECT_DEATH(model.addEntry(e), "min > max");
}

TEST(HeapModelTest, SaveLoadRoundTrip)
{
    HeapModel model;
    model.programName = "My App (v2)";
    model.trainingRuns = 25;
    HeapModel::Entry e;
    e.id = MetricId::Outdeg1;
    e.minValue = 17.9;
    e.maxValue = 28.8;
    e.avgChange = 0.1;
    e.stdDev = 1.4;
    e.stableRuns = 19;
    model.addEntry(e);
    model.unstableMetrics = {MetricId::Roots, MetricId::InEqOut};

    std::stringstream ss;
    model.save(ss);
    const HeapModel loaded = HeapModel::load(ss);

    EXPECT_EQ(loaded.programName, "My App (v2)");
    EXPECT_EQ(loaded.trainingRuns, 25u);
    ASSERT_TRUE(loaded.isStable(MetricId::Outdeg1));
    const auto entry = loaded.entry(MetricId::Outdeg1);
    EXPECT_DOUBLE_EQ(entry->minValue, 17.9);
    EXPECT_DOUBLE_EQ(entry->maxValue, 28.8);
    EXPECT_DOUBLE_EQ(entry->avgChange, 0.1);
    EXPECT_DOUBLE_EQ(entry->stdDev, 1.4);
    EXPECT_EQ(entry->stableRuns, 19u);
    ASSERT_EQ(loaded.unstableMetrics.size(), 2u);
    EXPECT_EQ(loaded.unstableMetrics[0], MetricId::Roots);
}

TEST(HeapModelDeathTest, LoadRejectsGarbage)
{
    std::stringstream ss("not a model\n");
    EXPECT_DEATH(HeapModel::load(ss), "bad header");
}

TEST(HeapModelDeathTest, LoadRejectsMissingEnd)
{
    std::stringstream ss("heapmd-model v1\nprogram x\nruns 1\n");
    EXPECT_DEATH(HeapModel::load(ss), "missing 'end'");
}

TEST(HeapModelDeathTest, LoadRejectsMalformedMetricLine)
{
    std::stringstream ss(
        "heapmd-model v1\nmetric Leaves banana 1 2\nend\n");
    EXPECT_DEATH(HeapModel::load(ss), "malformed");
}

TEST(SummarizerTest, AllStableRunsProduceFullModel)
{
    MetricSummarizer summarizer;
    summarizer.addRun(flatSeries(20.0, 50, "run0"));
    summarizer.addRun(flatSeries(22.0, 50, "run1"));
    summarizer.addRun(flatSeries(21.0, 50, "run2"));

    EXPECT_EQ(summarizer.runCount(), 3u);
    const HeapModel model = summarizer.buildModel("app");
    EXPECT_EQ(model.programName, "app");
    EXPECT_EQ(model.trainingRuns, 3u);
    EXPECT_EQ(model.stableMetricCount(), kNumMetrics);
    const auto entry = model.entry(MetricId::Roots);
    ASSERT_TRUE(entry.has_value());
    EXPECT_DOUBLE_EQ(entry->minValue, 20.0);
    EXPECT_DOUBLE_EQ(entry->maxValue, 22.0);
    EXPECT_EQ(entry->stableRuns, 3u);
    EXPECT_TRUE(model.unstableMetrics.empty());
}

TEST(SummarizerTest, UnstableMetricExcluded)
{
    MetricSummarizer summarizer;
    summarizer.addRun(mixedSeries(20.0, MetricId::InEqOut, 1));
    summarizer.addRun(mixedSeries(21.0, MetricId::InEqOut, 2));
    summarizer.addRun(mixedSeries(22.0, MetricId::InEqOut, 3));

    const HeapModel model = summarizer.buildModel("app");
    EXPECT_FALSE(model.isStable(MetricId::InEqOut));
    EXPECT_TRUE(model.isStable(MetricId::Roots));
    // Never stable on any run -> listed for the pathological check.
    ASSERT_EQ(model.unstableMetrics.size(), 1u);
    EXPECT_EQ(model.unstableMetrics[0], MetricId::InEqOut);
}

TEST(SummarizerTest, FortyPercentRule)
{
    SummarizerConfig cfg;
    cfg.stableInputFraction = 0.40;
    MetricSummarizer summarizer(cfg);
    // 2 stable runs of 5 = 40%: meets ceil(0.4 * 5) = 2.
    summarizer.addRun(flatSeries(20.0));
    summarizer.addRun(flatSeries(21.0));
    summarizer.addRun(mixedSeries(20.0, MetricId::Leaves, 1));
    summarizer.addRun(mixedSeries(20.0, MetricId::Leaves, 2));
    summarizer.addRun(mixedSeries(20.0, MetricId::Leaves, 3));
    EXPECT_EQ(summarizer.stableRunCount(MetricId::Leaves), 2u);
    const HeapModel model = summarizer.buildModel("app");
    EXPECT_TRUE(model.isStable(MetricId::Leaves));

    // 1 of 5 = 20%: not enough.
    MetricSummarizer strict(cfg);
    strict.addRun(flatSeries(20.0));
    strict.addRun(mixedSeries(20.0, MetricId::Leaves, 1));
    strict.addRun(mixedSeries(20.0, MetricId::Leaves, 2));
    strict.addRun(mixedSeries(20.0, MetricId::Leaves, 3));
    strict.addRun(mixedSeries(20.0, MetricId::Leaves, 4));
    EXPECT_FALSE(strict.buildModel("app").isStable(MetricId::Leaves));
}

TEST(SummarizerTest, RangeComesFromStableRunsOnly)
{
    // The unstable run reaches value 95; the calibrated max must come
    // from the stable runs only.
    MetricSummarizer summarizer;
    summarizer.addRun(flatSeries(20.0));
    summarizer.addRun(flatSeries(24.0));
    summarizer.addRun(flatSeries(22.0));
    MetricSeries wild = mixedSeries(21.0, MetricId::Leaves, 7);
    summarizer.addRun(wild);
    const HeapModel model = summarizer.buildModel("app");
    const auto entry = model.entry(MetricId::Leaves);
    ASSERT_TRUE(entry.has_value());
    EXPECT_DOUBLE_EQ(entry->minValue, 20.0);
    EXPECT_DOUBLE_EQ(entry->maxValue, 24.0);
    EXPECT_EQ(entry->stableRuns, 3u);
}

TEST(SummarizerTest, DegenerateZeroMetricDropped)
{
    // A metric that is constantly zero is trivially stable but gets
    // filtered by minMeaningfulValue.
    MetricSummarizer summarizer;
    summarizer.addRun(flatSeries(0.0));
    summarizer.addRun(flatSeries(0.0));
    const HeapModel model = summarizer.buildModel("app");
    EXPECT_EQ(model.stableMetricCount(), 0u);
}

TEST(SummarizerTest, SuspectTrainingRuns)
{
    // Three stable runs around 20-24, one run that is *stable* at 60:
    // wait -- a stable run contributes to the range.  A run that is
    // UNstable but stays inside the range is fine; an unstable run
    // whose envelope leaves the range is suspect (Section 4.1).
    MetricSummarizer summarizer;
    summarizer.addRun(flatSeries(20.0));
    summarizer.addRun(flatSeries(24.0));
    summarizer.addRun(flatSeries(22.0));
    summarizer.addRun(mixedSeries(21.0, MetricId::Leaves, 3));
    const HeapModel model = summarizer.buildModel("app");
    ASSERT_TRUE(model.isStable(MetricId::Leaves));
    const auto suspects = summarizer.suspectTrainingRuns(model);
    ASSERT_EQ(suspects.size(), 1u);
    EXPECT_EQ(suspects[0], 3u);
}

TEST(SummarizerTest, EmptySummarizerBuildsEmptyModel)
{
    MetricSummarizer summarizer;
    const HeapModel model = summarizer.buildModel("app");
    EXPECT_EQ(model.stableMetricCount(), 0u);
    EXPECT_EQ(model.trainingRuns, 0u);
}

TEST(SummarizerDeathTest, BadFractionFatal)
{
    SummarizerConfig cfg;
    cfg.stableInputFraction = 0.0;
    EXPECT_DEATH(MetricSummarizer summarizer(cfg), "stableInputFraction");
}

TEST(SummarizerTest, RunAnalysesRetained)
{
    MetricSummarizer summarizer;
    MetricSeries s = flatSeries(20.0, 50, "labelled run");
    summarizer.addRun(s);
    ASSERT_EQ(summarizer.runs().size(), 1u);
    EXPECT_EQ(summarizer.runs()[0].label, "labelled run");
    EXPECT_TRUE(
        summarizer.runs()[0].stable[metricIndex(MetricId::Roots)]);
    EXPECT_EQ(summarizer.runs()[0].klass[metricIndex(MetricId::Roots)],
              Stability::GloballyStable);
}

} // namespace

} // namespace heapmd
