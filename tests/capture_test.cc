/**
 * @file
 * Tests of the live-capture subsystem: LiveTable scanning semantics,
 * the bootstrap arena, and end-to-end preload runs of capture_child
 * under libheapmd_capture.so (paths injected by CMake).
 *
 * The preload tests assert the shim's core contract: whatever the
 * child does, the recorded trace must audit clean -- zero
 * error-severity trace.* findings -- and replay into a heap graph.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "analysis/report.hh"
#include "analysis/trace_lint.hh"
#include "capture/bootstrap_arena.hh"
#include "capture/capture_session.hh"
#include "capture/live_table.hh"
#include "metrics/metric.hh"
#include "obsv/segment.hh"
#include "runtime/process.hh"
#include "trace/gzip_source.hh"
#include "trace/segment_set.hh"
#include "trace/trace_reader.hh"

namespace heapmd
{

namespace
{

using capture::BootstrapArena;
using capture::LiveTable;
using capture::ScanStats;

std::uintptr_t
addrOf(const void *ptr)
{
    return reinterpret_cast<std::uintptr_t>(ptr);
}

// ---------------------------------------------------------------
// LiveTable: extent bookkeeping (synthetic addresses, no scanning).
// ---------------------------------------------------------------

TEST(LiveTableTest, InsertResolveErase)
{
    LiveTable table;
    table.insert(0x1000, 64);
    table.insert(0x2000, 32);
    EXPECT_EQ(table.objectCount(), 2u);
    EXPECT_EQ(table.liveBytes(), 96u);

    EXPECT_EQ(table.resolve(0x1000), 0x1000u); // first byte
    EXPECT_EQ(table.resolve(0x103f), 0x1000u); // last byte
    EXPECT_EQ(table.resolve(0x1040), 0u);      // one past the end
    EXPECT_EQ(table.resolve(0x0fff), 0u);
    EXPECT_EQ(table.resolve(0x2010), 0x2000u);

    EXPECT_EQ(table.erase(0x1000), 64u);
    EXPECT_EQ(table.erase(0x1000), 0u); // already gone
    EXPECT_EQ(table.resolve(0x1010), 0u);
    EXPECT_EQ(table.liveBytes(), 32u);
}

TEST(LiveTableTest, OverlappingFindsStraddlers)
{
    LiveTable table;
    table.insert(0x1000, 0x40);
    table.insert(0x1080, 0x40);
    table.insert(0x2000, 0x40);

    // A range covering the tail of the first and all of the second.
    const std::vector<std::uintptr_t> hits =
        table.overlapping(0x1020, 0x100);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0], 0x1000u);
    EXPECT_EQ(hits[1], 0x1080u);

    const std::vector<std::uintptr_t> excluded =
        table.overlapping(0x1020, 0x100, /*exclude=*/0x1080);
    ASSERT_EQ(excluded.size(), 1u);
    EXPECT_EQ(excluded[0], 0x1000u);

    EXPECT_TRUE(table.overlapping(0x3000, 0x100).empty());
}

TEST(LiveTableTest, ForEachExtentVisitsInAddressOrder)
{
    LiveTable table;
    table.insert(0x2000, 32);
    table.insert(0x1000, 64);
    std::vector<std::pair<std::uintptr_t, std::size_t>> seen;
    table.forEachExtent(
        [&seen](std::uintptr_t addr, std::size_t size) {
            seen.emplace_back(addr, size);
        });
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], (std::pair<std::uintptr_t, std::size_t>{
                           0x1000, 64}));
    EXPECT_EQ(seen[1], (std::pair<std::uintptr_t, std::size_t>{
                           0x2000, 32}));
}

// ---------------------------------------------------------------
// LiveTable: conservative scanning over real buffers.
// ---------------------------------------------------------------

struct Emitted
{
    std::uintptr_t slot;
    std::uintptr_t value;
};

std::vector<Emitted>
scanInto(LiveTable &table, ScanStats *stats = nullptr)
{
    std::vector<Emitted> out;
    const ScanStats s = table.scan(
        [&out](std::uintptr_t slot, std::uintptr_t value) {
            out.push_back({slot, value});
        });
    if (stats != nullptr)
        *stats = s;
    return out;
}

TEST(LiveTableScanTest, EmitsOnlyTheDelta)
{
    std::uintptr_t source[4] = {};
    std::uintptr_t target[4] = {};
    LiveTable table;
    table.insert(addrOf(source), sizeof(source));
    table.insert(addrOf(target), sizeof(target));

    source[0] = addrOf(&target[1]); // interior pointer
    source[2] = 12345;              // not a pointer

    ScanStats stats;
    std::vector<Emitted> first = scanInto(table, &stats);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].slot, addrOf(&source[0]));
    EXPECT_EQ(first[0].value, addrOf(&target[1]));
    EXPECT_EQ(stats.objectsScanned, 2u);
    EXPECT_EQ(stats.wordsScanned, 8u);
    EXPECT_EQ(table.edgeCount(), 1u);

    // Unchanged memory: the next pass is silent.
    EXPECT_TRUE(scanInto(table).empty());

    // Retargeting within the same extent re-emits.
    source[0] = addrOf(&target[3]);
    std::vector<Emitted> retarget = scanInto(table);
    ASSERT_EQ(retarget.size(), 1u);
    EXPECT_EQ(retarget[0].value, addrOf(&target[3]));

    // Clearing the slot emits Write(slot, 0).
    source[0] = 0;
    std::vector<Emitted> cleared = scanInto(table);
    ASSERT_EQ(cleared.size(), 1u);
    EXPECT_EQ(cleared[0].slot, addrOf(&source[0]));
    EXPECT_EQ(cleared[0].value, 0u);
    EXPECT_EQ(table.edgeCount(), 0u);
}

TEST(LiveTableScanTest, FreedTargetForcesReemission)
{
    std::uintptr_t source[2] = {};
    std::uintptr_t target[2] = {};
    LiveTable table;
    table.insert(addrOf(source), sizeof(source));
    table.insert(addrOf(target), sizeof(target));

    source[0] = addrOf(&target[0]);
    ASSERT_EQ(scanInto(table).size(), 1u);

    // Free + reuse of the target address: the graph severed the edge
    // on Free, so the (unchanged) word must be emitted again.
    table.erase(addrOf(target));
    table.insert(addrOf(target), sizeof(target));
    std::vector<Emitted> again = scanInto(table);
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again[0].slot, addrOf(&source[0]));
    EXPECT_EQ(again[0].value, addrOf(&target[0]));
}

TEST(LiveTableScanTest, FreedSourceDropsItsEdges)
{
    std::uintptr_t source[2] = {};
    std::uintptr_t target[2] = {};
    LiveTable table;
    table.insert(addrOf(source), sizeof(source));
    table.insert(addrOf(target), sizeof(target));
    source[0] = addrOf(&target[0]);
    ASSERT_EQ(scanInto(table).size(), 1u);
    ASSERT_EQ(table.edgeCount(), 1u);

    table.erase(addrOf(source));
    EXPECT_EQ(table.edgeCount(), 0u);
    EXPECT_TRUE(scanInto(table).empty());
}

TEST(LiveTableScanTest, ResizeDropsEdgesBeyondNewEnd)
{
    std::uintptr_t source[4] = {};
    std::uintptr_t target[2] = {};
    LiveTable table;
    table.insert(addrOf(source), sizeof(source));
    table.insert(addrOf(target), sizeof(target));
    source[3] = addrOf(&target[0]);
    ASSERT_EQ(scanInto(table).size(), 1u);

    // Shrink past the slot: its edge state must be forgotten...
    ASSERT_TRUE(table.resize(addrOf(source), 2 * sizeof(std::uintptr_t)));
    EXPECT_EQ(table.edgeCount(), 0u);
    // ...and the shrunk extent no longer scans the stale slot.
    EXPECT_TRUE(scanInto(table).empty());
}

TEST(LiveTableScanTest, DegreeCensusComputesPaperMetrics)
{
    // a -> b, a -> c, b -> c, d isolated:
    //   a: in 0 out 2   (root, outdeg=2)
    //   b: in 1 out 1   (indeg=1, outdeg=1, in==out)
    //   c: in 2 out 0   (indeg=2, leaf)
    //   d: in 0 out 0   (root, leaf, in==out)
    std::uintptr_t a[4] = {};
    std::uintptr_t b[4] = {};
    std::uintptr_t c[4] = {};
    std::uintptr_t d[4] = {};
    LiveTable table;
    table.insert(addrOf(a), sizeof(a));
    table.insert(addrOf(b), sizeof(b));
    table.insert(addrOf(c), sizeof(c));
    table.insert(addrOf(d), sizeof(d));

    const capture::DegreeCensus empty_edges = table.degreeCensus();
    EXPECT_EQ(empty_edges.objects, 4u);
    // No edges yet: everything is a root, a leaf, and in==out.
    EXPECT_DOUBLE_EQ(
        empty_edges.percent[metricIndex(MetricId::Roots)], 100.0);
    EXPECT_DOUBLE_EQ(
        empty_edges.percent[metricIndex(MetricId::Leaves)], 100.0);
    EXPECT_DOUBLE_EQ(
        empty_edges.percent[metricIndex(MetricId::InEqOut)], 100.0);
    EXPECT_DOUBLE_EQ(
        empty_edges.percent[metricIndex(MetricId::Indeg1)], 0.0);

    a[0] = addrOf(&b[0]);
    a[1] = addrOf(&c[1]); // interior pointers count like starts
    b[0] = addrOf(&c[0]);
    ASSERT_EQ(scanInto(table).size(), 3u);

    const capture::DegreeCensus census = table.degreeCensus();
    EXPECT_EQ(census.objects, 4u);
    const auto pct = [&census](MetricId id) {
        return census.percent[metricIndex(id)];
    };
    EXPECT_DOUBLE_EQ(pct(MetricId::Roots), 50.0);   // a, d
    EXPECT_DOUBLE_EQ(pct(MetricId::Indeg1), 25.0);  // b
    EXPECT_DOUBLE_EQ(pct(MetricId::Indeg2), 25.0);  // c
    EXPECT_DOUBLE_EQ(pct(MetricId::Leaves), 50.0);  // c, d
    EXPECT_DOUBLE_EQ(pct(MetricId::Outdeg1), 25.0); // b
    EXPECT_DOUBLE_EQ(pct(MetricId::Outdeg2), 25.0); // a
    EXPECT_DOUBLE_EQ(pct(MetricId::InEqOut), 50.0); // b, d

    // Freeing the shared target severs both of its in-edges and the
    // census follows: a keeps out-degree 1 (edge into b survives).
    table.erase(addrOf(c));
    const capture::DegreeCensus after = table.degreeCensus();
    EXPECT_EQ(after.objects, 3u);
    EXPECT_DOUBLE_EQ(
        after.percent[metricIndex(MetricId::Indeg2)], 0.0);
    EXPECT_DOUBLE_EQ(after.percent[metricIndex(MetricId::Outdeg1)],
                     100.0 / 3.0); // a only
    EXPECT_DOUBLE_EQ(after.percent[metricIndex(MetricId::Leaves)],
                     200.0 / 3.0); // b, d

    const LiveTable untouched;
    EXPECT_EQ(untouched.degreeCensus().objects, 0u);
}

// ---------------------------------------------------------------
// BootstrapArena.
// ---------------------------------------------------------------

TEST(BootstrapArenaTest, AlignedBumpAllocation)
{
    alignas(BootstrapArena::kMinAlign) static char buffer[512];
    BootstrapArena arena(buffer, sizeof(buffer));

    void *a = arena.allocate(10);
    void *b = arena.allocate(10);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a, b);
    EXPECT_EQ(addrOf(a) % BootstrapArena::kMinAlign, 0u);
    EXPECT_EQ(addrOf(b) % BootstrapArena::kMinAlign, 0u);
    EXPECT_TRUE(arena.contains(a));
    EXPECT_TRUE(arena.contains(b));
    EXPECT_FALSE(arena.contains(buffer + sizeof(buffer)));
    EXPECT_EQ(arena.allocationCount(), 2u);

    void *wide = arena.allocate(8, 64);
    ASSERT_NE(wide, nullptr);
    EXPECT_EQ(addrOf(wide) % 64, 0u);

    // Exhaustion fails cleanly and permanently for that request.
    EXPECT_EQ(arena.allocate(4096), nullptr);
    EXPECT_NE(arena.allocate(8), nullptr);
}

TEST(BootstrapArenaTest, BytesBeyondBoundsCopiesOutOfBlocks)
{
    alignas(BootstrapArena::kMinAlign) static char buffer[256];
    BootstrapArena arena(buffer, sizeof(buffer));

    void *a = arena.allocate(16);
    void *b = arena.allocate(16);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);

    // From a block start, the bound reaches the end of the handed-out
    // region -- at least the block itself, never past used bytes.
    EXPECT_GE(arena.bytesBeyond(a), 32u);
    EXPECT_LE(arena.bytesBeyond(a), arena.bytesUsed());
    EXPECT_GE(arena.bytesBeyond(b), 16u);
    EXPECT_LT(arena.bytesBeyond(b), arena.bytesBeyond(a));

    // Outside the handed-out region (or the buffer) the bound is 0:
    // the untouched tail and foreign pointers are never readable.
    EXPECT_EQ(arena.bytesBeyond(buffer + arena.bytesUsed()), 0u);
    EXPECT_EQ(arena.bytesBeyond(buffer + sizeof(buffer)), 0u);
    int off_arena = 0;
    EXPECT_EQ(arena.bytesBeyond(&off_arena), 0u);
}

// ---------------------------------------------------------------
// End-to-end preload runs.
// ---------------------------------------------------------------

#if defined(HEAPMD_CAPTURE_SHIM_PATH) && defined(HEAPMD_CAPTURE_CHILD_PATH)

class PreloadCaptureTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        trace_path_ =
            (std::filesystem::temp_directory_path() /
             ("heapmd_capture_test_" + std::to_string(::getpid()) +
              "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name() +
              ".trace"))
                .string();
        baseline_segments_ = obsv::listSegmentPids();
    }

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove(trace_path_, ec);
        std::filesystem::remove(trace_path_ + ".stats", ec);
        for (std::uint64_t index :
             trace::listSegmentIndices(trace_path_))
            std::filesystem::remove(
                trace::resolveSegmentPath(trace_path_, index), ec);
        std::filesystem::remove(
            trace::segmentManifestPath(trace_path_), ec);
    }

    /** Run capture_child in @p mode under the shim. */
    capture::SessionResult
    captureChild(const std::string &mode, std::uint64_t frq = 500,
                 std::uint64_t rotate_bytes = 0,
                 bool compress = false)
    {
        capture::SessionOptions options;
        options.tracePath = trace_path_;
        options.scanFrequency = frq;
        options.shimPath = HEAPMD_CAPTURE_SHIM_PATH;
        options.rotateBytes = rotate_bytes;
        options.compress = compress;
        capture::SessionResult result;
        std::string error;
        const bool ok = capture::runCapture(
            {HEAPMD_CAPTURE_CHILD_PATH, mode}, options, result, error);
        EXPECT_TRUE(ok) << error;
        return result;
    }

    /** Audit the recorded trace. */
    analysis::Report
    audit()
    {
        analysis::Report report;
        analysis::lintTraceFile(trace_path_, report);
        return report;
    }

    /** Replay the trace the way `heapmd train --trace` does. */
    void
    replay(Process &process)
    {
        std::ifstream in(trace_path_, std::ios::binary);
        EXPECT_TRUE(in.is_open());
        TraceReader reader(in);
        replayTrace(reader, process);
        EXPECT_FALSE(reader.malformed()) << reader.error();
    }

    /** Config captured traces replay under. */
    static ProcessConfig
    replayConfig()
    {
        ProcessConfig cfg;
        cfg.metricFrequency = 1; // one sample per scan marker
        cfg.tolerateAddressReuse = true;
        return cfg;
    }

    /**
     * Stats segments that appeared in /dev/shm since SetUp.  Must be
     * empty once a capture session has finished: the shim unlinks on
     * atexit and the host reaps after waitpid, whichever path the
     * child died through.  Pre-existing segments (captures run by
     * other processes on the host) are not ours to judge.
     */
    std::vector<std::uint32_t>
    leakedSegments() const
    {
        std::vector<std::uint32_t> leaked;
        for (std::uint32_t pid : obsv::listSegmentPids()) {
            if (std::find(baseline_segments_.begin(),
                          baseline_segments_.end(),
                          pid) == baseline_segments_.end())
                leaked.push_back(pid);
        }
        return leaked;
    }

    std::string trace_path_;
    std::vector<std::uint32_t> baseline_segments_;
};

TEST_F(PreloadCaptureTest, BasicRunAuditsCleanAndReplays)
{
    const capture::SessionResult result = captureChild("basic");
    ASSERT_TRUE(result.exited);
    EXPECT_EQ(result.exitCode, 0);

    const analysis::Report report = audit();
    EXPECT_TRUE(report.clean()) << report.describe();
    EXPECT_EQ(report.errorCount(), 0u) << report.describe();

    ASSERT_NE(result.counters.count("capture.alloc_events"), 0u);
    EXPECT_GT(result.counters.at("capture.alloc_events"), 200u);
    EXPECT_GT(result.counters.at("capture.free_events"), 0u);
    EXPECT_GE(result.counters.at("capture.scan_passes"), 1u);

    std::ifstream in(trace_path_, std::ios::binary);
    TraceReader reader(in);
    EXPECT_TRUE(reader.captureProvenance());

    Process replayed(replayConfig());
    replay(replayed);
    // One metric sample per conservative scan pass.
    EXPECT_EQ(replayed.series().size(),
              result.counters.at("capture.scan_passes"));
}

TEST_F(PreloadCaptureTest, LeakedListEdgesRecoveredByFinalScan)
{
    // Scan frequency far above the child's allocation count: the
    // only pass is the finalize-time one, which must still recover
    // the leaked 128-node chain.
    const capture::SessionResult result =
        captureChild("leak", /*frq=*/1u << 30);
    ASSERT_TRUE(result.exited);
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_EQ(result.counters.at("capture.scan_passes"), 1u);
    EXPECT_GE(result.counters.at("capture.scan_edge_writes"), 100u);

    EXPECT_TRUE(audit().clean());
    Process replayed(replayConfig());
    replay(replayed);
    EXPECT_GE(replayed.graph().edgeCount(), 100u);
}

TEST_F(PreloadCaptureTest, MultithreadedStormStaysLintClean)
{
    const capture::SessionResult result = captureChild("storm",
                                                       /*frq=*/5000);
    ASSERT_TRUE(result.exited);
    EXPECT_EQ(result.exitCode, 0);

    const analysis::Report report = audit();
    EXPECT_TRUE(report.clean()) << report.describe();
    // 4 threads x 20k iterations: a real amount of traffic got
    // recorded even though reentrant shim internals are dropped.
    EXPECT_GT(result.counters.at("capture.alloc_events"), 10000u);
    EXPECT_GT(result.counters.at("capture.free_events"), 10000u);
}

TEST_F(PreloadCaptureTest, UnderscoreExitLeavesReadableTruncatedTrace)
{
    const capture::SessionResult result = captureChild("exit");
    ASSERT_TRUE(result.exited);
    EXPECT_EQ(result.exitCode, 2);

    // atexit never ran: no footer.  Capture provenance downgrades
    // that to a warning; there must be no error-severity findings.
    const analysis::Report report = audit();
    EXPECT_TRUE(report.clean()) << report.describe();
    EXPECT_TRUE(report.has("trace.no-footer")) << report.describe();
}

TEST_F(PreloadCaptureTest, ChildExitCodeIsReported)
{
    const capture::SessionResult result = captureChild("fail");
    ASSERT_TRUE(result.exited);
    EXPECT_EQ(result.exitCode, 3);
    EXPECT_TRUE(audit().clean());
}

TEST_F(PreloadCaptureTest, ForkedChildExitDoesNotCorruptTrace)
{
    // The grandchild inherits the shim, the trace fd, AND the atexit
    // finalizer, then terminates via exit(): the atfork handler's
    // disable must keep that finalizer away from the shared stream
    // (and the cloned mutex).  A finalizer that runs anyway plants a
    // footer mid-stream, truncating the trace at the fork point; the
    // low scan frequency makes the parent's post-fork workload take
    // several more passes, so the full stream is distinguishable
    // from a truncated one by the scan/alloc totals.
    const capture::SessionResult result = captureChild("fork",
                                                       /*frq=*/50);
    ASSERT_TRUE(result.exited);
    EXPECT_EQ(result.exitCode, 0);

    const analysis::Report report = audit();
    EXPECT_TRUE(report.clean()) << report.describe();
    EXPECT_EQ(report.errorCount(), 0u) << report.describe();
    // atexit DID run (in the parent): the footer must be present.
    EXPECT_FALSE(report.has("trace.no-footer")) << report.describe();

    ASSERT_GE(result.counters.at("capture.scan_passes"), 3u);
    Process replayed(replayConfig());
    replay(replayed);
    EXPECT_EQ(replayed.series().size(),
              result.counters.at("capture.scan_passes"));
}

// ---------------------------------------------------------------
// Stats-segment lifecycle: no /dev/shm leaks, whatever the exit path.
// ---------------------------------------------------------------

TEST_F(PreloadCaptureTest, SegmentUnlinkedAfterCleanExit)
{
    const capture::SessionResult result = captureChild("basic");
    ASSERT_TRUE(result.exited);
    EXPECT_TRUE(leakedSegments().empty());
}

TEST_F(PreloadCaptureTest, SegmentUnlinkedAfterStorm)
{
    const capture::SessionResult result = captureChild("storm",
                                                       /*frq=*/5000);
    ASSERT_TRUE(result.exited);
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_TRUE(leakedSegments().empty());
}

TEST_F(PreloadCaptureTest, SegmentUnlinkedWhenAtexitIsSkipped)
{
    // _exit(2) skips the shim's atexit unlink; the host side of
    // runCapture must reap the child's segment after waitpid.
    const capture::SessionResult result = captureChild("exit");
    ASSERT_TRUE(result.exited);
    EXPECT_TRUE(leakedSegments().empty());
}

TEST_F(PreloadCaptureTest, ForkedChildDoesNotUnlinkParentSegment)
{
    // The forked grandchild inherits the segment mapping and exits
    // via exit(): its finalizer must go dark, NOT unlink the
    // parent's live segment.  A successful fork-mode run that leaves
    // no leaked segment proves both halves: the parent's own unlink
    // still worked, and nothing double-unlinked mid-run (the trace
    // stayed clean, checked by ForkedChildExitDoesNotCorruptTrace).
    const capture::SessionResult result = captureChild("fork",
                                                       /*frq=*/50);
    ASSERT_TRUE(result.exited);
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_TRUE(leakedSegments().empty());
}

// ---------------------------------------------------------------
// Segment rotation: the rotating-trace protocol end to end.
// ---------------------------------------------------------------

TEST_F(PreloadCaptureTest, RotatedStormAuditsCleanAcrossSegments)
{
    const capture::SessionResult result =
        captureChild("storm", /*frq=*/500, /*rotate_bytes=*/65536);
    ASSERT_TRUE(result.exited);
    EXPECT_EQ(result.exitCode, 0);
    // The storm writes megabytes of events: the threshold must have
    // tripped repeatedly.
    ASSERT_GE(result.segmentPaths.size(), 2u);

    // The set lints clean as one logical trace.  This is also the
    // no-split-records check: rotation happens only between recorded
    // allocator operations, so a record cut in half at a boundary
    // would lose framing and surface as an error finding.
    analysis::Report report;
    const analysis::TraceLintStats stats =
        analysis::lintSegmentSet(trace_path_, report);
    EXPECT_TRUE(report.clean()) << report.describe();
    EXPECT_EQ(report.errorCount(), 0u) << report.describe();
    EXPECT_EQ(stats.segments, result.segmentPaths.size());
    EXPECT_TRUE(stats.captureProvenance);

    // An orderly shutdown closes the manifest.
    trace::SegmentManifest manifest;
    ASSERT_TRUE(trace::loadSegmentManifest(
        trace::segmentManifestPath(trace_path_), manifest));
    EXPECT_TRUE(manifest.closed);
    EXPECT_EQ(manifest.segments, result.segmentPaths.size());

    // The chain replays the set as one continuous stream: live
    // state carries across boundaries, and the sample count matches
    // the shim's own scan-pass counter exactly as it does for a
    // monolithic trace.
    trace::SegmentChain chain(trace_path_, {});
    Process replayed(replayConfig());
    Event event;
    while (chain.next(event))
        replayed.onEvent(event);
    EXPECT_FALSE(chain.failed()) << chain.error();
    EXPECT_FALSE(chain.sawTruncatedTail());
    EXPECT_EQ(chain.segmentsConsumed(), result.segmentPaths.size());
    EXPECT_EQ(chain.eventsDecoded(), stats.events);
    EXPECT_EQ(replayed.series().size(),
              result.counters.at("capture.scan_passes"));
}

TEST_F(PreloadCaptureTest, RotatedUnderscoreExitTruncatesOnlyTheTail)
{
    // _exit(2) skips the shim's atexit: the newest segment ends
    // without a footer.  Invariant 1 of the rotation protocol says
    // that is the ONLY segment allowed to be cut short, and capture
    // provenance downgrades the cut to a warning.
    const capture::SessionResult result =
        captureChild("exit", /*frq=*/2, /*rotate_bytes=*/512);
    ASSERT_TRUE(result.exited);
    EXPECT_EQ(result.exitCode, 2);
    ASSERT_GE(result.segmentPaths.size(), 1u);

    analysis::Report report;
    analysis::lintSegmentSet(trace_path_, report);
    EXPECT_TRUE(report.clean()) << report.describe();
    EXPECT_EQ(report.errorCount(), 0u) << report.describe();

    trace::SegmentChain chain(trace_path_, {});
    Event event;
    while (chain.next(event))
        ;
    EXPECT_FALSE(chain.failed()) << chain.error();
    EXPECT_TRUE(chain.sawTruncatedTail());
    EXPECT_EQ(chain.segmentsConsumed(), result.segmentPaths.size());
}

TEST_F(PreloadCaptureTest, MissingSegmentIsAGapError)
{
    const capture::SessionResult result =
        captureChild("storm", /*frq=*/500, /*rotate_bytes=*/65536);
    ASSERT_TRUE(result.exited);
    ASSERT_GE(result.segmentPaths.size(), 3u);

    // Lose a middle segment (an operator deleting "old" files from
    // under a set, a botched copy).  The audit must name the gap as
    // an error, not silently lint the survivors as a shorter run.
    std::filesystem::remove(
        trace::segmentPath(trace_path_,
                           result.segmentPaths.size() / 2));
    analysis::Report report;
    analysis::lintSegmentSet(trace_path_, report);
    EXPECT_FALSE(report.clean());
    EXPECT_TRUE(report.has("trace.segment-gap"))
        << report.describe();
    EXPECT_GT(report.errorCount(), 0u) << report.describe();

    // The chaining reader refuses the broken set too.
    trace::SegmentChain chain(trace_path_, {});
    Event event;
    while (chain.next(event))
        ;
    EXPECT_TRUE(chain.failed());
}

// ---------------------------------------------------------------
// Gzip segment compression: the compressed set must behave exactly
// like a plain one through audit and replay.
// ---------------------------------------------------------------

TEST_F(PreloadCaptureTest, CompressedSegmentsRoundTripEndToEnd)
{
    if (!trace::gzipSupported())
        GTEST_SKIP() << "built without zlib";

    const capture::SessionResult result =
        captureChild("storm", /*frq=*/500, /*rotate_bytes=*/65536,
                     /*compress=*/true);
    ASSERT_TRUE(result.exited);
    EXPECT_EQ(result.exitCode, 0);
    ASSERT_GE(result.segmentPaths.size(), 2u);

    // The files on disk are the gz flavor -- and smaller than the
    // raw bytes the manifest accounts for.
    for (std::uint64_t index :
         trace::listSegmentIndices(trace_path_)) {
        const std::string on_disk =
            trace::resolveSegmentPath(trace_path_, index);
        EXPECT_TRUE(trace::isGzipPath(on_disk)) << on_disk;
    }
    trace::SegmentManifest manifest;
    ASSERT_TRUE(trace::loadSegmentManifest(
        trace::segmentManifestPath(trace_path_), manifest));
    EXPECT_TRUE(manifest.closed);
    EXPECT_TRUE(manifest.compress);
    EXPECT_GT(manifest.rawBytes, 0u);
    EXPECT_GT(manifest.compressedBytes, 0u);
    EXPECT_LT(manifest.compressedBytes, manifest.rawBytes);

    // The lint pass decodes transparently and sees the same logical
    // trace a plain run would produce.
    analysis::Report report;
    const analysis::TraceLintStats stats =
        analysis::lintSegmentSet(trace_path_, report);
    EXPECT_TRUE(report.clean()) << report.describe();
    EXPECT_EQ(stats.segments, result.segmentPaths.size());
    EXPECT_TRUE(stats.captureProvenance);

    // So does the chaining replay: same sample count as the shim's
    // own scan-pass counter, exactly like the uncompressed test.
    trace::SegmentChain chain(trace_path_, {});
    Process replayed(replayConfig());
    Event event;
    while (chain.next(event))
        replayed.onEvent(event);
    EXPECT_FALSE(chain.failed()) << chain.error();
    EXPECT_FALSE(chain.sawTruncatedTail());
    EXPECT_EQ(chain.segmentsConsumed(), result.segmentPaths.size());
    EXPECT_EQ(chain.eventsDecoded(), stats.events);
    EXPECT_EQ(replayed.series().size(),
              result.counters.at("capture.scan_passes"));
}

TEST_F(PreloadCaptureTest, CompressedUnderscoreExitKeepsDecodablePrefix)
{
    if (!trace::gzipSupported())
        GTEST_SKIP() << "built without zlib";

    // _exit(2) skips Z_FINISH on the newest segment; the sync-flushed
    // prefix must still decode, with only the tail truncated -- same
    // durability contract as the plain rotation protocol.
    const capture::SessionResult result =
        captureChild("exit", /*frq=*/2, /*rotate_bytes=*/512,
                     /*compress=*/true);
    ASSERT_TRUE(result.exited);
    EXPECT_EQ(result.exitCode, 2);
    ASSERT_GE(result.segmentPaths.size(), 1u);

    analysis::Report report;
    analysis::lintSegmentSet(trace_path_, report);
    EXPECT_TRUE(report.clean()) << report.describe();
    EXPECT_EQ(report.errorCount(), 0u) << report.describe();

    trace::SegmentChain chain(trace_path_, {});
    Event event;
    std::uint64_t events = 0;
    while (chain.next(event))
        ++events;
    EXPECT_FALSE(chain.failed()) << chain.error();
    EXPECT_TRUE(chain.sawTruncatedTail());
    EXPECT_GT(events, 0u);
}

#endif // HEAPMD_CAPTURE_SHIM_PATH && HEAPMD_CAPTURE_CHILD_PATH

} // namespace

} // namespace heapmd
