/**
 * @file
 * Tests of the continuous-monitoring subsystem: the OnlineDetector
 * hysteresis machine on synthetic sample streams, and MonitorSession
 * end to end over synthetic traces (batch parity in --once mode,
 * incident bundles and Prometheus rendering in follow mode).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "analysis/diag_lint.hh"
#include "analysis/report.hh"
#include "detector/execution_checker.hh"
#include "monitor/monitor.hh"
#include "monitor/online_detector.hh"
#include "runtime/process.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_writer.hh"

namespace heapmd
{

namespace
{

using monitor::MetricPhase;
using monitor::MetricView;
using monitor::MonitorOptions;
using monitor::MonitorSession;
using monitor::OnlineDetector;
using monitor::OnlineDetectorConfig;

// ---------------------------------------------------------------
// OnlineDetector: the hysteresis machine on synthetic samples.
// ---------------------------------------------------------------

HeapModel
singleMetricModel(MetricId id, double min, double max)
{
    HeapModel model;
    HeapModel::Entry e;
    e.id = id;
    e.minValue = min;
    e.maxValue = max;
    model.addEntry(e);
    return model;
}

MetricSample
sampleAt(MetricId id, double value, std::uint64_t point)
{
    MetricSample s;
    s.pointIndex = point;
    s.tick = point * 100;
    s.vertexCount = 1000;
    // Park every metric mid-range so only the metric under test can
    // trip the detector, then override it.
    for (MetricId other : kAllMetrics)
        s.values[metricIndex(other)] = 15.0;
    s.values[metricIndex(id)] = value;
    return s;
}

/** Feed a value sequence into a fresh streaming detector. */
class OnlineHarness
{
  public:
    OnlineHarness(MetricId id, double min, double max,
                  OnlineDetectorConfig cfg = {})
        : id_(id), model_(singleMetricModel(id, min, max)),
          detector_(model_, cfg)
    {
    }

    void
    feed(const std::vector<double> &values)
    {
        for (double v : values)
            detector_.observe(sampleAt(id_, v, point_++), frames_);
    }

    OnlineDetector &detector() { return detector_; }

    const MetricView &
    view() const
    {
        views_ = detector_.views();
        return views_.front();
    }

  private:
    MetricId id_;
    HeapModel model_;
    OnlineDetector detector_;
    std::vector<FnId> frames_{0};
    std::uint64_t point_ = 0;
    mutable std::vector<MetricView> views_;
};

// Default slack for range [10, 20]: max(0.25 * 10, 1.0) = 2.5, so
// the effective detection bounds are [7.5, 22.5] -- identical to the
// batch detector's, which is the whole point.

TEST(OnlineDetectorTest, InRangeStreamNeverFires)
{
    OnlineHarness h(MetricId::Leaves, 10.0, 20.0);
    h.feed({12, 14, 22.4, 7.6, 18, 12, 12, 12, 12, 12});
    EXPECT_FALSE(h.detector().anomalous());
    EXPECT_EQ(h.detector().samplesChecked(), 10u);
    EXPECT_EQ(h.view().phase, MetricPhase::Armed);
    EXPECT_EQ(h.view().violatingSamples, 0u);
}

TEST(OnlineDetectorTest, DebounceSuppressesShortBlips)
{
    // Two violating samples, then recovery: one short of the default
    // debounce of three, so nobody gets paged.
    OnlineHarness h(MetricId::Leaves, 10.0, 20.0);
    h.feed({12, 30, 30, 12});
    EXPECT_TRUE(h.detector().reports().empty());
    EXPECT_EQ(h.view().phase, MetricPhase::Armed);
    EXPECT_EQ(h.view().violatingSamples, 2u);
}

TEST(OnlineDetectorTest, FiresOnceTheStreakCompletes)
{
    OnlineHarness h(MetricId::Leaves, 10.0, 20.0);
    h.feed({12, 30, 31, 32});
    ASSERT_EQ(h.detector().reports().size(), 1u);
    EXPECT_EQ(h.view().phase, MetricPhase::Firing);

    // The report pins the firing sample, not the first violating one.
    const BugReport &report = h.detector().reports().front();
    EXPECT_EQ(report.metric, MetricId::Leaves);
    EXPECT_EQ(report.direction, AnomalyDirection::AboveMax);
    EXPECT_DOUBLE_EQ(report.observedValue, 32.0);
    EXPECT_EQ(report.pointIndex, 3u);
    // Calibrated bounds are reported raw, without slack.
    EXPECT_DOUBLE_EQ(report.calibratedMin, 10.0);
    EXPECT_DOUBLE_EQ(report.calibratedMax, 20.0);

    // A sustained excursion keeps violating but never re-fires.
    h.feed({33, 34, 35, 36, 37});
    EXPECT_EQ(h.detector().reports().size(), 1u);
}

TEST(OnlineDetectorTest, BelowMinReportsDirection)
{
    OnlineHarness h(MetricId::Roots, 10.0, 20.0);
    h.feed({12, 2, 2, 2});
    ASSERT_EQ(h.detector().reports().size(), 1u);
    EXPECT_EQ(h.detector().reports().front().direction,
              AnomalyDirection::BelowMin);
}

TEST(OnlineDetectorTest, CoolingReflareDoesNotRefire)
{
    OnlineHarness h(MetricId::Leaves, 10.0, 20.0);
    h.feed({12, 30, 30, 30}); // fire
    ASSERT_EQ(h.detector().reports().size(), 1u);

    // The metric dips back in range, then flares again: that is the
    // same excursion oscillating around the bound, not a new one.
    h.feed({12, 30, 12, 12, 30, 30});
    EXPECT_EQ(h.detector().reports().size(), 1u);
    EXPECT_EQ(h.view().phase, MetricPhase::Firing);
}

TEST(OnlineDetectorTest, RearmStreakEnablesTheNextIncident)
{
    OnlineHarness h(MetricId::Leaves, 10.0, 20.0);
    h.feed({12, 30, 30, 30}); // incident 1
    ASSERT_EQ(h.detector().reports().size(), 1u);

    // A full re-arm streak of in-range samples (default 8)...
    h.feed({12, 12, 12, 12, 12, 12, 12, 12});
    EXPECT_EQ(h.view().phase, MetricPhase::Armed);

    // ...makes the next excursion a fresh incident.
    h.feed({30, 30, 30});
    EXPECT_EQ(h.detector().reports().size(), 2u);
    EXPECT_EQ(h.view().incidents, 2u);
}

TEST(OnlineDetectorTest, IncidentCallbackSeesTheFiringReport)
{
    OnlineHarness h(MetricId::Leaves, 10.0, 20.0);
    std::vector<double> seen;
    h.detector().setIncidentCallback(
        [&seen](const BugReport &report) {
            seen.push_back(report.observedValue);
        });
    h.feed({12, 30, 31, 32, 33});
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_DOUBLE_EQ(seen.front(), 32.0);
}

TEST(OnlineDetectorTest, ContextRingCarriesRecentSamples)
{
    OnlineDetectorConfig cfg;
    cfg.contextCapacity = 4;
    OnlineHarness h(MetricId::Leaves, 10.0, 20.0, cfg);
    h.feed({12, 13, 14, 15, 30, 30, 30});
    ASSERT_EQ(h.detector().reports().size(), 1u);

    // The ring kept the 4 newest snapshots: the firing sample and
    // the three before it, oldest first.
    const std::vector<StackLogEntry> &log =
        h.detector().reports().front().contextLog;
    ASSERT_EQ(log.size(), 4u);
    EXPECT_DOUBLE_EQ(log.front().metricValue, 15.0);
    EXPECT_DOUBLE_EQ(log.back().metricValue, 30.0);
    EXPECT_EQ(log.back().frames, std::vector<FnId>{0});
}

// ---------------------------------------------------------------
// MonitorSession over a synthetic trace.
// ---------------------------------------------------------------

/**
 * Writes a synthetic capture-shaped trace: a calibration phase whose
 * heap graph holds 10 ten-node chains (10% of vertices are roots),
 * then a fault phase allocating pointer-free singletons that drives
 * %roots far above any calibrated range.  A scan-marker function
 * entry after each step makes the replay sample (metricFrequency=1)
 * exactly where the capture shim would.
 */
class MonitorSessionTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        trace_path_ =
            (std::filesystem::temp_directory_path() /
             ("heapmd_monitor_test_" + std::to_string(::getpid()) +
              "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name() +
              ".trace"))
                .string();
        bundle_dir_ = trace_path_ + ".bundles";

        FunctionRegistry registry;
        registry.intern("test.scan");
        std::ofstream os(trace_path_, std::ios::binary);
        ASSERT_TRUE(os.is_open());
        TraceWriterOptions opts;
        opts.captureProvenance = true;
        TraceWriter writer(os, registry, opts);

        Tick tick = 0;
        const auto emit = [&writer, &tick](const Event &event) {
            writer.onEvent(event, ++tick);
        };
        const auto scanMark = [&emit] {
            emit(Event::fnEnter(0));
            emit(Event::fnExit(0));
        };

        // Calibration shape: 10 chains x 10 nodes, linked head to
        // tail, so exactly the 10 heads have indegree 0.
        Addr next_addr = 0x10000;
        for (int chain = 0; chain < 10; ++chain) {
            Addr prev = 0;
            for (int node = 0; node < 10; ++node) {
                const Addr addr = next_addr;
                next_addr += 0x100;
                emit(Event::alloc(addr, 16));
                if (prev != 0)
                    emit(Event::write(prev, addr));
                prev = addr;
            }
        }
        // A comfortable clean window: %roots sits at 10 throughout.
        for (int i = 0; i < 6; ++i)
            scanMark();

        // The fault: 100 singletons double the vertex count and lift
        // %roots to (10 + 100) / 200 = 55.
        for (int i = 0; i < 100; ++i) {
            emit(Event::alloc(next_addr, 16));
            next_addr += 0x100;
        }
        for (int i = 0; i < 6; ++i)
            scanMark();

        writer.finish();
    }

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove(trace_path_, ec);
        std::filesystem::remove_all(bundle_dir_, ec);
    }

    /** Model calibrated for the chain phase: %roots in [9, 11]. */
    static HeapModel
    rootsModel()
    {
        return singleMetricModel(MetricId::Roots, 9.0, 11.0);
    }

    std::string trace_path_;
    std::string bundle_dir_;
};

TEST_F(MonitorSessionTest, OnceMatchesTheBatchChecker)
{
    // The reference verdict: `heapmd check` replay of the trace.
    const HeapModel model = rootsModel();
    ProcessConfig cfg;
    cfg.metricFrequency = 1;
    cfg.tolerateAddressReuse = true;
    Process process(cfg);
    ExecutionChecker checker(model);
    checker.attach(process);
    {
        std::ifstream in(trace_path_, std::ios::binary);
        TraceReader reader(in);
        replayTrace(reader, process);
        ASSERT_FALSE(reader.malformed()) << reader.error();
    }
    const CheckResult batch = checker.finalize(process);
    ASSERT_FALSE(batch.reports.empty());

    // --once over the same path (single-file degradation of the
    // segment chain) must agree report for report.
    MonitorOptions options;
    options.segmentsBase = trace_path_;
    options.follow = false;
    const HeapModel session_model = rootsModel();
    MonitorSession session(session_model, options);
    std::string error;
    ASSERT_TRUE(session.run(error)) << error;

    EXPECT_TRUE(session.anomalous());
    ASSERT_EQ(session.reports().size(), batch.reports.size());
    for (std::size_t i = 0; i < batch.reports.size(); ++i) {
        EXPECT_EQ(session.reports()[i].metric,
                  batch.reports[i].metric);
        EXPECT_EQ(session.reports()[i].direction,
                  batch.reports[i].direction);
        EXPECT_EQ(session.reports()[i].pointIndex,
                  batch.reports[i].pointIndex);
        EXPECT_DOUBLE_EQ(session.reports()[i].observedValue,
                         batch.reports[i].observedValue);
    }
    EXPECT_EQ(session.stats().samples, 12u);
    EXPECT_EQ(session.stats().segmentsConsumed, 1u);
}

TEST_F(MonitorSessionTest, FollowFiresAndWritesLintableBundles)
{
    MonitorOptions options;
    options.segmentsBase = trace_path_;
    options.bundleDir = bundle_dir_;
    options.follow = true;
    // A plain completed file has no manifest and no writer to watch,
    // so follow mode would poll forever at EOF; stop once the chain
    // goes idle (every event decoded).
    options.pollMs = 1;
    bool idled = false;
    options.stopped = [&idled] { return idled; };
    options.onIdle = [&idled] { idled = true; };

    const HeapModel session_model = rootsModel();
    MonitorSession session(session_model, options);
    std::string error;
    ASSERT_TRUE(session.run(error)) << error;

    // The singleton flood violates every post-fault sample: the
    // hysteresis machine fires exactly once for the excursion.
    ASSERT_EQ(session.reports().size(), 1u);
    EXPECT_EQ(session.reports().front().metric, MetricId::Roots);
    EXPECT_EQ(session.stats().incidents, 1u);
    ASSERT_EQ(session.stats().bundlesWritten, 1u);

    // The bundle is on disk and diag-lint clean.
    const std::string bundle_path =
        bundle_dir_ + "/incident-000.json";
    ASSERT_TRUE(std::filesystem::exists(bundle_path));
    analysis::Report lint;
    analysis::lintBundleFile(bundle_path, lint);
    EXPECT_TRUE(lint.clean()) << lint.describe();

    // Detector state is live in follow mode.
    const std::vector<MetricView> views = session.views();
    ASSERT_EQ(views.size(), 1u);
    EXPECT_EQ(views.front().phase, MetricPhase::Firing);
    EXPECT_DOUBLE_EQ(views.front().value, 55.0);
}

TEST_F(MonitorSessionTest, CleanModelSeesNoIncidents)
{
    // Calibrate %roots to cover both phases: nothing violates, no
    // bundles appear.
    MonitorOptions options;
    options.segmentsBase = trace_path_;
    options.bundleDir = bundle_dir_;
    options.follow = false;
    const HeapModel session_model =
        singleMetricModel(MetricId::Roots, 5.0, 60.0);
    MonitorSession session(session_model, options);
    std::string error;
    ASSERT_TRUE(session.run(error)) << error;
    EXPECT_FALSE(session.anomalous());
    EXPECT_EQ(session.stats().bundlesWritten, 0u);
    EXPECT_FALSE(std::filesystem::exists(bundle_dir_ +
                                         "/incident-000.json"));
}

TEST_F(MonitorSessionTest, PrometheusRenderingIsWellFormed)
{
    MonitorOptions options;
    options.segmentsBase = trace_path_;
    options.follow = true;
    options.pollMs = 1;
    bool idled = false;
    options.stopped = [&idled] { return idled; };
    options.onIdle = [&idled] { idled = true; };
    const HeapModel session_model = rootsModel();
    MonitorSession session(session_model, options);
    std::string error;
    ASSERT_TRUE(session.run(error)) << error;

    const std::string text = session.renderPrometheus();
    for (const char *family :
         {"heapmd_monitor_metric_percent",
          "heapmd_monitor_range_distance",
          "heapmd_monitor_violating_samples_total",
          "heapmd_monitor_incidents_total",
          "heapmd_monitor_bundles_written_total",
          "heapmd_monitor_samples_total",
          "heapmd_monitor_events_total",
          "heapmd_monitor_segments_consumed_total",
          "heapmd_monitor_tail_lag_bytes"}) {
        EXPECT_NE(text.find(std::string("# HELP ") + family),
                  std::string::npos)
            << family;
        EXPECT_NE(text.find(std::string("# TYPE ") + family),
                  std::string::npos)
            << family;
    }
    // The one modeled metric renders with its label.
    EXPECT_NE(text.find("heapmd_monitor_metric_percent{metric="
                        "\"Root\"} 55.0"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("heapmd_monitor_incidents_total 1"),
              std::string::npos)
        << text;
}

TEST_F(MonitorSessionTest, RejectsAmbiguousSources)
{
    MonitorOptions options;
    options.segmentsBase = trace_path_;
    options.pid = static_cast<std::uint32_t>(::getpid());
    const HeapModel session_model = rootsModel();
    MonitorSession session(session_model, options);
    std::string error;
    EXPECT_FALSE(session.run(error));
    EXPECT_FALSE(error.empty());
}

} // namespace

} // namespace heapmd
