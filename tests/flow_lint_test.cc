/**
 * @file
 * Tests of the shadow-heap flow analyzer (`heapmd audit --deep`).
 *
 * Every flow.* rule in the DESIGN.md section-12 catalog is covered:
 * once over the seeded corpus in tests/data/ (regenerate with
 * gen_corpus.py), once over traces built event-by-event in-test for
 * the dangling-edge window semantics, and once end-to-end over
 * traces recorded from the synthetic apps with src/faults injections
 * -- the seeded double free, UAF write and leak must surface under
 * their exact rule ids, and fault-free recordings must audit with
 * zero flow findings.  A truncation/corruption fuzz pass asserts the
 * analyzer never crashes on damaged input.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diag_lint.hh"
#include "analysis/flow_lint.hh"
#include "apps/app.hh"
#include "diag/flow_incident.hh"
#include "runtime/events.hh"
#include "runtime/process.hh"
#include "trace/trace_writer.hh"

namespace heapmd
{

namespace
{

using analysis::FlowAnalysis;
using analysis::FlowFinding;
using analysis::Report;
using analysis::Severity;

std::string
corpusPath(const std::string &name)
{
    return std::string(HEAPMD_TEST_DATA_DIR) + "/" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

FlowAnalysis
flowOf(const std::string &name)
{
    return analysis::analyzeTraceFlow(slurp(corpusPath(name)));
}

/** First finding matching @p rule, or nullptr. */
const FlowFinding *
findRule(const FlowAnalysis &analysis, const std::string &rule)
{
    for (const FlowFinding &f : analysis.findings)
        if (f.rule == rule)
            return &f;
    return nullptr;
}

// --- In-test trace construction (mirrors gen_corpus.py) -------------

std::string
vbytes(std::uint64_t value)
{
    std::string out;
    while (value >= 0x80) {
        out.push_back(static_cast<char>((value & 0x7F) | 0x80));
        value >>= 7;
    }
    out.push_back(static_cast<char>(value));
    return out;
}

std::string
ev(EventKind kind, std::initializer_list<std::uint64_t> fields)
{
    std::string out(1, static_cast<char>(kind));
    for (std::uint64_t field : fields)
        out += vbytes(field);
    return out;
}

std::string
traceHeader()
{
    return std::string("HMDT") + std::string("\x01\x00\x00\x00", 4);
}

std::string
traceFooter()
{
    return std::string(1, '\xFF') + vbytes(0);
}

/**
 * The dangling-edge stage: object B holds a pointer to object A, A
 * is freed, and a fresh allocation recycles A's extent (tainting B's
 * slot).  The @p epilogue decides whether the rule fires.
 */
std::string
danglingStage(const std::string &epilogue)
{
    return traceHeader() + ev(EventKind::Alloc, {0x1000, 32}) // A
           + ev(EventKind::Alloc, {0x2000, 32})               // B
           + ev(EventKind::Write, {0x2000, 0x1000}) // slot B+0 -> A
           + ev(EventKind::Free, {0x1000})
           + ev(EventKind::Alloc, {0x1000, 32}) // recycle A
           + epilogue + ev(EventKind::Free, {0x1000}) +
           ev(EventKind::Free, {0x2000}) + traceFooter();
}

/** Record one synthetic-app run as an in-memory trace. */
std::string
recordApp(const std::string &app_name, const char *fault)
{
    ProcessConfig pcfg;
    pcfg.metricFrequency = 300;
    Process process(pcfg);
    std::ostringstream out;
    TraceWriter writer(out, process.registry());
    process.addEventObserver(&writer);
    auto app = makeApp(app_name);
    AppConfig cfg;
    cfg.inputSeed = 3;
    cfg.scale = 0.3;
    if (fault != nullptr)
        cfg.faults.enable(faultKindFromName(fault), 1.0);
    app->run(process, cfg);
    writer.finish();
    return out.str();
}

// --- Rule catalog over the seeded corpus ----------------------------

TEST(FlowCorpus, CleanTraceIsSilent)
{
    const FlowAnalysis a = flowOf("clean.trace");
    EXPECT_TRUE(a.findings.empty());
    EXPECT_TRUE(a.stats.sawFooter);
    EXPECT_EQ(a.stats.events, 10u);
    EXPECT_EQ(a.stats.liveAtExit, 0u);
}

TEST(FlowCorpus, EveryRuleHasASeededCase)
{
    const struct
    {
        const char *file;
        const char *rule;
    } kCases[] = {
        {"flow_double_free.trace", "flow.double_free"},
        {"free_before_alloc.trace", "flow.free_unallocated"},
        {"flow_size_mismatch.trace", "flow.size_mismatch"},
        {"flow_negative_size.trace", "flow.negative_size"},
        {"write_after_free.trace", "flow.write_freed"},
        {"flow_write_unmapped.trace", "flow.write_unmapped"},
        {"alloc_overlap.trace", "flow.overlap_alloc"},
        {"flow_dangling_reuse.trace", "flow.dangling_edge"},
        {"flow_leak_at_exit.trace", "flow.leak_at_exit"},
    };
    for (const auto &c : kCases) {
        const FlowAnalysis a = flowOf(c.file);
        const FlowFinding *f = findRule(a, c.rule);
        ASSERT_NE(f, nullptr) << c.file << " missing " << c.rule;
        EXPECT_EQ(f->severity, Severity::Error) << c.file;
    }
}

TEST(FlowCorpus, DoubleFreeCarriesProvenance)
{
    const FlowAnalysis a = flowOf("flow_double_free.trace");
    ASSERT_EQ(a.findings.size(), 1u);
    const FlowFinding &f = a.findings[0];
    EXPECT_EQ(f.base, 0x1000u);
    EXPECT_EQ(f.size, 64u);
    EXPECT_EQ(f.lifetimeEvents, 1u);
    EXPECT_TRUE(f.allocSite.known);
    EXPECT_TRUE(f.freeSite.known);
    // Both sites resolve through the footer's function table.
    EXPECT_NE(f.message.find("allocated at"), std::string::npos);
    EXPECT_NE(f.message.find("in main"), std::string::npos);
}

TEST(FlowCorpus, SizeMismatchNamesInteriorOffset)
{
    const FlowAnalysis a = flowOf("flow_size_mismatch.trace");
    const FlowFinding *f = findRule(a, "flow.size_mismatch");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->addr, 0x1010u);
    EXPECT_EQ(f->base, 0x1000u);
    EXPECT_NE(f->message.find("interior pointer"),
              std::string::npos);
    EXPECT_NE(f->message.find("offset 16"), std::string::npos);
}

TEST(FlowCorpus, NegativeSizeIsTheOnlyFinding)
{
    // The bogus allocation must not enter the shadow heap: no extent,
    // so no follow-on leak at the footer.
    const FlowAnalysis a = flowOf("flow_negative_size.trace");
    ASSERT_EQ(a.findings.size(), 1u);
    EXPECT_EQ(a.findings[0].rule, "flow.negative_size");
    EXPECT_EQ(a.stats.liveAtExit, 0u);
}

TEST(FlowCorpus, WriteFreedNamesTheSitePair)
{
    const FlowAnalysis a = flowOf("write_after_free.trace");
    const FlowFinding *f = findRule(a, "flow.write_freed");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->addr, 0x1008u);
    EXPECT_EQ(f->base, 0x1000u);
    EXPECT_TRUE(f->allocSite.known);
    EXPECT_TRUE(f->freeSite.known);
    EXPECT_NE(f->message.find("use-after-free write"),
              std::string::npos);
}

TEST(FlowCorpus, LeakGroupsObjectsBySite)
{
    const FlowAnalysis a = flowOf("flow_leak_at_exit.trace");
    const FlowFinding *f = findRule(a, "flow.leak_at_exit");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->objects, 1u);
    EXPECT_EQ(f->bytes, 64u);
    EXPECT_NE(f->message.find("in leaky"), std::string::npos);
    EXPECT_EQ(a.stats.leakedBytes, 64u);
}

TEST(FlowCorpus, TruncatedTraceSkipsLeakAnalysis)
{
    // One live object at the cut point, but no footer: liveness
    // proves nothing, so no leak finding (and nothing else either).
    const FlowAnalysis a = flowOf("missing_footer.trace");
    EXPECT_FALSE(a.stats.sawFooter);
    EXPECT_TRUE(a.findings.empty());
    EXPECT_EQ(a.stats.events, 1u);
}

// --- flow.dangling_edge window semantics ----------------------------

TEST(DanglingEdge, FiresOnLoadThenWriteIntoRecycledExtent)
{
    const FlowAnalysis a = flowOf("flow_dangling_reuse.trace");
    ASSERT_EQ(a.findings.size(), 1u);
    const FlowFinding &f = a.findings[0];
    EXPECT_EQ(f.rule, "flow.dangling_edge");
    EXPECT_EQ(f.severity, Severity::Error);
    EXPECT_EQ(f.addr, 0x1008u);
    EXPECT_EQ(f.base, 0x1000u);
    EXPECT_EQ(f.size, 32u);
    EXPECT_NE(f.message.find("through stale pointer"),
              std::string::npos);
    EXPECT_NE(f.message.find("recycled by allocation"),
              std::string::npos);
}

TEST(DanglingEdge, ReadThroughStalePointerStaysSilent)
{
    // Shared-payload borrows read through released pointers all the
    // time; only a write corrupts the recycling object.
    const std::string trace =
        danglingStage(ev(EventKind::Read, {0x2000}) +
                      ev(EventKind::Read, {0x1008}));
    EXPECT_TRUE(analysis::analyzeTraceFlow(trace).findings.empty());
}

TEST(DanglingEdge, DerefWindowIsOneMemoryEvent)
{
    // An unrelated access between the load and the write breaks the
    // loaded-pointer correlation: no finding.
    const std::string trace = danglingStage(
        ev(EventKind::Read, {0x2000}) +
        ev(EventKind::Read, {0x500}) +
        ev(EventKind::Write, {0x1008, 0}));
    EXPECT_TRUE(analysis::analyzeTraceFlow(trace).findings.empty());
}

TEST(DanglingEdge, OverwritingTheSlotRetiresTheTaint)
{
    // The program nulls the reference before using it again: the
    // slot no longer holds the stale address.
    const std::string trace = danglingStage(
        ev(EventKind::Write, {0x2000, 0}) +
        ev(EventKind::Read, {0x2000}) +
        ev(EventKind::Write, {0x1008, 0}));
    EXPECT_TRUE(analysis::analyzeTraceFlow(trace).findings.empty());
}

TEST(DanglingEdge, MerelyHoldingTheStaleAddressStaysSilent)
{
    // Registries keep keys to erased entries; never loading the slot
    // means never firing.
    const std::string trace = danglingStage("");
    EXPECT_TRUE(analysis::analyzeTraceFlow(trace).findings.empty());
}

// --- Capture-provenance severity matrix -----------------------------

TEST(CaptureMatrix, AddressReuseIsLegal)
{
    // The shim misses frees, so a capture trace reusing an address
    // must not fire flow.overlap_alloc -- or anything else.
    const FlowAnalysis a = flowOf("capture_addr_reuse.trace");
    EXPECT_TRUE(a.stats.captureProvenance);
    EXPECT_TRUE(a.findings.empty());
}

TEST(CaptureMatrix, WriteFreedDowngradesToWarning)
{
    const FlowAnalysis a = flowOf("capture_write_freed.trace");
    const FlowFinding *f = findRule(a, "flow.write_freed");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->severity, Severity::Warning);

    Report report;
    analysis::lintTraceFlow(slurp(corpusPath(
                                "capture_write_freed.trace")),
                            report);
    EXPECT_TRUE(report.clean()); // warnings don't fail the audit
    EXPECT_EQ(report.warningCount(), 1u);
}

TEST(CaptureMatrix, LeakDowngradesToNote)
{
    const FlowAnalysis a = flowOf("capture_leak.trace");
    const FlowFinding *f = findRule(a, "flow.leak_at_exit");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->severity, Severity::Note);
}

// --- Damage tolerance -----------------------------------------------

TEST(FlowFuzz, TruncationAndCorruptionNeverCrash)
{
    const char *kSeeds[] = {
        "clean.trace",          "flow_dangling_reuse.trace",
        "capture_addr_reuse.trace", "write_after_free.trace",
        "flow_leak_at_exit.trace",
    };
    for (const char *name : kSeeds) {
        const std::string data = slurp(corpusPath(name));
        ASSERT_FALSE(data.empty()) << name;
        // Every prefix, as a kill mid-write would leave it.
        for (std::size_t len = 0; len <= data.size(); ++len)
            analysis::analyzeTraceFlow(data.substr(0, len));
        // Every single-byte corruption.
        for (std::size_t i = 0; i < data.size(); ++i) {
            std::string bent = data;
            bent[i] = static_cast<char>(bent[i] ^ 0xFF);
            analysis::analyzeTraceFlow(bent);
        }
    }

    // A real recorded trace, cut at ~256 points along its length.
    const std::string recorded = recordApp("gzip", nullptr);
    ASSERT_GT(recorded.size(), 512u);
    const std::size_t stride = recorded.size() / 256 + 1;
    for (std::size_t len = 0; len < recorded.size(); len += stride) {
        const FlowAnalysis a =
            analysis::analyzeTraceFlow(recorded.substr(0, len));
        EXPECT_LE(a.findings.size(), 4096u);
    }
    SUCCEED();
}

// --- End-to-end: fault injections surface under exact rule ids ------

TEST(FlowFaultE2E, SeededFaultsMapToTheirRules)
{
    // shared-state-free double-frees payloads both a hash table and
    // a list believe they own.
    const FlowAnalysis shared =
        analysis::analyzeTraceFlow(
            recordApp("Multimedia", "shared-state-free"));
    EXPECT_NE(findRule(shared, "flow.double_free"), nullptr);

    // circular-dangling-tail writes through a next pointer into a
    // freed, not-yet-reused tail node.
    const FlowAnalysis dangling =
        analysis::analyzeTraceFlow(
            recordApp("Multimedia", "circular-dangling-tail"));
    EXPECT_NE(findRule(dangling, "flow.write_freed"), nullptr);

    // small-leak drops objects on the floor.
    const FlowAnalysis leak =
        analysis::analyzeTraceFlow(recordApp("gzip", "small-leak"));
    EXPECT_NE(findRule(leak, "flow.leak_at_exit"), nullptr);
}

TEST(FlowFaultE2E, FaultFreeRecordingsAreSilent)
{
    EXPECT_TRUE(analysis::analyzeTraceFlow(
                    recordApp("Multimedia", nullptr))
                    .findings.empty());
    EXPECT_TRUE(analysis::analyzeTraceFlow(recordApp("gzip", nullptr))
                    .findings.empty());
}

// --- Flow incidents: export, round trip, diag lint ------------------

TEST(FlowIncidentTest, RoundTripsByteForByte)
{
    const FlowAnalysis a = flowOf("flow_double_free.trace");
    ASSERT_FALSE(a.findings.empty());
    const diag::FlowIncident incident = diag::makeFlowIncident(
        a, a.findings[0], "flow_double_free.trace");
    const std::string json = diag::flowIncidentToJson(incident);

    diag::FlowIncident loaded;
    std::string error;
    ASSERT_TRUE(diag::loadFlowIncident(json, loaded, &error))
        << error;
    EXPECT_EQ(diag::flowIncidentToJson(loaded), json);
    EXPECT_EQ(loaded.rule, "flow.double_free");
    EXPECT_EQ(loaded.severity, "error");
    EXPECT_EQ(loaded.base, 0x1000u);
    EXPECT_EQ(loaded.size, 64u);
    EXPECT_EQ(loaded.allocSite.name, "main");
    EXPECT_TRUE(loaded.freeSite.known);
}

TEST(FlowIncidentTest, BundleLintAcceptsFlowDocuments)
{
    const FlowAnalysis a = flowOf("flow_dangling_reuse.trace");
    ASSERT_FALSE(a.findings.empty());
    const std::string json = diag::flowIncidentToJson(
        diag::makeFlowIncident(a, a.findings[0], "t.trace"));
    Report report;
    analysis::lintBundleText(json, report);
    EXPECT_TRUE(report.clean()) << report.describe();
    EXPECT_EQ(report.warningCount(), 0u);
}

TEST(FlowIncidentTest, BundleLintCatchesDefects)
{
    const FlowAnalysis a = flowOf("write_after_free.trace");
    const FlowFinding *f = findRule(a, "flow.write_freed");
    ASSERT_NE(f, nullptr);
    const diag::FlowIncident good =
        diag::makeFlowIncident(a, *f, "t.trace");

    diag::FlowIncident bad_rule = good;
    bad_rule.rule = "flow.bogus";
    Report r1;
    analysis::lintBundleText(diag::flowIncidentToJson(bad_rule), r1);
    EXPECT_TRUE(r1.has("diag.bad-rule"));

    diag::FlowIncident bad_severity = good;
    bad_severity.severity = "fatal";
    Report r2;
    analysis::lintBundleText(diag::flowIncidentToJson(bad_severity),
                             r2);
    EXPECT_TRUE(r2.has("diag.bad-severity"));

    diag::FlowIncident outside = good;
    outside.addr = outside.base + outside.size + 8;
    Report r3;
    analysis::lintBundleText(diag::flowIncidentToJson(outside), r3);
    EXPECT_TRUE(r3.has("diag.addr-outside"));
}

} // namespace

} // namespace heapmd
