/**
 * @file
 * Property tests of the trace codec: arbitrary valid event streams
 * must round-trip exactly, replay must reproduce logger state
 * bit-for-bit, and corrupted streams must be rejected without
 * crashing.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "analysis/trace_lint.hh"
#include "runtime/address_space.hh"
#include "support/random.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_source.hh"
#include "trace/trace_writer.hh"

namespace heapmd
{

namespace
{

/** Generate a random-but-valid event stream. */
std::vector<Event>
randomEvents(std::uint64_t seed, std::size_t count)
{
    Rng rng(seed);
    AddressSpace space;
    std::vector<Addr> live;
    std::vector<Event> events;
    events.reserve(count);

    while (events.size() < count) {
        const std::uint64_t kind = rng.below(100);
        if (kind < 25 || live.empty()) {
            const std::uint64_t size = 8 + rng.below(300);
            const Addr addr = space.allocate(size);
            live.push_back(addr);
            events.push_back(Event::alloc(addr, size));
        } else if (kind < 35) {
            const std::size_t i = rng.below(live.size());
            events.push_back(Event::free(live[i]));
            space.release(live[i]);
            live[i] = live.back();
            live.pop_back();
        } else if (kind < 40) {
            const std::size_t i = rng.below(live.size());
            const std::uint64_t size = 8 + rng.below(600);
            const Addr new_addr = space.reallocate(live[i], size);
            events.push_back(
                Event::realloc(live[i], new_addr, size));
            live[i] = new_addr;
        } else if (kind < 70) {
            const Addr owner = live[rng.below(live.size())];
            const Addr target = live[rng.below(live.size())];
            events.push_back(
                Event::write(owner + 8 * rng.below(4), target));
        } else if (kind < 80) {
            events.push_back(
                Event::read(live[rng.below(live.size())]));
        } else if (kind < 90) {
            events.push_back(
                Event::fnEnter(static_cast<FnId>(rng.below(32))));
        } else {
            events.push_back(
                Event::fnExit(static_cast<FnId>(rng.below(32))));
        }
    }
    return events;
}

class TraceFuzzTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TraceFuzzTest, StreamRoundTripsExactly)
{
    const std::vector<Event> events =
        randomEvents(GetParam(), 2000);

    FunctionRegistry registry;
    for (int i = 0; i < 32; ++i)
        registry.intern("fn_" + std::to_string(i));

    std::stringstream ss;
    TraceWriter writer(ss, registry);
    Tick tick = 0;
    for (const Event &e : events)
        writer.onEvent(e, ++tick);
    writer.finish();

    TraceReader reader(ss);
    Event decoded;
    std::size_t i = 0;
    while (reader.next(decoded)) {
        ASSERT_LT(i, events.size());
        ASSERT_EQ(decoded, events[i]) << "event " << i;
        ++i;
    }
    EXPECT_EQ(i, events.size());
    EXPECT_FALSE(reader.malformed());
    EXPECT_EQ(reader.functionNames().size(), 32u);
}

TEST_P(TraceFuzzTest, ReplayReproducesLoggerStateExactly)
{
    const std::vector<Event> events =
        randomEvents(GetParam() * 7 + 1, 3000);

    ProcessConfig cfg;
    cfg.metricFrequency = 17;
    Process original(cfg);
    std::stringstream ss;
    TraceWriter writer(ss, original.registry());
    original.addEventObserver(&writer);
    for (const Event &e : events)
        original.onEvent(e);
    writer.finish();

    Process replayed(cfg);
    TraceReader reader(ss);
    replayTrace(reader, replayed);

    EXPECT_EQ(replayed.now(), original.now());
    EXPECT_EQ(replayed.fnEntries(), original.fnEntries());
    EXPECT_EQ(replayed.graph().vertexCount(),
              original.graph().vertexCount());
    EXPECT_EQ(replayed.graph().edgeCount(),
              original.graph().edgeCount());
    EXPECT_EQ(replayed.graph().stats().liveBytes,
              original.graph().stats().liveBytes);
    EXPECT_EQ(replayed.graph().stats().unknownFrees,
              original.graph().stats().unknownFrees);
    ASSERT_EQ(replayed.series().size(), original.series().size());
    for (std::size_t i = 0; i < replayed.series().size(); ++i) {
        for (MetricId id : kAllMetrics) {
            ASSERT_DOUBLE_EQ(replayed.series().at(i).value(id),
                             original.series().at(i).value(id));
        }
    }
    replayed.graph().checkConsistency();
}

TEST_P(TraceFuzzTest, TruncationNeverCrashes)
{
    const std::vector<Event> events = randomEvents(GetParam(), 300);
    FunctionRegistry registry;
    std::stringstream ss;
    TraceWriter writer(ss, registry);
    Tick tick = 0;
    for (const Event &e : events)
        writer.onEvent(e, ++tick);
    writer.finish();
    const std::string full = ss.str();

    Rng rng(GetParam() * 13 + 5);
    for (int trial = 0; trial < 20; ++trial) {
        // Cut somewhere after the header.
        const std::size_t cut = 8 + rng.below(full.size() - 8);
        const std::string bytes = full.substr(0, cut);
        std::stringstream truncated(bytes);
        TraceReader reader(truncated);
        Event e;
        std::size_t decoded = 0;
        while (reader.next(e))
            ++decoded;
        EXPECT_LE(decoded, events.size());
        // Either we hit a clean footer (cut landed after it) or the
        // stream is flagged malformed; both are acceptable, crashing
        // is not.

        // Whatever the reader rejects, the static linter must flag
        // too: a clean audit is a promise that replay will succeed.
        if (reader.malformed()) {
            EXPECT_FALSE(reader.error().empty());
            analysis::Report report;
            analysis::lintTrace(bytes, report);
            EXPECT_FALSE(report.clean())
                << "reader rejected a " << cut
                << "-byte prefix (" << reader.error()
                << ") but the linter found nothing";
        }
    }
}

TEST_P(TraceFuzzTest, DecodePathsAgreeOnArbitraryPrefixes)
{
    // The buffered stream decoder (at hostile chunk sizes) and the
    // single-chunk memory decoder must agree byte-for-byte on what
    // any prefix means: same events, same malformed flag, same error
    // string, same function table.
    const std::vector<Event> events = randomEvents(GetParam(), 400);
    FunctionRegistry registry;
    for (int i = 0; i < 8; ++i)
        registry.intern("fn_" + std::to_string(i));
    std::stringstream ss;
    TraceWriter writer(ss, registry);
    Tick tick = 0;
    for (const Event &e : events)
        writer.onEvent(e, ++tick);
    writer.finish();
    const std::string full = ss.str();

    Rng rng(GetParam() * 31 + 7);
    for (int trial = 0; trial < 15; ++trial) {
        const std::size_t cut =
            trial == 0 ? full.size()
                       : 8 + rng.below(full.size() - 8);
        const std::string bytes = full.substr(0, cut);

        trace::MemorySource memory(
            reinterpret_cast<const unsigned char *>(bytes.data()),
            bytes.size());
        TraceReader baseline(memory);
        std::uint64_t base_count = 0;
        Event e;
        while (baseline.next(e))
            ++base_count;

        for (std::size_t chunk : {1u, 7u, 64u}) {
            std::stringstream in(bytes);
            TraceReader reader(in, chunk);
            std::uint64_t count = 0;
            while (reader.next(e))
                ++count;
            ASSERT_EQ(count, base_count)
                << "cut " << cut << " chunk " << chunk;
            ASSERT_EQ(reader.malformed(), baseline.malformed())
                << "cut " << cut << " chunk " << chunk;
            ASSERT_EQ(reader.error(), baseline.error())
                << "cut " << cut << " chunk " << chunk;
            ASSERT_EQ(reader.functionNames(),
                      baseline.functionNames())
                << "cut " << cut << " chunk " << chunk;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

class AddressSpaceFuzzTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AddressSpaceFuzzTest, BlocksNeverOverlapAndReuseIsSound)
{
    Rng rng(GetParam());
    AddressSpace space;
    std::map<Addr, std::uint64_t> live; // addr -> class size

    for (int op = 0; op < 4000; ++op) {
        if (live.size() < 4 || rng.chance(0.55)) {
            const std::uint64_t size = 1 + rng.below(6000);
            const Addr addr = space.allocate(size);
            const std::uint64_t cls =
                AddressSpace::roundToClass(size);
            // No overlap with any live block.
            auto next = live.lower_bound(addr);
            if (next != live.end()) {
                ASSERT_LE(addr + cls, next->first);
            }
            if (next != live.begin()) {
                auto prev = std::prev(next);
                ASSERT_LE(prev->first + prev->second, addr);
            }
            ASSERT_EQ(addr % AddressSpace::kAlignment, 0u);
            live.emplace(addr, cls);
        } else {
            auto it = live.begin();
            std::advance(it, rng.below(live.size()));
            ASSERT_TRUE(space.release(it->first));
            ASSERT_FALSE(space.release(it->first)); // double free
            live.erase(it);
        }
        ASSERT_EQ(space.liveCount(), live.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AddressSpaceFuzzTest,
                         ::testing::Values(7, 14, 21, 28));

} // namespace

} // namespace heapmd
