/**
 * @file
 * Unit tests of the runtime substrate: address space, call stack,
 * and the execution-logger Process.
 */

#include <gtest/gtest.h>

#include "runtime/address_space.hh"
#include "runtime/call_stack.hh"
#include "runtime/process.hh"

namespace heapmd
{

namespace
{

TEST(AddressSpaceTest, AlignmentAndClasses)
{
    EXPECT_EQ(AddressSpace::roundToClass(0), 16u);
    EXPECT_EQ(AddressSpace::roundToClass(1), 16u);
    EXPECT_EQ(AddressSpace::roundToClass(16), 16u);
    EXPECT_EQ(AddressSpace::roundToClass(17), 32u);
    EXPECT_EQ(AddressSpace::roundToClass(256), 256u);
    EXPECT_EQ(AddressSpace::roundToClass(257), 320u);
    EXPECT_EQ(AddressSpace::roundToClass(4096), 4096u);
    EXPECT_EQ(AddressSpace::roundToClass(4097), 8192u);
}

TEST(AddressSpaceTest, AllocationsAreAlignedAndDisjoint)
{
    AddressSpace space;
    const Addr a = space.allocate(24);
    const Addr b = space.allocate(24);
    EXPECT_EQ(a % AddressSpace::kAlignment, 0u);
    EXPECT_EQ(b % AddressSpace::kAlignment, 0u);
    EXPECT_GE(b, a + 32); // 24 rounds to 32
    EXPECT_TRUE(space.isLive(a));
    EXPECT_EQ(space.blockSize(a), 32u);
    EXPECT_EQ(space.liveCount(), 2u);
}

TEST(AddressSpaceTest, FreeListReuseIsLifo)
{
    AddressSpace space;
    const Addr a = space.allocate(64);
    const Addr b = space.allocate(64);
    space.release(a);
    space.release(b);
    EXPECT_EQ(space.allocate(64), b); // LIFO
    EXPECT_EQ(space.allocate(64), a);
    EXPECT_EQ(space.stats().reusedBlocks, 2u);
}

TEST(AddressSpaceTest, DifferentClassesDoNotShareFreeLists)
{
    AddressSpace space;
    const Addr a = space.allocate(64);
    space.release(a);
    const Addr b = space.allocate(128);
    EXPECT_NE(b, a);
}

TEST(AddressSpaceTest, DoubleFreeRejected)
{
    AddressSpace space;
    const Addr a = space.allocate(16);
    EXPECT_TRUE(space.release(a));
    EXPECT_FALSE(space.release(a));
    EXPECT_EQ(space.stats().doubleFrees, 1u);
}

TEST(AddressSpaceTest, ReallocSameClassInPlace)
{
    AddressSpace space;
    const Addr a = space.allocate(20); // class 32
    EXPECT_EQ(space.reallocate(a, 30), a); // still class 32
    EXPECT_NE(space.reallocate(a, 200), a); // class change moves
}

TEST(AddressSpaceTest, ReallocNullAllocates)
{
    AddressSpace space;
    const Addr a = space.reallocate(kNullAddr, 64);
    EXPECT_TRUE(space.isLive(a));
}

TEST(AddressSpaceDeathTest, ReallocUnknownPanics)
{
    AddressSpace space;
    EXPECT_DEATH(space.reallocate(0xdeadbeef, 64), "unknown block");
}

TEST(FunctionRegistryTest, InternIsIdempotent)
{
    FunctionRegistry reg;
    const FnId a = reg.intern("foo");
    const FnId b = reg.intern("bar");
    EXPECT_NE(a, b);
    EXPECT_EQ(reg.intern("foo"), a);
    EXPECT_EQ(reg.name(a), "foo");
    EXPECT_EQ(reg.size(), 2u);
}

TEST(FunctionRegistryTest, UnknownIdHasPlaceholderName)
{
    FunctionRegistry reg;
    EXPECT_EQ(reg.name(42), "<fn#42>");
}

TEST(CallStackTest, PushPopBalance)
{
    CallStack stack;
    EXPECT_TRUE(stack.empty());
    EXPECT_EQ(stack.top(), kNoFunction);
    stack.push(1);
    stack.push(2);
    EXPECT_EQ(stack.top(), 2u);
    EXPECT_EQ(stack.depth(), 2u);
    stack.pop(2);
    EXPECT_EQ(stack.top(), 1u);
}

TEST(CallStackTest, UnbalancedPopUnwinds)
{
    CallStack stack;
    stack.push(1);
    stack.push(2);
    stack.push(3);
    stack.pop(1); // longjmp-style unwind past 3 and 2
    EXPECT_TRUE(stack.empty());
}

TEST(CallStackTest, PopOfAbsentFrameIgnored)
{
    CallStack stack;
    stack.push(1);
    stack.pop(99);
    EXPECT_EQ(stack.depth(), 1u);
}

TEST(CallStackTest, CaptureInnermostFirst)
{
    CallStack stack;
    stack.push(1);
    stack.push(2);
    stack.push(3);
    const std::vector<FnId> all = stack.capture();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0], 3u);
    EXPECT_EQ(all[2], 1u);
    const std::vector<FnId> top2 = stack.capture(2);
    ASSERT_EQ(top2.size(), 2u);
    EXPECT_EQ(top2[0], 3u);
    EXPECT_EQ(top2[1], 2u);
}

TEST(CallStackTest, FormatStack)
{
    FunctionRegistry reg;
    const FnId a = reg.intern("inner");
    const FnId b = reg.intern("outer");
    EXPECT_EQ(formatStack({a, b}, reg), "inner <- outer");
    EXPECT_EQ(formatStack({}, reg), "<empty stack>");
}

TEST(ProcessTest, SamplesEveryFrqFnEntries)
{
    ProcessConfig cfg;
    cfg.metricFrequency = 10;
    Process process(cfg);
    const FnId fn = process.registry().intern("f");
    for (int i = 0; i < 35; ++i) {
        process.onFnEnter(fn);
        process.onFnExit(fn);
    }
    EXPECT_EQ(process.fnEntries(), 35u);
    EXPECT_EQ(process.series().size(), 3u); // at 10, 20, 30
}

TEST(ProcessTest, SampleReflectsGraphState)
{
    ProcessConfig cfg;
    cfg.metricFrequency = 1;
    Process process(cfg);
    process.onAlloc(0x1000, 64);
    process.onAlloc(0x2000, 64);
    process.onWrite(0x1000, 0x2000);
    process.onFnEnter(0);
    const MetricSample &s = process.series().samples().back();
    EXPECT_EQ(s.vertexCount, 2u);
    EXPECT_EQ(s.edgeCount, 1u);
    EXPECT_DOUBLE_EQ(s.value(MetricId::Roots), 50.0);
}

TEST(ProcessTest, ForceSample)
{
    Process process;
    process.onAlloc(0x1000, 64);
    const MetricSample &s = process.forceSample();
    EXPECT_EQ(s.vertexCount, 1u);
    EXPECT_EQ(process.series().size(), 1u);
}

TEST(ProcessTest, AllocSiteIsTopOfStack)
{
    Process process;
    const FnId fn = process.registry().intern("allocator");
    process.onFnEnter(fn);
    process.onAlloc(0x1000, 64);
    process.onFnExit(fn);
    const ObjectRecord *rec = process.graph().objectAt(0x1000);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(process.graph().provenanceOf(*rec).allocSite, fn);
}

TEST(ProcessTest, TickAdvancesPerEvent)
{
    Process process;
    EXPECT_EQ(process.now(), 0u);
    process.onAlloc(0x1000, 8);
    process.onRead(0x1000);
    process.onFree(0x1000);
    EXPECT_EQ(process.now(), 3u);
}

TEST(ProcessTest, ExtendedSamplingCadence)
{
    ProcessConfig cfg;
    cfg.metricFrequency = 5;
    cfg.extendedEvery = 2;
    Process process(cfg);
    const FnId fn = process.registry().intern("f");
    for (int i = 0; i < 50; ++i)
        process.onFnEnter(fn);
    EXPECT_EQ(process.series().size(), 10u);
    EXPECT_EQ(process.extendedSeries().size(), 5u);
}

class RecordingObserver : public EventObserver
{
  public:
    void
    onEvent(const Event &event, Tick tick) override
    {
        kinds.push_back(event.kind);
        ticks.push_back(tick);
    }

    std::vector<EventKind> kinds;
    std::vector<Tick> ticks;
};

TEST(ProcessTest, EventObserverSeesEverythingInOrder)
{
    Process process;
    RecordingObserver observer;
    process.addEventObserver(&observer);
    process.onAlloc(0x1000, 8);
    process.onWrite(0x1000, 0);
    process.onFree(0x1000);
    ASSERT_EQ(observer.kinds.size(), 3u);
    EXPECT_EQ(observer.kinds[0], EventKind::Alloc);
    EXPECT_EQ(observer.kinds[1], EventKind::Write);
    EXPECT_EQ(observer.kinds[2], EventKind::Free);
    EXPECT_EQ(observer.ticks[0], 1u);
    EXPECT_EQ(observer.ticks[2], 3u);
}

class CountingSampleObserver : public SampleObserver
{
  public:
    void
    onSample(const MetricSample &sample,
             const Process &process) override
    {
        (void)process;
        ++count;
        lastVertexCount = sample.vertexCount;
    }

    int count = 0;
    std::uint64_t lastVertexCount = 0;
};

TEST(ProcessTest, SampleObserverNotified)
{
    ProcessConfig cfg;
    cfg.metricFrequency = 2;
    Process process(cfg);
    CountingSampleObserver observer;
    process.addSampleObserver(&observer);
    process.onAlloc(0x1000, 8);
    const FnId fn = 0;
    process.onFnEnter(fn);
    process.onFnEnter(fn);
    EXPECT_EQ(observer.count, 1);
    EXPECT_EQ(observer.lastVertexCount, 1u);
}

TEST(ProcessTest, DisabledInstrumentationSkipsGraph)
{
    ProcessConfig cfg;
    cfg.instrumentationEnabled = false;
    Process process(cfg);
    process.onAlloc(0x1000, 8);
    process.onWrite(0x1000, 0x2000);
    process.onFnEnter(0);
    EXPECT_EQ(process.graph().vertexCount(), 0u);
    EXPECT_EQ(process.fnEntries(), 1u); // run length still tracked
    EXPECT_TRUE(process.series().empty());
}

TEST(ProcessDeathTest, ZeroFrequencyFatal)
{
    ProcessConfig cfg;
    cfg.metricFrequency = 0;
    EXPECT_DEATH(Process process(cfg), "metricFrequency");
}

TEST(ProcessDeathTest, NullObserverPanics)
{
    Process process;
    EXPECT_DEATH(process.addEventObserver(nullptr), "null");
    EXPECT_DEATH(process.addSampleObserver(nullptr), "null");
}

} // namespace

} // namespace heapmd
