/**
 * @file
 * Unit tests of the ExecutionChecker post-run analyses: startup/
 * shutdown report filtering, persistent violations, poorly-disguised
 * and pathological bugs.
 */

#include <gtest/gtest.h>

#include "detector/execution_checker.hh"
#include "support/random.hh"

namespace heapmd
{

namespace
{

HeapModel
modelWith(MetricId id, double min, double max)
{
    HeapModel model;
    HeapModel::Entry e;
    e.id = id;
    e.minValue = min;
    e.maxValue = max;
    model.addEntry(e);
    return model;
}

MetricSeries
seriesOf(MetricId id, const std::vector<double> &values)
{
    MetricSeries series;
    for (std::size_t i = 0; i < values.size(); ++i) {
        MetricSample s;
        s.pointIndex = i;
        s.tick = 100 * i;
        s.vertexCount = 1000;
        s.values[metricIndex(id)] = values[i];
        series.push(s);
    }
    return series;
}

/** Run a series through attach-less checking (post-run only). */
CheckResult
checkSeries(const HeapModel &model, const MetricSeries &series,
            CheckerConfig cfg = {})
{
    ExecutionChecker checker(model, cfg);
    return checker.finalize(series, series.size() * 100);
}

TEST(CheckerTest, CleanStableSeriesHasNoReports)
{
    const HeapModel model = modelWith(MetricId::Leaves, 20.0, 30.0);
    const MetricSeries series =
        seriesOf(MetricId::Leaves, std::vector<double>(60, 25.0));
    const CheckResult result = checkSeries(model, series);
    EXPECT_FALSE(result.anomalous());
}

TEST(CheckerTest, PersistentViolationDetected)
{
    // Value sits at 60 the whole run against range [20, 30]: the
    // online crossing happened at sample 0 (startup window), but the
    // persistent-violation check reports it.
    const HeapModel model = modelWith(MetricId::Leaves, 20.0, 30.0);
    const MetricSeries series =
        seriesOf(MetricId::Leaves, std::vector<double>(60, 60.0));
    const CheckResult result = checkSeries(model, series);
    ASSERT_EQ(result.reports.size(), 1u);
    EXPECT_EQ(result.reports[0].klass, BugClass::HeapAnomaly);
    EXPECT_EQ(result.reports[0].direction,
              AnomalyDirection::AboveMax);
    EXPECT_DOUBLE_EQ(result.reports[0].observedValue, 60.0);
}

TEST(CheckerTest, PersistentViolationBelow)
{
    const HeapModel model = modelWith(MetricId::Indeg1, 40.0, 50.0);
    const MetricSeries series =
        seriesOf(MetricId::Indeg1, std::vector<double>(60, 10.0));
    const CheckResult result = checkSeries(model, series);
    ASSERT_EQ(result.reports.size(), 1u);
    EXPECT_EQ(result.reports[0].direction,
              AnomalyDirection::BelowMin);
}

TEST(CheckerTest, BriefExcursionNotPersistent)
{
    // Out of range for only 20% of the run: below the 50% persistence
    // bar (and not an online report here since no detector attached).
    const HeapModel model = modelWith(MetricId::Leaves, 20.0, 30.0);
    std::vector<double> values(50, 25.0);
    for (int i = 20; i < 30; ++i)
        values[i] = 60.0;
    const CheckResult result =
        checkSeries(model, seriesOf(MetricId::Leaves, values));
    EXPECT_FALSE(result.anomalous());
}

TEST(CheckerTest, PoorlyDisguisedPinnedAtMinimum)
{
    // Stable and glued to the calibrated minimum (the oct-DAG
    // signature): reported as poorly disguised.
    const HeapModel model = modelWith(MetricId::Indeg1, 40.0, 60.0);
    const MetricSeries series =
        seriesOf(MetricId::Indeg1, std::vector<double>(60, 40.2));
    const CheckResult result = checkSeries(model, series);
    ASSERT_EQ(result.reports.size(), 1u);
    EXPECT_EQ(result.reports[0].klass, BugClass::PoorlyDisguised);
    EXPECT_EQ(result.reports[0].direction,
              AnomalyDirection::BelowMin);
    EXPECT_EQ(result.countOf(BugClass::PoorlyDisguised), 1u);
}

TEST(CheckerTest, PoorlyDisguisedPinnedAtMaximum)
{
    const HeapModel model = modelWith(MetricId::Indeg1, 40.0, 60.0);
    const MetricSeries series =
        seriesOf(MetricId::Indeg1, std::vector<double>(60, 59.9));
    const CheckResult result = checkSeries(model, series);
    ASSERT_EQ(result.reports.size(), 1u);
    EXPECT_EQ(result.reports[0].klass, BugClass::PoorlyDisguised);
    EXPECT_EQ(result.reports[0].direction,
              AnomalyDirection::AboveMax);
}

TEST(CheckerTest, MidRangeStableIsNotPoorlyDisguised)
{
    const HeapModel model = modelWith(MetricId::Indeg1, 40.0, 60.0);
    const MetricSeries series =
        seriesOf(MetricId::Indeg1, std::vector<double>(60, 50.0));
    EXPECT_FALSE(checkSeries(model, series).anomalous());
}

TEST(CheckerTest, PoorlyDisguisedCanBeDisabled)
{
    CheckerConfig cfg;
    cfg.reportPoorlyDisguised = false;
    const HeapModel model = modelWith(MetricId::Indeg1, 40.0, 60.0);
    const MetricSeries series =
        seriesOf(MetricId::Indeg1, std::vector<double>(60, 40.2));
    EXPECT_FALSE(checkSeries(model, series, cfg).anomalous());
}

TEST(CheckerTest, PathologicalStability)
{
    // Indeg2 was never stable in training; in this run it is flat.
    HeapModel model = modelWith(MetricId::Leaves, 20.0, 30.0);
    model.unstableMetrics.push_back(MetricId::Indeg2);

    MetricSeries series;
    Rng rng(3);
    for (int i = 0; i < 60; ++i) {
        MetricSample s;
        s.pointIndex = i;
        s.vertexCount = 1000;
        s.values[metricIndex(MetricId::Leaves)] = 25.0;
        s.values[metricIndex(MetricId::Indeg2)] = 33.0; // eerily flat
        series.push(s);
    }
    const CheckResult result = checkSeries(model, series);
    ASSERT_EQ(result.countOf(BugClass::Pathological), 1u);
}

TEST(CheckerTest, PathologicalNotReportedWhenStillUnstable)
{
    HeapModel model = modelWith(MetricId::Leaves, 20.0, 30.0);
    model.unstableMetrics.push_back(MetricId::Indeg2);
    MetricSeries series;
    Rng rng(3);
    double wild = 30.0;
    for (int i = 0; i < 60; ++i) {
        MetricSample s;
        s.pointIndex = i;
        s.vertexCount = 1000;
        s.values[metricIndex(MetricId::Leaves)] = 25.0;
        if (i % 6 == 0)
            wild *= rng.chance(0.5) ? 1.7 : 0.6;
        s.values[metricIndex(MetricId::Indeg2)] = wild;
        series.push(s);
    }
    const CheckResult result = checkSeries(model, series);
    EXPECT_EQ(result.countOf(BugClass::Pathological), 0u);
}

TEST(CheckerTest, PathologicalCanBeDisabled)
{
    CheckerConfig cfg;
    cfg.reportPathological = false;
    HeapModel model = modelWith(MetricId::Leaves, 20.0, 30.0);
    model.unstableMetrics.push_back(MetricId::Indeg2);
    const MetricSeries series =
        seriesOf(MetricId::Leaves, std::vector<double>(60, 25.0));
    // Indeg2 flat at 0 in this series... changeCount is 0, which the
    // check treats as non-evidence anyway; use a two-valued series.
    EXPECT_FALSE(checkSeries(model, series, cfg).anomalous());
}

TEST(CheckerTest, OnlineReportsInStartupWindowFiltered)
{
    // Attach to a real process; violate only during the first 10% of
    // samples, then stay clean: no report must survive.
    const HeapModel model = modelWith(MetricId::Roots, 30.0, 60.0);
    ProcessConfig pcfg;
    pcfg.metricFrequency = 1; // sample every fn entry
    Process process(pcfg);
    ExecutionChecker checker(model);
    checker.attach(process);

    // Startup: two isolated objects -> Roots = 100 (violating).
    process.onAlloc(0x10000, 512); // hub with 64 pointer slots
    process.onAlloc(0x20000, 64);
    process.onFnEnter(0);
    process.onFnExit(0);
    // Then connect half the heap so Roots ~= 50 (clean) for the rest.
    Addr next = 0x30000;
    for (int i = 0; i < 60; ++i) {
        process.onAlloc(next, 64);
        process.onWrite(0x10000 + 8 * i, next);
        next += 0x100;
        process.onAlloc(next, 64); // isolated root
        next += 0x100;
        process.onFnEnter(0);
        process.onFnExit(0);
    }
    const CheckResult result = checker.finalize(process);
    EXPECT_FALSE(result.anomalous());
}

TEST(CheckerTest, CountOf)
{
    CheckResult result;
    BugReport a;
    a.klass = BugClass::HeapAnomaly;
    BugReport b;
    b.klass = BugClass::PoorlyDisguised;
    result.reports = {a, b, a};
    EXPECT_EQ(result.countOf(BugClass::HeapAnomaly), 2u);
    EXPECT_EQ(result.countOf(BugClass::PoorlyDisguised), 1u);
    EXPECT_EQ(result.countOf(BugClass::Pathological), 0u);
    EXPECT_TRUE(result.anomalous());
}

} // namespace

} // namespace heapmd
