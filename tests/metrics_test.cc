/**
 * @file
 * Unit tests of metric identifiers, the metric engine, and series
 * trimming/fluctuation.
 */

#include <gtest/gtest.h>

#include "heapgraph/heap_graph.hh"
#include "metrics/metric_engine.hh"
#include "metrics/series.hh"

namespace heapmd
{

namespace
{

TEST(MetricIdTest, NamesRoundTrip)
{
    for (MetricId id : kAllMetrics)
        EXPECT_EQ(metricFromName(metricName(id)), id);
}

TEST(MetricIdTest, PaperNames)
{
    EXPECT_EQ(metricName(MetricId::Roots), "Root");
    EXPECT_EQ(metricName(MetricId::Leaves), "Leaves");
    EXPECT_EQ(metricName(MetricId::InEqOut), "In=Out");
    EXPECT_EQ(metricName(MetricId::Outdeg1), "Outdeg=1");
}

TEST(MetricIdDeathTest, UnknownNamePanics)
{
    EXPECT_DEATH(metricFromName("bogus"), "unknown metric");
}

TEST(MetricEngineTest, EmptyHeapAllZero)
{
    HeapGraph g;
    const MetricSample s = MetricEngine::sample(g, 5, 2);
    EXPECT_EQ(s.tick, 5u);
    EXPECT_EQ(s.pointIndex, 2u);
    EXPECT_EQ(s.vertexCount, 0u);
    for (MetricId id : kAllMetrics)
        EXPECT_EQ(s.value(id), 0.0);
}

TEST(MetricEngineTest, LinkedListPercentages)
{
    // 5-node singly linked list: head indeg 0, tail outdeg 0,
    // 3 interior nodes with in = out = 1.
    HeapGraph g;
    std::vector<Addr> nodes;
    for (int i = 0; i < 5; ++i) {
        const Addr addr = 0x1000 + 0x100 * i;
        g.allocate(addr, 32);
        nodes.push_back(addr);
    }
    for (int i = 0; i + 1 < 5; ++i)
        g.write(nodes[i] + 8, nodes[i + 1]);

    const MetricSample s = MetricEngine::sample(g, 0, 0);
    EXPECT_EQ(s.vertexCount, 5u);
    EXPECT_EQ(s.edgeCount, 4u);
    EXPECT_DOUBLE_EQ(s.value(MetricId::Roots), 20.0);
    EXPECT_DOUBLE_EQ(s.value(MetricId::Indeg1), 80.0);
    EXPECT_DOUBLE_EQ(s.value(MetricId::Indeg2), 0.0);
    EXPECT_DOUBLE_EQ(s.value(MetricId::Leaves), 20.0);
    EXPECT_DOUBLE_EQ(s.value(MetricId::Outdeg1), 80.0);
    EXPECT_DOUBLE_EQ(s.value(MetricId::Outdeg2), 0.0);
    EXPECT_DOUBLE_EQ(s.value(MetricId::InEqOut), 60.0);
}

TEST(MetricEngineTest, DoublyLinkedListPercentages)
{
    // 4-node doubly linked list: interior nodes in = out = 2.
    HeapGraph g;
    std::vector<Addr> nodes;
    for (int i = 0; i < 4; ++i) {
        const Addr addr = 0x1000 + 0x100 * i;
        g.allocate(addr, 32);
        nodes.push_back(addr);
    }
    for (int i = 0; i + 1 < 4; ++i) {
        g.write(nodes[i] + 8, nodes[i + 1]);  // next
        g.write(nodes[i + 1] + 16, nodes[i]); // prev
    }
    const MetricSample s = MetricEngine::sample(g, 0, 0);
    EXPECT_DOUBLE_EQ(s.value(MetricId::Indeg1), 50.0); // ends
    EXPECT_DOUBLE_EQ(s.value(MetricId::Indeg2), 50.0); // interior
    EXPECT_DOUBLE_EQ(s.value(MetricId::Outdeg2), 50.0);
    EXPECT_DOUBLE_EQ(s.value(MetricId::Roots), 0.0);
    EXPECT_DOUBLE_EQ(s.value(MetricId::InEqOut), 100.0);
}

TEST(MetricEngineTest, ExtendedSampleComponents)
{
    HeapGraph g;
    g.allocate(0x1000, 32);
    g.allocate(0x2000, 32);
    g.allocate(0x3000, 32);
    g.write(0x1000, 0x2000);
    const ExtendedSample s = MetricEngine::sampleExtended(g, 9, 4);
    EXPECT_EQ(s.tick, 9u);
    EXPECT_EQ(s.componentCount, 2u);
    EXPECT_EQ(s.largestComponent, 2u);
    EXPECT_EQ(s.sccCount, 3u);
}

MetricSample
sampleWith(double value, std::uint64_t point)
{
    MetricSample s;
    s.pointIndex = point;
    s.vertexCount = 100;
    for (MetricId id : kAllMetrics)
        s.values[metricIndex(id)] = value;
    return s;
}

TEST(MetricSeriesTest, PushAndValues)
{
    MetricSeries series;
    EXPECT_TRUE(series.empty());
    series.push(sampleWith(10.0, 0));
    series.push(sampleWith(20.0, 1));
    EXPECT_EQ(series.size(), 2u);
    const std::vector<double> vals = series.valuesOf(MetricId::Roots);
    ASSERT_EQ(vals.size(), 2u);
    EXPECT_DOUBLE_EQ(vals[0], 10.0);
    EXPECT_DOUBLE_EQ(vals[1], 20.0);
}

TEST(MetricSeriesDeathTest, AtOutOfRangePanics)
{
    MetricSeries series;
    EXPECT_DEATH(series.at(0), "out of range");
}

TEST(MetricSeriesTest, TrimmedRangeBasics)
{
    MetricSeries series;
    for (int i = 0; i < 100; ++i)
        series.push(sampleWith(1.0, i));
    const auto [first, last] = series.trimmedRange(0.10);
    EXPECT_EQ(first, 10u);
    EXPECT_EQ(last, 90u);
}

TEST(MetricSeriesTest, TrimmedRangeKeepsAtLeastTwo)
{
    MetricSeries series;
    for (int i = 0; i < 3; ++i)
        series.push(sampleWith(1.0, i));
    const auto [first, last] = series.trimmedRange(0.4);
    EXPECT_GE(last - first, 2u);
}

TEST(MetricSeriesTest, TrimmedRangeShortSeries)
{
    MetricSeries series;
    series.push(sampleWith(1.0, 0));
    const auto [first, last] = series.trimmedRange(0.10);
    EXPECT_EQ(first, 0u);
    EXPECT_EQ(last, 1u);
}

TEST(MetricSeriesDeathTest, BadTrimFractionPanics)
{
    MetricSeries series;
    series.push(sampleWith(1.0, 0));
    EXPECT_DEATH(series.trimmedRange(0.5), "trim fraction");
    EXPECT_DEATH(series.trimmedRange(-0.1), "trim fraction");
}

TEST(MetricSeriesTest, TrimmedValues)
{
    MetricSeries series;
    for (int i = 0; i < 10; ++i)
        series.push(sampleWith(static_cast<double>(i), i));
    const std::vector<double> vals =
        series.trimmedValuesOf(MetricId::Roots, 0.10);
    ASSERT_EQ(vals.size(), 8u);
    EXPECT_DOUBLE_EQ(vals.front(), 1.0);
    EXPECT_DOUBLE_EQ(vals.back(), 8.0);
}

TEST(FluctuationTest, PercentChanges)
{
    const std::vector<double> changes =
        fluctuationOf({100.0, 110.0, 99.0});
    ASSERT_EQ(changes.size(), 2u);
    EXPECT_NEAR(changes[0], 10.0, 1e-9);
    EXPECT_NEAR(changes[1], -10.0, 1e-9);
}

TEST(FluctuationTest, ZeroGuardSkipsZeroBase)
{
    const std::vector<double> changes =
        fluctuationOf({0.0, 50.0, 100.0});
    ASSERT_EQ(changes.size(), 1u); // the 0 -> 50 step is skipped
    EXPECT_NEAR(changes[0], 100.0, 1e-9);
}

TEST(FluctuationTest, ShortInputs)
{
    EXPECT_TRUE(fluctuationOf({}).empty());
    EXPECT_TRUE(fluctuationOf({5.0}).empty());
}

TEST(FluctuationTest, ConstantSeriesIsFlat)
{
    const std::vector<double> changes =
        fluctuationOf({7.0, 7.0, 7.0, 7.0});
    ASSERT_EQ(changes.size(), 3u);
    for (double c : changes)
        EXPECT_DOUBLE_EQ(c, 0.0);
}

} // namespace

} // namespace heapmd
