/**
 * @file
 * Workload binary run under the capture shim by capture_test.
 *
 * No heapmd dependencies: this is a stand-in for an arbitrary real
 * process.  The mode argument selects a workload:
 *
 *   basic  mixed allocator traffic through every interposed entry
 *          point, fully freed, clean exit
 *   leak   build a linked list, traverse it, exit without freeing
 *          (the shim's final scan must recover the chain as edges)
 *   storm  several threads hammering malloc/free/realloc
 *   exit   allocate, then _exit(2) -- no atexit, truncated trace
 *   fail   allocate briefly, exit 3
 *   fork   fork a child that allocates and exit(0)s -- the child's
 *          inherited atexit finalizer must not touch the parent's
 *          trace fd; the parent then finishes a basic workload
 *   linger allocate a live structure, print "ready", then hold it
 *          for N ms (argv[2], default 3000) -- the window in which
 *          `heapmd top` / the Prometheus exporter read the process's
 *          live stats segment.  argv[3] is the allocation step in ms
 *          (default 50); 0 holds fully idle, so two scrapes of the
 *          segment in the window must be byte-identical
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

namespace
{

struct Node
{
    Node *next;
    std::uint64_t payload;
};

/**
 * Build an @p count long singly-linked list.  The traversal checksum
 * is printed so the link stores are observable behavior the compiler
 * must keep.
 */
Node *
buildList(int count)
{
    Node *head = nullptr;
    for (int i = 0; i < count; ++i) {
        Node *node = static_cast<Node *>(std::malloc(sizeof(Node)));
        if (node == nullptr)
            std::abort();
        node->next = head;
        node->payload = static_cast<std::uint64_t>(i);
        head = node;
    }
    std::uint64_t sum = 0;
    for (const Node *it = head; it != nullptr; it = it->next)
        sum += it->payload;
    std::printf("checksum %llu\n",
                static_cast<unsigned long long>(sum));
    return head;
}

void
freeList(Node *head)
{
    while (head != nullptr) {
        Node *next = head->next;
        std::free(head);
        head = next;
    }
}

int
runBasic()
{
    Node *list = buildList(200);

    void *m = std::malloc(100);
    void *c = std::calloc(16, 8);
    void *r = std::realloc(nullptr, 64);
    r = std::realloc(r, 256); // likely moves
    void *a = ::aligned_alloc(64, 128);
    void *p = nullptr;
    if (::posix_memalign(&p, 32, 96) != 0)
        return 1;
    // Touch everything so none of it can be elided.
    std::memset(m, 1, 100);
    std::memset(c, 2, 128);
    std::memset(r, 3, 256);
    std::memset(a, 4, 128);
    std::memset(p, 5, 96);
    std::free(m);
    std::free(c);
    std::free(r);
    std::free(a);
    std::free(p);

    freeList(list);
    return 0;
}

int
runLeak()
{
    Node *list = buildList(128);
    (void)list; // deliberately leaked: the final scan must see it
    return 0;
}

int
runStorm()
{
    constexpr int kThreads = 4;
    constexpr int kIterations = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            std::uint64_t state = 0x9e3779b9u * (t + 1);
            void *held[8] = {};
            for (int i = 0; i < kIterations; ++i) {
                state = state * 6364136223846793005ull + 1442695040888963407ull;
                const std::size_t size = 16 + (state >> 33) % 240;
                const int slot = static_cast<int>(state % 8);
                if (held[slot] != nullptr && (state & 0x100) != 0) {
                    held[slot] = std::realloc(held[slot], size);
                } else {
                    std::free(held[slot]);
                    held[slot] = std::malloc(size);
                }
                if (held[slot] != nullptr)
                    std::memset(held[slot], i & 0xff, size);
            }
            for (void *ptr : held)
                std::free(ptr);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    return 0;
}

int
runExit()
{
    Node *list = buildList(32);
    (void)list;
    ::_exit(2); // skips atexit: the shim must leave a readable prefix
}

int
runFail()
{
    void *block = std::malloc(48);
    std::memset(block, 6, 48);
    std::free(block);
    return 3;
}

int
runLinger(int hold_ms, int step_ms)
{
    Node *list = buildList(300);
    std::printf("ready\n");
    std::fflush(stdout);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(hold_ms);
    if (step_ms <= 0) {
        // Fully idle hold: the shim publishes nothing, so two reads
        // of the stats segment in this window are byte-identical.
        std::this_thread::sleep_until(deadline);
    } else {
        // Keep allocating slowly so per-op publishes keep the
        // segment's heartbeat and gauges moving during the window.
        // Growing the live list (instead of a malloc/free pair the
        // optimizer may elide) guarantees every iteration reaches
        // the allocator.
        std::uint64_t grown = 0;
        while (std::chrono::steady_clock::now() < deadline) {
            Node *node =
                static_cast<Node *>(std::malloc(sizeof(Node)));
            if (node == nullptr)
                std::abort();
            node->next = list;
            node->payload = ++grown;
            list = node;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(step_ms));
        }
    }
    freeList(list);
    return 0;
}

int
runFork()
{
    // Allocate before forking so the shim's sink (and its atexit
    // finalizer registration) already exist in the parent and are
    // inherited by the child -- the case under test.
    void *warmup = std::malloc(128);
    std::memset(warmup, 8, 128);
    std::free(warmup);

    const pid_t pid = ::fork();
    if (pid < 0)
        return 1;
    if (pid == 0) {
        // Allocate in the child, then exit() -- NOT _exit() -- so the
        // inherited atexit finalizer runs.  It must go dark instead
        // of writing scans/footer into the fd shared with the parent.
        void *block = std::malloc(64);
        std::memset(block, 7, 64);
        std::free(block);
        std::exit(0);
    }
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0)
        return 1;
    return runBasic();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string mode = argc > 1 ? argv[1] : "basic";
    if (mode == "basic")
        return runBasic();
    if (mode == "leak")
        return runLeak();
    if (mode == "storm")
        return runStorm();
    if (mode == "exit")
        return runExit();
    if (mode == "fail")
        return runFail();
    if (mode == "fork")
        return runFork();
    if (mode == "linger")
        return runLinger(argc > 2 ? std::atoi(argv[2]) : 3000,
                         argc > 3 ? std::atoi(argv[3]) : 50);
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 64;
}
