/**
 * @file
 * Workload binary run under the capture shim by capture_test.
 *
 * No heapmd dependencies: this is a stand-in for an arbitrary real
 * process.  The mode argument selects a workload:
 *
 *   basic  mixed allocator traffic through every interposed entry
 *          point, fully freed, clean exit
 *   leak   build a linked list, traverse it, exit without freeing
 *          (the shim's final scan must recover the chain as edges)
 *   storm  several threads hammering malloc/free/realloc
 *   exit   allocate, then _exit(2) -- no atexit, truncated trace
 *   fail   allocate briefly, exit 3
 *   fork   fork a child that allocates and exit(0)s -- the child's
 *          inherited atexit finalizer must not touch the parent's
 *          trace fd; the parent then finishes a basic workload
 *   linger allocate a live structure, print "ready", then hold it
 *          for N ms (argv[2], default 3000) -- the window in which
 *          `heapmd top` / the Prometheus exporter read the process's
 *          live stats segment.  argv[3] is the allocation step in ms
 *          (default 50); 0 holds fully idle, so two scrapes of the
 *          segment in the window must be byte-identical
 *   steady churn a pool of fixed-shape linked lists for N ms
 *          (argv[2], default 2000): the heap-graph's degree ratios
 *          stay constant, so every metric trains stable -- the
 *          training workload (and clean window) for `monitor`
 *   drift  run the steady churn for argv[2] ms (default 1000), then
 *          allocate a mass of pointer-free singletons and keep
 *          churning for argv[3] more ms (default 2500): %roots and
 *          %leaves jump far above the steady ranges *while the
 *          process is still running* -- the seeded fault for the
 *          live-monitor gate
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

namespace
{

struct Node
{
    Node *next;
    std::uint64_t payload;
};

/**
 * Build an @p count long singly-linked list.  The traversal checksum
 * is printed so the link stores are observable behavior the compiler
 * must keep.
 */
Node *
buildList(int count)
{
    Node *head = nullptr;
    for (int i = 0; i < count; ++i) {
        Node *node = static_cast<Node *>(std::malloc(sizeof(Node)));
        if (node == nullptr)
            std::abort();
        node->next = head;
        node->payload = static_cast<std::uint64_t>(i);
        head = node;
    }
    std::uint64_t sum = 0;
    for (const Node *it = head; it != nullptr; it = it->next)
        sum += it->payload;
    std::printf("checksum %llu\n",
                static_cast<unsigned long long>(sum));
    return head;
}

void
freeList(Node *head)
{
    while (head != nullptr) {
        Node *next = head->next;
        std::free(head);
        head = next;
    }
}

int
runBasic()
{
    Node *list = buildList(200);

    void *m = std::malloc(100);
    void *c = std::calloc(16, 8);
    void *r = std::realloc(nullptr, 64);
    r = std::realloc(r, 256); // likely moves
    void *a = ::aligned_alloc(64, 128);
    void *p = nullptr;
    if (::posix_memalign(&p, 32, 96) != 0)
        return 1;
    // Touch everything so none of it can be elided.
    std::memset(m, 1, 100);
    std::memset(c, 2, 128);
    std::memset(r, 3, 256);
    std::memset(a, 4, 128);
    std::memset(p, 5, 96);
    std::free(m);
    std::free(c);
    std::free(r);
    std::free(a);
    std::free(p);

    freeList(list);
    return 0;
}

int
runLeak()
{
    Node *list = buildList(128);
    (void)list; // deliberately leaked: the final scan must see it
    return 0;
}

int
runStorm()
{
    constexpr int kThreads = 4;
    constexpr int kIterations = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            std::uint64_t state = 0x9e3779b9u * (t + 1);
            void *held[8] = {};
            for (int i = 0; i < kIterations; ++i) {
                state = state * 6364136223846793005ull + 1442695040888963407ull;
                const std::size_t size = 16 + (state >> 33) % 240;
                const int slot = static_cast<int>(state % 8);
                if (held[slot] != nullptr && (state & 0x100) != 0) {
                    held[slot] = std::realloc(held[slot], size);
                } else {
                    std::free(held[slot]);
                    held[slot] = std::malloc(size);
                }
                if (held[slot] != nullptr)
                    std::memset(held[slot], i & 0xff, size);
            }
            for (void *ptr : held)
                std::free(ptr);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    return 0;
}

int
runExit()
{
    Node *list = buildList(32);
    (void)list;
    ::_exit(2); // skips atexit: the shim must leave a readable prefix
}

int
runFail()
{
    void *block = std::malloc(48);
    std::memset(block, 6, 48);
    std::free(block);
    return 3;
}

int
runLinger(int hold_ms, int step_ms)
{
    Node *list = buildList(300);
    std::printf("ready\n");
    std::fflush(stdout);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(hold_ms);
    if (step_ms <= 0) {
        // Fully idle hold: the shim publishes nothing, so two reads
        // of the stats segment in this window are byte-identical.
        std::this_thread::sleep_until(deadline);
    } else {
        // Keep allocating slowly so per-op publishes keep the
        // segment's heartbeat and gauges moving during the window.
        // Growing the live list (instead of a malloc/free pair the
        // optimizer may elide) guarantees every iteration reaches
        // the allocator.
        std::uint64_t grown = 0;
        while (std::chrono::steady_clock::now() < deadline) {
            Node *node =
                static_cast<Node *>(std::malloc(sizeof(Node)));
            if (node == nullptr)
                std::abort();
            node->next = list;
            node->payload = ++grown;
            list = node;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(step_ms));
        }
    }
    freeList(list);
    return 0;
}

/** buildList without the per-call banner (hot-loop variant). */
Node *
buildListQuiet(int count, std::uint64_t *sum)
{
    Node *head = nullptr;
    for (int i = 0; i < count; ++i) {
        Node *node = static_cast<Node *>(std::malloc(sizeof(Node)));
        if (node == nullptr)
            std::abort();
        node->next = head;
        node->payload = static_cast<std::uint64_t>(i);
        head = node;
    }
    for (const Node *it = head; it != nullptr; it = it->next)
        *sum += it->payload;
    return head;
}

constexpr int kPoolLists = 32;
constexpr int kPoolLen = 4;

/**
 * One churn round: rebuild a random pool slot with the same shape.
 * The graph's degree ratios are invariant under this, which is what
 * makes the steady workload train every metric stable.
 */
std::uint64_t
churnPool(Node **pool, std::uint64_t state, std::uint64_t *sum)
{
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const int slot = static_cast<int>((state >> 33) % kPoolLists);
    freeList(pool[slot]);
    pool[slot] = buildListQuiet(kPoolLen, sum);
    return state;
}

int
runSteady(int run_ms)
{
    Node *pool[kPoolLists] = {};
    std::uint64_t sum = 0;
    for (Node *&list : pool)
        list = buildListQuiet(kPoolLen, &sum);

    std::uint64_t state = 0x2545f4914f6cdd1dull;
    std::uint64_t rounds = 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(run_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        state = churnPool(pool, state, &sum);
        // Pace the churn so the run spans its wall-clock window with
        // a steady allocation rate instead of one opening burst.
        if ((++rounds & 0x1f) == 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
    }
    for (Node *list : pool)
        freeList(list);
    std::printf("steady rounds %llu checksum %llu\n",
                static_cast<unsigned long long>(rounds),
                static_cast<unsigned long long>(sum));
    return 0;
}

int
runDrift(int steady_ms, int hold_ms)
{
    Node *pool[kPoolLists] = {};
    std::uint64_t sum = 0;
    for (Node *&list : pool)
        list = buildListQuiet(kPoolLen, &sum);

    std::uint64_t state = 0x2545f4914f6cdd1dull;
    std::uint64_t rounds = 0;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(steady_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        state = churnPool(pool, state, &sum);
        if ((++rounds & 0x1f) == 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
    }

    // The fault: a mass of pointer-free singletons.  Every one is
    // simultaneously a root and a leaf, so %roots and %leaves jump
    // from the pool's steady ~25% toward 100%.
    std::vector<void *> singles;
    singles.reserve(4000);
    for (int i = 0; i < 4000; ++i) {
        void *block = std::malloc(24);
        if (block == nullptr)
            std::abort();
        std::memset(block, i & 0xff, 24);
        singles.push_back(block);
    }
    std::printf("drifted\n");
    std::fflush(stdout);

    // Keep the process alive and churning so the shim's scans keep
    // publishing the skewed graph -- the monitor must fire while
    // this loop is still running.
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(hold_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        state = churnPool(pool, state, &sum);
        if ((++rounds & 0x1f) == 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
    }

    for (void *block : singles)
        std::free(block);
    for (Node *list : pool)
        freeList(list);
    std::printf("drift rounds %llu checksum %llu\n",
                static_cast<unsigned long long>(rounds),
                static_cast<unsigned long long>(sum));
    return 0;
}

int
runFork()
{
    // Allocate before forking so the shim's sink (and its atexit
    // finalizer registration) already exist in the parent and are
    // inherited by the child -- the case under test.
    void *warmup = std::malloc(128);
    std::memset(warmup, 8, 128);
    std::free(warmup);

    const pid_t pid = ::fork();
    if (pid < 0)
        return 1;
    if (pid == 0) {
        // Allocate in the child, then exit() -- NOT _exit() -- so the
        // inherited atexit finalizer runs.  It must go dark instead
        // of writing scans/footer into the fd shared with the parent.
        void *block = std::malloc(64);
        std::memset(block, 7, 64);
        std::free(block);
        std::exit(0);
    }
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0)
        return 1;
    return runBasic();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string mode = argc > 1 ? argv[1] : "basic";
    if (mode == "basic")
        return runBasic();
    if (mode == "leak")
        return runLeak();
    if (mode == "storm")
        return runStorm();
    if (mode == "exit")
        return runExit();
    if (mode == "fail")
        return runFail();
    if (mode == "fork")
        return runFork();
    if (mode == "linger")
        return runLinger(argc > 2 ? std::atoi(argv[2]) : 3000,
                         argc > 3 ? std::atoi(argv[3]) : 50);
    if (mode == "steady")
        return runSteady(argc > 2 ? std::atoi(argv[2]) : 2000);
    if (mode == "drift")
        return runDrift(argc > 2 ? std::atoi(argv[2]) : 1000,
                        argc > 3 ? std::atoi(argv[3]) : 2500);
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 64;
}
