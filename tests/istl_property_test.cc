/**
 * @file
 * Property tests over the instrumented containers: long random op
 * sequences must keep the heap-graph mirror consistent, and fault-free
 * teardown must leave no live blocks.
 */

#include <gtest/gtest.h>

#include <set>

#include "istl/binary_tree.hh"
#include "istl/btree.hh"
#include "istl/circular_list.hh"
#include "istl/dll.hh"
#include "istl/hash_table.hh"

namespace heapmd
{

namespace
{

class IstlFuzz : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    IstlFuzz()
        : process_(), heap_(process_), faults_(),
          ctx_(heap_, faults_, GetParam())
    {
    }

    Process process_;
    HeapApi heap_;
    FaultPlan faults_;
    istl::Context ctx_;
};

TEST_P(IstlFuzz, DllRandomOps)
{
    istl::Dll dll(ctx_, 24);
    Rng rng(GetParam() * 3 + 1);
    for (int i = 0; i < 1500; ++i) {
        switch (rng.below(5)) {
          case 0:
            dll.pushBack();
            break;
          case 1:
            dll.pushFront();
            break;
          case 2:
            dll.insertAtCursor(1 + rng.below(6));
            break;
          case 3:
            dll.popFront();
            break;
          default:
            dll.traverse();
            break;
        }
        if (i % 300 == 0)
            process_.graph().checkConsistency();
    }
    dll.clear();
    process_.graph().checkConsistency();
    EXPECT_EQ(heap_.liveCount(), 0u);
    EXPECT_EQ(process_.graph().vertexCount(), 0u);
}

TEST_P(IstlFuzz, CircularRandomOps)
{
    istl::CircularList ring(ctx_, 16);
    Rng rng(GetParam() * 5 + 2);
    for (int i = 0; i < 1500; ++i) {
        switch (rng.below(4)) {
          case 0:
          case 1:
            ring.insert();
            break;
          case 2:
            ring.removeHead();
            break;
          default:
            ring.rotate();
            break;
        }
        if (i % 300 == 0) {
            process_.graph().checkConsistency();
            // Ring invariant: size() steps return to head.
            if (ring.size() > 0) {
                Addr walk = ring.head();
                for (std::uint64_t s = 0; s < ring.size(); ++s)
                    walk = heap_.loadPtr(
                        walk + istl::CircularList::kNextOff);
                EXPECT_EQ(walk, ring.head());
            }
        }
    }
    ring.clear();
    EXPECT_EQ(heap_.liveCount(), 0u);
}

TEST_P(IstlFuzz, BstRandomOps)
{
    istl::BinaryTree tree(ctx_, 16);
    Rng rng(GetParam() * 7 + 3);
    for (int i = 0; i < 1200; ++i) {
        switch (rng.below(6)) {
          case 0:
          case 1:
          case 2:
            tree.insert(rng.below(100000));
            break;
          case 3:
            tree.spliceAbove();
            break;
          case 4:
            tree.removeRandomLeaf();
            break;
          default:
            tree.find(rng.below(100000));
            break;
        }
        if (i % 300 == 0)
            process_.graph().checkConsistency();
    }
    tree.clear();
    EXPECT_EQ(heap_.liveCount(), 0u);
}

TEST_P(IstlFuzz, HashRandomOpsMatchReference)
{
    istl::HashTable table(ctx_, 64, 16);
    std::set<std::uint64_t> reference;
    Rng rng(GetParam() * 11 + 4);
    for (int i = 0; i < 1500; ++i) {
        const std::uint64_t key = 1 + rng.below(300);
        switch (rng.below(3)) {
          case 0:
            if (!reference.count(key)) {
                table.insert(key);
                reference.insert(key);
            }
            break;
          case 1: {
            const bool erased = table.erase(key);
            EXPECT_EQ(erased, reference.erase(key) > 0);
            break;
          }
          default:
            EXPECT_EQ(table.find(key) != kNullAddr,
                      reference.count(key) > 0);
            break;
        }
        if (i % 400 == 0)
            process_.graph().checkConsistency();
    }
    EXPECT_EQ(table.size(), reference.size());
    table.clear();
    process_.graph().checkConsistency();
}

TEST_P(IstlFuzz, BTreeRandomOpsMatchReference)
{
    istl::BTree btree(ctx_);
    std::multiset<std::uint64_t> reference;
    Rng rng(GetParam() * 13 + 5);
    for (int i = 0; i < 1200; ++i) {
        const std::uint64_t key = 1 + rng.below(500);
        if (rng.chance(0.7)) {
            btree.insert(key);
            reference.insert(key);
        } else if (btree.eraseFromLeaf(key)) {
            const auto it = reference.find(key);
            ASSERT_NE(it, reference.end());
            reference.erase(it);
        }
        if (i % 300 == 0) {
            process_.graph().checkConsistency();
            // Spot-check membership of a few keys.
            for (std::uint64_t probe = 1; probe <= 500; probe += 97) {
                EXPECT_EQ(btree.contains(probe),
                          reference.count(probe) > 0)
                    << "probe " << probe;
            }
        }
    }
    EXPECT_EQ(btree.size(), reference.size());
    btree.clear();
    EXPECT_EQ(heap_.liveCount(), 0u);
}

TEST_P(IstlFuzz, FaultyDllStillTearsDownViaNextChain)
{
    // With missing prev pointers, clear() (which walks next) must
    // still free every node.
    faults_.enable(FaultKind::DllMissingPrev, 0.7);
    istl::Dll dll(ctx_, 0);
    Rng rng(GetParam() * 17 + 6);
    for (int i = 0; i < 800; ++i) {
        if (rng.chance(0.7))
            dll.insertAtCursor(1 + rng.below(4));
        else
            dll.popFront();
    }
    dll.clear();
    EXPECT_EQ(heap_.liveCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IstlFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace

} // namespace heapmd
