#!/usr/bin/env python3
"""Regenerate the malformed-trace corpus consumed by analysis_test.cc.

Each file seeds exactly the defect named by its file name; the clean
trace must audit with zero findings.  Event tags and the HMDT layout
mirror src/trace/trace_format.hh and src/runtime/events.hh.

Usage: python3 gen_corpus.py   (writes *.trace next to itself)
"""

import os
import struct

MAGIC = 0x54444D48  # "HMDT" little-endian
VERSION = 1
FOOTER = b"\xff"

ALLOC, FREE, REALLOC, WRITE, READ, FN_ENTER, FN_EXIT = range(7)


def varint(value):
    out = bytearray()
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def header(version=VERSION):
    return struct.pack("<II", MAGIC, version)


def header2(flags):
    """Version-2 header with a flags word (bit 0: capture provenance)."""
    return struct.pack("<III", MAGIC, 2, flags)


def event(tag, *fields):
    return bytes([tag]) + b"".join(varint(f) for f in fields)


def footer(names=()):
    out = bytearray(FOOTER)
    out += varint(len(names))
    for name in names:
        encoded = name.encode()
        out += varint(len(encoded)) + encoded
    return bytes(out)


CORPUS = {
    # Zero findings: every rule must stay quiet on this one.
    "clean.trace": header()
    + event(FN_ENTER, 0)
    + event(ALLOC, 0x1000, 64)
    + event(ALLOC, 0x2000, 32)
    + event(WRITE, 0x1000, 0x2000)
    + event(READ, 0x1008)
    + event(REALLOC, 0x2000, 0x3000, 48)
    + event(WRITE, 0x1000, 0x3000)
    + event(FREE, 0x3000)
    + event(FREE, 0x1000)
    + event(FN_EXIT, 0)
    + footer(["main"]),
    # trace.bad-magic
    "bad_magic.trace": b"XXXX"
    + struct.pack("<I", VERSION)
    + footer(),
    # trace.bad-version
    "bad_version.trace": header(version=99) + footer(),
    # trace.varint-truncated: alloc size field ends mid-varint
    "truncated_varint.trace": header()
    + bytes([ALLOC])
    + varint(0x1000)
    + b"\x80\x80",
    # trace.varint-overlong: 11-byte encoding of the alloc address
    "overlong_varint.trace": header()
    + bytes([ALLOC])
    + b"\x80" * 10
    + b"\x01"
    + varint(64)
    + footer(),
    # trace.no-footer: complete event, then EOF
    "missing_footer.trace": header() + event(ALLOC, 0x1000, 64),
    # trace.footer-truncated: table claims 2 names, delivers 1
    "footer_truncated.trace": header()
    + FOOTER
    + varint(2)
    + varint(4)
    + b"main",
    # trace.footer-truncated: the name length claims far more bytes
    # than the stream holds; readers must fail without ever
    # pre-allocating the claimed length
    "footer_name_overflow.trace": header()
    + FOOTER
    + varint(1)
    + varint(0xFFFFFFFFFF)
    + b"ab",
    # trace.unknown-tag
    "unknown_tag.trace": header() + bytes([0x42]) + footer(),
    # trace.fn-id-range: FnEnter 5 but the table has one name
    "fn_id_gap.trace": header()
    + event(FN_ENTER, 5)
    + event(FN_EXIT, 5)
    + footer(["main"]),
    # trace.free-before-alloc
    "free_before_alloc.trace": header()
    + event(FREE, 0x1000)
    + footer(),
    # trace.write-after-free
    "write_after_free.trace": header()
    + event(ALLOC, 0x1000, 64)
    + event(FREE, 0x1000)
    + event(WRITE, 0x1008, 0x2000)
    + footer(),
    # trace.alloc-overlap
    "alloc_overlap.trace": header()
    + event(ALLOC, 0x1000, 64)
    + event(ALLOC, 0x1010, 16)
    + footer(),
    # trace.zero-alloc
    "zero_alloc.trace": header() + event(ALLOC, 0x1000, 0) + footer(),
    # trace.trailing-bytes (warning, not error)
    "trailing_bytes.trace": header() + footer() + b"junk",
    # --- flow.* corpus (audit --deep; flow_lint_test.cc) ------------
    # The pre-existing cases above double as flow fixtures:
    # free_before_alloc -> flow.free_unallocated, write_after_free ->
    # flow.write_freed, alloc_overlap -> flow.overlap_alloc.
    # flow.double_free: freed at event 2, freed again at event 3
    "flow_double_free.trace": header()
    + event(FN_ENTER, 0)
    + event(ALLOC, 0x1000, 64)
    + event(FREE, 0x1000)
    + event(FREE, 0x1000)
    + event(FN_EXIT, 0)
    + footer(["main"]),
    # flow.size_mismatch: free of an interior pointer (offset 16)
    "flow_size_mismatch.trace": header()
    + event(ALLOC, 0x1000, 64)
    + event(FREE, 0x1010)
    + event(FREE, 0x1000)
    + footer(),
    # flow.negative_size: bit 63 set, an ssize_t gone negative
    "flow_negative_size.trace": header()
    + event(ALLOC, 0x1000, 1 << 63)
    + footer(),
    # flow.write_unmapped: pointer write no extent ever covered
    "flow_write_unmapped.trace": header()
    + event(WRITE, 0x9000, 0)
    + footer(),
    # flow.leak_at_exit: one 64-byte object still live at the footer
    "flow_leak_at_exit.trace": header()
    + event(FN_ENTER, 0)
    + event(ALLOC, 0x1000, 64)
    + event(FN_EXIT, 0)
    + footer(["leaky"]),
    # flow.dangling_edge: B's slot points at A; A is freed and its
    # extent recycled; the slot is loaded and the very next memory
    # event writes inside A's old extent -- a UAF write through the
    # dangling edge.
    "flow_dangling_reuse.trace": header()
    + event(ALLOC, 0x1000, 32)  # A
    + event(ALLOC, 0x2000, 32)  # B
    + event(WRITE, 0x2000, 0x1000)  # slot B+0 -> A
    + event(FREE, 0x1000)
    + event(ALLOC, 0x1000, 32)  # recycles A's extent
    + event(READ, 0x2000)  # load the stale slot
    + event(WRITE, 0x1008, 0)  # write through it -> fires
    + event(FREE, 0x1000)
    + event(FREE, 0x2000)
    + footer(),
    # Capture provenance: the shim misses frees, so address reuse is
    # legal -- flow.overlap_alloc must NOT fire (zero flow findings).
    "capture_addr_reuse.trace": header2(1)
    + event(ALLOC, 0x1000, 64)
    + event(WRITE, 0x1000, 0)
    + event(ALLOC, 0x1000, 64)
    + event(FREE, 0x1000)
    + footer(),
    # Capture provenance downgrades write_freed to a warning
    "capture_write_freed.trace": header2(1)
    + event(ALLOC, 0x1000, 64)
    + event(FREE, 0x1000)
    + event(WRITE, 0x1008, 0)
    + footer(),
    # Capture provenance downgrades leak_at_exit to a note
    "capture_leak.trace": header2(1)
    + event(ALLOC, 0x1000, 64)
    + footer(),
}


def main():
    out_dir = os.path.dirname(os.path.abspath(__file__))
    for name, blob in sorted(CORPUS.items()):
        path = os.path.join(out_dir, name)
        with open(path, "wb") as fh:
            fh.write(blob)
        print(f"{name}: {len(blob)} bytes")


if __name__ == "__main__":
    main()
