#!/usr/bin/env python3
"""Regenerate the malformed-trace corpus consumed by analysis_test.cc.

Each file seeds exactly the defect named by its file name; the clean
trace must audit with zero findings.  Event tags and the HMDT layout
mirror src/trace/trace_format.hh and src/runtime/events.hh.

Usage: python3 gen_corpus.py   (writes *.trace next to itself)
"""

import os
import struct

MAGIC = 0x54444D48  # "HMDT" little-endian
VERSION = 1
FOOTER = b"\xff"

ALLOC, FREE, REALLOC, WRITE, READ, FN_ENTER, FN_EXIT = range(7)


def varint(value):
    out = bytearray()
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def header(version=VERSION):
    return struct.pack("<II", MAGIC, version)


def event(tag, *fields):
    return bytes([tag]) + b"".join(varint(f) for f in fields)


def footer(names=()):
    out = bytearray(FOOTER)
    out += varint(len(names))
    for name in names:
        encoded = name.encode()
        out += varint(len(encoded)) + encoded
    return bytes(out)


CORPUS = {
    # Zero findings: every rule must stay quiet on this one.
    "clean.trace": header()
    + event(FN_ENTER, 0)
    + event(ALLOC, 0x1000, 64)
    + event(ALLOC, 0x2000, 32)
    + event(WRITE, 0x1000, 0x2000)
    + event(READ, 0x1008)
    + event(REALLOC, 0x2000, 0x3000, 48)
    + event(WRITE, 0x1000, 0x3000)
    + event(FREE, 0x3000)
    + event(FREE, 0x1000)
    + event(FN_EXIT, 0)
    + footer(["main"]),
    # trace.bad-magic
    "bad_magic.trace": b"XXXX"
    + struct.pack("<I", VERSION)
    + footer(),
    # trace.bad-version
    "bad_version.trace": header(version=99) + footer(),
    # trace.varint-truncated: alloc size field ends mid-varint
    "truncated_varint.trace": header()
    + bytes([ALLOC])
    + varint(0x1000)
    + b"\x80\x80",
    # trace.varint-overlong: 11-byte encoding of the alloc address
    "overlong_varint.trace": header()
    + bytes([ALLOC])
    + b"\x80" * 10
    + b"\x01"
    + varint(64)
    + footer(),
    # trace.no-footer: complete event, then EOF
    "missing_footer.trace": header() + event(ALLOC, 0x1000, 64),
    # trace.footer-truncated: table claims 2 names, delivers 1
    "footer_truncated.trace": header()
    + FOOTER
    + varint(2)
    + varint(4)
    + b"main",
    # trace.footer-truncated: the name length claims far more bytes
    # than the stream holds; readers must fail without ever
    # pre-allocating the claimed length
    "footer_name_overflow.trace": header()
    + FOOTER
    + varint(1)
    + varint(0xFFFFFFFFFF)
    + b"ab",
    # trace.unknown-tag
    "unknown_tag.trace": header() + bytes([0x42]) + footer(),
    # trace.fn-id-range: FnEnter 5 but the table has one name
    "fn_id_gap.trace": header()
    + event(FN_ENTER, 5)
    + event(FN_EXIT, 5)
    + footer(["main"]),
    # trace.free-before-alloc
    "free_before_alloc.trace": header()
    + event(FREE, 0x1000)
    + footer(),
    # trace.write-after-free
    "write_after_free.trace": header()
    + event(ALLOC, 0x1000, 64)
    + event(FREE, 0x1000)
    + event(WRITE, 0x1008, 0x2000)
    + footer(),
    # trace.alloc-overlap
    "alloc_overlap.trace": header()
    + event(ALLOC, 0x1000, 64)
    + event(ALLOC, 0x1010, 16)
    + footer(),
    # trace.zero-alloc
    "zero_alloc.trace": header() + event(ALLOC, 0x1000, 0) + footer(),
    # trace.trailing-bytes (warning, not error)
    "trailing_bytes.trace": header() + footer() + b"junk",
}


def main():
    out_dir = os.path.dirname(os.path.abspath(__file__))
    for name, blob in sorted(CORPUS.items()):
        path = os.path.join(out_dir, name)
        with open(path, "wb") as fh:
            fh.write(blob)
        print(f"{name}: {len(blob)} bytes")


if __name__ == "__main__":
    main()
