/**
 * @file
 * Unit and parameterized tests of the stability classifier (the
 * Section 3 definitions: avg change within +/-1%, stddev below 5).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/stability.hh"
#include "support/random.hh"

namespace heapmd
{

namespace
{

MetricSeries
seriesOf(const std::vector<double> &values)
{
    MetricSeries series;
    for (std::size_t i = 0; i < values.size(); ++i) {
        MetricSample s;
        s.pointIndex = i;
        s.vertexCount = 1000;
        for (MetricId id : kAllMetrics)
            s.values[metricIndex(id)] = values[i];
        series.push(s);
    }
    return series;
}

TEST(StabilityTest, ConstantSeriesIsGloballyStable)
{
    const StabilityThresholds thr;
    const auto series = seriesOf(std::vector<double>(50, 25.0));
    const FluctuationSummary fs =
        analyzeMetric(series, MetricId::Roots, thr);
    EXPECT_DOUBLE_EQ(fs.avgChange, 0.0);
    EXPECT_DOUBLE_EQ(fs.stdDev, 0.0);
    EXPECT_DOUBLE_EQ(fs.minValue, 25.0);
    EXPECT_DOUBLE_EQ(fs.maxValue, 25.0);
    EXPECT_TRUE(isGloballyStable(fs, thr));
    EXPECT_EQ(classify(fs, thr), Stability::GloballyStable);
}

TEST(StabilityTest, DriftingSeriesIsUnstable)
{
    const StabilityThresholds thr;
    // +3% per step: avg change ~3 exceeds the +/-1% threshold.
    std::vector<double> values;
    double v = 10.0;
    for (int i = 0; i < 60; ++i) {
        values.push_back(v);
        v *= 1.03;
    }
    const FluctuationSummary fs =
        analyzeMetric(seriesOf(values), MetricId::Roots, thr);
    EXPECT_GT(fs.avgChange, 1.0);
    EXPECT_FALSE(isGloballyStable(fs, thr));
    EXPECT_EQ(classify(fs, thr), Stability::Unstable);
}

TEST(StabilityTest, SpikySeriesIsLocallyStable)
{
    const StabilityThresholds thr;
    // Flat with occasional large spikes: mean change ~0 but stddev
    // above the globally-stable threshold.
    std::vector<double> values(80, 20.0);
    for (std::size_t i = 20; i < 80; i += 20) {
        values[i] = 24.0;     // +20% spike
        values[i + 1] = 20.0; // back down
    }
    const FluctuationSummary fs =
        analyzeMetric(seriesOf(values), MetricId::Roots, thr);
    EXPECT_LT(std::fabs(fs.avgChange), 1.0);
    EXPECT_GT(fs.stdDev, thr.maxStdDev);
    EXPECT_EQ(classify(fs, thr), Stability::LocallyStable);
}

TEST(StabilityTest, WildSeriesIsUnstable)
{
    StabilityThresholds thr;
    thr.locallyStableStdDev = 25.0;
    std::vector<double> values;
    Rng rng(5);
    for (int i = 0; i < 80; ++i)
        values.push_back(5.0 + rng.uniform() * 90.0);
    const FluctuationSummary fs =
        analyzeMetric(seriesOf(values), MetricId::Roots, thr);
    EXPECT_GT(fs.stdDev, thr.locallyStableStdDev);
}

TEST(StabilityTest, TrimmingIgnoresStartupRamp)
{
    const StabilityThresholds thr; // trims 10% each end
    // 10 wild startup points, then 80 flat ones, then 10 wild.
    std::vector<double> values;
    for (int i = 0; i < 10; ++i)
        values.push_back(1.0 + i * 10.0);
    for (int i = 0; i < 80; ++i)
        values.push_back(50.0);
    for (int i = 0; i < 10; ++i)
        values.push_back(90.0 - i * 8.0);
    const FluctuationSummary fs =
        analyzeMetric(seriesOf(values), MetricId::Roots, thr);
    EXPECT_TRUE(isGloballyStable(fs, thr));
    EXPECT_DOUBLE_EQ(fs.minValue, 50.0);
    EXPECT_DOUBLE_EQ(fs.maxValue, 50.0);
}

TEST(StabilityTest, EmptySeriesSummaryIsTriviallyStable)
{
    const StabilityThresholds thr;
    const FluctuationSummary fs =
        analyzeMetric(MetricSeries{}, MetricId::Roots, thr);
    EXPECT_EQ(fs.changeCount, 0u);
    EXPECT_TRUE(isGloballyStable(fs, thr));
}

TEST(StabilityTest, NamesAreHumanReadable)
{
    EXPECT_EQ(stabilityName(Stability::GloballyStable),
              "globally-stable");
    EXPECT_EQ(stabilityName(Stability::LocallyStable),
              "locally-stable");
    EXPECT_EQ(stabilityName(Stability::Unstable), "unstable");
}

/**
 * Threshold boundary sweep: a series with a known constant change
 * rate is stable iff the rate is within the threshold.
 */
class AvgChangeBoundaryTest : public ::testing::TestWithParam<double>
{
};

TEST_P(AvgChangeBoundaryTest, ClassifiedAgainstThreshold)
{
    const double rate = GetParam(); // percent per step
    const StabilityThresholds thr;  // avg threshold +/-1%
    std::vector<double> values;
    double v = 30.0;
    for (int i = 0; i < 100; ++i) {
        values.push_back(v);
        v *= 1.0 + rate / 100.0;
    }
    const FluctuationSummary fs =
        analyzeMetric(seriesOf(values), MetricId::Leaves, thr);
    EXPECT_NEAR(fs.avgChange, rate, 1e-6);
    EXPECT_EQ(isGloballyStable(fs, thr), std::fabs(rate) <= 1.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, AvgChangeBoundaryTest,
                         ::testing::Values(-2.0, -1.5, -0.99, -0.5, 0.0,
                                           0.5, 0.99, 1.5, 2.0));

/**
 * Noise-amplitude sweep: alternating +/-a% changes have stddev ~= a;
 * the stability verdict flips at the stddev threshold (5).
 */
class StdDevBoundaryTest : public ::testing::TestWithParam<double>
{
};

TEST_P(StdDevBoundaryTest, ClassifiedAgainstThreshold)
{
    const double amplitude = GetParam();
    const StabilityThresholds thr;
    std::vector<double> values;
    double v = 40.0;
    for (int i = 0; i < 200; ++i) {
        values.push_back(v);
        // Alternate up/down by amplitude percent of the *current*
        // value; the mean change stays ~0.
        v *= (i % 2 == 0) ? (1.0 + amplitude / 100.0)
                          : 1.0 / (1.0 + amplitude / 100.0);
    }
    const FluctuationSummary fs =
        analyzeMetric(seriesOf(values), MetricId::Indeg1, thr);
    // The up-step is +a% but the exact down-step is -a/(1+a/100)%,
    // so the mean change grows quadratically with the amplitude.
    EXPECT_LT(std::fabs(fs.avgChange),
              amplitude * amplitude / 100.0 + 0.5);
    EXPECT_EQ(isGloballyStable(fs, thr),
              std::fabs(fs.avgChange) <= thr.maxAbsAvgChange &&
                  fs.stdDev <= thr.maxStdDev);
    // stddev tracks the injected amplitude.
    EXPECT_NEAR(fs.stdDev, amplitude, amplitude * 0.25 + 0.3);
}

INSTANTIATE_TEST_SUITE_P(Amplitudes, StdDevBoundaryTest,
                         ::testing::Values(0.5, 2.0, 4.0, 6.0, 10.0,
                                           20.0));

TEST(StabilityTest, PaperVprExampleShape)
{
    // Mimic Figure 6: Outdeg=1 flat (stable), In=Out spiky
    // (unstable) -- the classifier must separate them.
    Rng rng(7);
    MetricSeries series;
    double flat = 20.0, spiky = 30.0;
    for (int i = 0; i < 120; ++i) {
        MetricSample s;
        s.pointIndex = i;
        s.vertexCount = 1000;
        flat *= 1.0 + (rng.uniform() - 0.5) * 0.01;
        if (i % 17 == 0)
            spiky *= rng.chance(0.5) ? 1.8 : 0.55;
        s.values[metricIndex(MetricId::Outdeg1)] = flat;
        s.values[metricIndex(MetricId::InEqOut)] = spiky;
        series.push(s);
    }
    const StabilityThresholds thr;
    EXPECT_TRUE(isGloballyStable(
        analyzeMetric(series, MetricId::Outdeg1, thr), thr));
    EXPECT_FALSE(isGloballyStable(
        analyzeMetric(series, MetricId::InEqOut, thr), thr));
}

} // namespace

} // namespace heapmd
