/**
 * @file
 * Unit tests of the diagnostics-export subsystem: incident bundles,
 * run manifests (canonical JSON round-trips), the incident renderer,
 * cross-run trend comparison, and the diag.* artifact linter.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "analysis/diag_lint.hh"
#include "diag/incident_bundle.hh"
#include "diag/json.hh"
#include "diag/render.hh"
#include "diag/run_manifest.hh"
#include "diag/trend.hh"
#include "support/hash.hh"

namespace heapmd
{

namespace
{

using diag::IncidentBundle;
using diag::RunManifest;

/** A registry with a few known functions (ids 0..2). */
FunctionRegistry
testRegistry()
{
    FunctionRegistry registry;
    registry.intern("leaky_alloc");
    registry.intern("steady_work");
    registry.intern("main");
    return registry;
}

/** A series of @p n points with Leaves ramping upward. */
MetricSeries
testSeries(std::size_t n)
{
    MetricSeries series;
    series.label = "gzip seed 3 v1";
    for (std::size_t i = 0; i < n; ++i) {
        MetricSample s;
        s.pointIndex = i;
        s.tick = 100 * (i + 1);
        s.vertexCount = 1000;
        for (MetricId id : kAllMetrics)
            s.values[metricIndex(id)] = 10.0;
        s.values[metricIndex(MetricId::Leaves)] =
            10.0 + static_cast<double>(i) * 1.5;
        series.push(s);
    }
    return series;
}

/** A finalized report crossing Leaves above max at point 20. */
BugReport
testReport()
{
    BugReport r;
    r.klass = BugClass::HeapAnomaly;
    r.metric = MetricId::Leaves;
    r.direction = AnomalyDirection::AboveMax;
    r.observedValue = 40.0;
    r.calibratedMin = 8.0;
    r.calibratedMax = 30.0;
    r.tick = 2100;
    r.pointIndex = 20;
    for (std::uint64_t i = 0; i < 6; ++i) {
        StackLogEntry e;
        e.tick = 1800 + i * 60;
        e.pointIndex = 18 + i;
        e.metricValue = 35.0 + static_cast<double>(i);
        // leaky_alloc innermost twice as often as steady_work.
        e.frames = {i % 3 == 1 ? FnId{1} : FnId{0}, 2};
        r.contextLog.push_back(e);
    }
    return r;
}

/** A manifest with every section populated (round-trip coverage). */
RunManifest
testManifest()
{
    RunManifest m;
    m.command = "check";
    m.commandLine = "heapmd check --app gzip --model gzip.model";
    m.program = "gzip seed 3 v1";
    m.metricFrequency = 300;
    m.includeLocallyStable = true;
    m.seed = 404;
    m.version = 2;
    m.scale = 0.4;
    m.fault = "typo-leak";
    m.faultRate = 0.25;
    m.hardwareConcurrency = 8;
    m.sanitizer = "none";
    m.peakRssBytes = 64ull * 1024 * 1024;
    m.durationNanos = 987654321;
    m.inputs.push_back({"model", "gzip.model",
                        hashFingerprint(fnv1a64("model-bytes")), 512});
    m.phases.push_back({"phase.observe", 25, 200000000, 180000000, 0});
    m.phases.push_back({"phase.train", 1, 210000000, 190000000, 4096});
    m.events = 10000;
    m.samples = 33;
    m.allocs = 4000;
    m.frees = 3900;
    m.liveBlocksAtExit = 100;
    m.wallNanos = 1234567;
    m.cpuNanos = 1200000;
    m.reportsTotal = 2;
    m.heapAnomalies = 1;
    m.poorlyDisguised = 1;
    m.pathological = 0;
    m.bundlePaths = {"bundles/incident-001.json",
                     "bundles/incident-002.json"};
    for (MetricId id : kAllMetrics) {
        SeriesSummary s;
        s.count = 33;
        s.min = 1.0;
        s.max = 30.5;
        s.mean = 15.25;
        s.stddev = 0.125;
        m.metrics.push_back({metricName(id), s});
    }
    m.counters.push_back({"graph.allocs", 4000});
    m.counters.push_back({"graph.frees", 3900});
    m.gauges.push_back({"graph.live_bytes", -5});
    return m;
}

TEST(JsonNumberTest, ShortestRoundTrip)
{
    for (double v : {0.0, 1.0, -1.0, 0.1, 1.0 / 3.0, 22.4644,
                     1e-300, 6.02214076e23, -123456.789}) {
        const std::string text = diag::formatJsonNumber(v);
        EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
    }
    // Non-finite values are not valid JSON; they collapse to 0.
    EXPECT_EQ(diag::formatJsonNumber(NAN), "0");
    EXPECT_EQ(diag::formatJsonNumber(INFINITY), "0");
}

TEST(IncidentBundleTest, BuildResolvesFramesAndSuspects)
{
    const FunctionRegistry registry = testRegistry();
    const MetricSeries series = testSeries(30);
    const IncidentBundle bundle =
        diag::makeIncidentBundle(testReport(), registry, series);

    EXPECT_EQ(bundle.program, "gzip seed 3 v1");
    EXPECT_EQ(bundle.bugClass, "heap-anomaly");
    EXPECT_EQ(bundle.metric, metricName(MetricId::Leaves));
    EXPECT_EQ(bundle.direction, "above-max");
    ASSERT_EQ(bundle.contextLog.size(), 6u);
    EXPECT_EQ(bundle.contextLog[0].frames[0].name, "leaky_alloc");
    ASSERT_GE(bundle.suspects.size(), 2u);
    EXPECT_EQ(bundle.suspects[0].fnId, 0u);
    EXPECT_EQ(bundle.suspects[0].name, "leaky_alloc");
    EXPECT_EQ(bundle.suspects[0].snapshots, 4u);
    // Window covers [20-16, 20+16] clamped to the series.
    ASSERT_FALSE(bundle.window.empty());
    EXPECT_EQ(bundle.window.front().pointIndex, 4u);
    EXPECT_EQ(bundle.window.back().pointIndex, 29u);
}

TEST(IncidentBundleTest, UnregisteredFnIdsRenderPlaceholders)
{
    // Satellite regression: a report whose FnIds the registry never
    // saw must serialize placeholder names, not crash.
    BugReport report = testReport();
    report.contextLog[0].frames = {9999, 12345};
    const FunctionRegistry empty;
    const IncidentBundle bundle = diag::makeIncidentBundle(
        report, empty, testSeries(30));
    EXPECT_EQ(bundle.contextLog[0].frames[0].name, "<fn#9999>");
    EXPECT_EQ(bundle.contextLog[0].frames[1].name, "<fn#12345>");
    bool ranked = false;
    for (const diag::BundleSuspect &suspect : bundle.suspects) {
        if (suspect.fnId == 9999)
            ranked = suspect.name == "<fn#9999>";
    }
    EXPECT_TRUE(ranked);
    // And the document still audits clean.
    analysis::Report lint;
    analysis::lintBundleText(diag::bundleToJson(bundle), lint);
    EXPECT_TRUE(lint.clean()) << lint.describe();
}

TEST(IncidentBundleTest, RoundTripsByteForByte)
{
    const IncidentBundle bundle = diag::makeIncidentBundle(
        testReport(), testRegistry(), testSeries(30));
    const std::string first = diag::bundleToJson(bundle);

    IncidentBundle loaded;
    std::string error;
    ASSERT_TRUE(diag::loadIncidentBundle(first, loaded, &error))
        << error;
    EXPECT_EQ(diag::bundleToJson(loaded), first);

    EXPECT_EQ(loaded.schemaVersion, bundle.schemaVersion);
    EXPECT_EQ(loaded.observedValue, bundle.observedValue);
    EXPECT_EQ(loaded.pointIndex, bundle.pointIndex);
    EXPECT_EQ(loaded.suspects.size(), bundle.suspects.size());
    EXPECT_EQ(loaded.contextLog.size(), bundle.contextLog.size());
    EXPECT_EQ(loaded.window.size(), bundle.window.size());
}

TEST(IncidentBundleTest, LoadRejectsWrongKindAndVersion)
{
    IncidentBundle out;
    std::string error;
    EXPECT_FALSE(diag::loadIncidentBundle("{", out, &error));
    EXPECT_FALSE(diag::loadIncidentBundle(
        "{\"kind\": \"heapmd.manifest\", \"schemaVersion\": 1}", out,
        &error));
    EXPECT_NE(error.find("kind"), std::string::npos);
    EXPECT_FALSE(diag::loadIncidentBundle(
        "{\"kind\": \"heapmd.incident\", \"schemaVersion\": 99}", out,
        &error));
}

TEST(RunManifestTest, RoundTripsByteForByte)
{
    const RunManifest manifest = testManifest();
    const std::string first = diag::manifestToJson(manifest);

    RunManifest loaded;
    std::string error;
    ASSERT_TRUE(diag::loadRunManifest(first, loaded, &error)) << error;
    EXPECT_EQ(diag::manifestToJson(loaded), first);

    EXPECT_EQ(loaded.command, "check");
    EXPECT_EQ(loaded.fault, "typo-leak");
    EXPECT_EQ(loaded.inputs.size(), 1u);
    EXPECT_EQ(loaded.inputs[0].fingerprint,
              manifest.inputs[0].fingerprint);
    EXPECT_EQ(loaded.bundlePaths.size(), 2u);
    EXPECT_EQ(loaded.metrics.size(), kNumMetrics);
    EXPECT_EQ(loaded.gauges[0].value, -5);
    EXPECT_TRUE(loaded.includeLocallyStable);
    EXPECT_EQ(loaded.hardwareConcurrency, 8u);
    EXPECT_EQ(loaded.sanitizer, "none");
    EXPECT_EQ(loaded.peakRssBytes, 64ull * 1024 * 1024);
    EXPECT_EQ(loaded.durationNanos, 987654321u);
    ASSERT_EQ(loaded.phases.size(), 2u);
    EXPECT_EQ(loaded.phases[0].name, "phase.observe");
    EXPECT_EQ(loaded.phases[0].count, 25u);
    EXPECT_EQ(loaded.phases[1].wallNanos, 210000000u);
    EXPECT_EQ(loaded.phases[1].bytes, 4096u);
}

/** Erase the whole lines from the one containing @p from through the
 *  one containing the first @p close after it. */
void
stripBlock(std::string &json, const std::string &from, char close)
{
    const auto pos = json.find(from);
    ASSERT_NE(pos, std::string::npos) << from;
    const auto line_start = json.rfind('\n', pos) + 1;
    const auto line_end =
        json.find('\n', json.find(close, pos)) + 1;
    json.erase(line_start, line_end - line_start);
}

/** Rewrite the document's schemaVersion claim to @p to. */
void
claimVersion(std::string &json, char to)
{
    const auto pos = json.find("\"schemaVersion\": 4");
    ASSERT_NE(pos, std::string::npos);
    json[pos + 17] = to;
}

TEST(RunManifestTest, V1DocumentsLoadWithoutEnv)
{
    // Hand-build a schema-1 document by stripping the env object and
    // phases array from a canonical v4 rendering; the loader must
    // accept it with those fields defaulted, and a re-save must
    // claim v4 (it gains the newer blocks back).
    std::string json = diag::manifestToJson(testManifest());
    stripBlock(json, "\"env\"", '}');
    stripBlock(json, "\"phases\"", ']');
    claimVersion(json, '1');

    RunManifest loaded;
    std::string error;
    ASSERT_TRUE(diag::loadRunManifest(json, loaded, &error)) << error;
    EXPECT_EQ(loaded.schemaVersion, 1u);
    EXPECT_EQ(loaded.hardwareConcurrency, 0u);
    EXPECT_TRUE(loaded.sanitizer.empty());
    EXPECT_TRUE(loaded.phases.empty());
    EXPECT_NE(diag::manifestToJson(loaded)
                  .find("\"schemaVersion\": 4"),
              std::string::npos);
}

TEST(RunManifestTest, V2DocumentsLoadWithoutResourcesOrPhases)
{
    // A schema-2 document has an env object without the v3 resource
    // fields and no phases array at all.
    std::string json = diag::manifestToJson(testManifest());
    // Erase ",\n "peakRssBytes": ... "durationNanos": N" as one
    // span so the field before them keeps the object well-formed.
    const auto rss_pos = json.find(",\n    \"peakRssBytes\"");
    ASSERT_NE(rss_pos, std::string::npos);
    const auto dur_pos = json.find("\"durationNanos\"", rss_pos);
    ASSERT_NE(dur_pos, std::string::npos);
    json.erase(rss_pos, json.find('\n', dur_pos) - rss_pos);
    stripBlock(json, "\"phases\"", ']');
    claimVersion(json, '2');

    RunManifest loaded;
    std::string error;
    ASSERT_TRUE(diag::loadRunManifest(json, loaded, &error)) << error;
    EXPECT_EQ(loaded.schemaVersion, 2u);
    EXPECT_EQ(loaded.hardwareConcurrency, 8u);
    EXPECT_EQ(loaded.peakRssBytes, 0u);
    EXPECT_EQ(loaded.durationNanos, 0u);
    EXPECT_TRUE(loaded.phases.empty());
}

TEST(RunManifestTest, V2DocumentsRequireEnv)
{
    std::string json = diag::manifestToJson(testManifest());
    const auto env_pos = json.find("\"env\"");
    ASSERT_NE(env_pos, std::string::npos);
    const auto line_start = json.rfind('\n', env_pos) + 1;
    const auto line_end =
        json.find('\n', json.find('}', env_pos)) + 1;
    json.erase(line_start, line_end - line_start);

    RunManifest loaded;
    std::string error;
    EXPECT_FALSE(diag::loadRunManifest(json, loaded, &error));
}

TEST(RunManifestTest, SampleRate)
{
    RunManifest m;
    EXPECT_EQ(m.sampleRate(), 0.0);
    m.events = 200;
    m.samples = 50;
    EXPECT_DOUBLE_EQ(m.sampleRate(), 0.25);
}

TEST(RenderTest, SparklineScalesIntoRamp)
{
    EXPECT_EQ(diag::asciiSparkline({}), "");
    // Flat series renders mid-ramp, one char per value.
    const std::string flat = diag::asciiSparkline({5.0, 5.0, 5.0});
    EXPECT_EQ(flat.size(), 3u);
    EXPECT_EQ(flat[0], flat[2]);
    // Endpoints of a ramp hit the extremes of ".,:-=+*#%@".
    const std::string ramp =
        diag::asciiSparkline({0.0, 0.5, 1.0});
    EXPECT_EQ(ramp.front(), '.');
    EXPECT_EQ(ramp.back(), '@');
}

TEST(RenderTest, IncidentPageLeadsWithSuspect)
{
    const IncidentBundle bundle = diag::makeIncidentBundle(
        testReport(), testRegistry(), testSeries(30));
    const std::string page = diag::renderIncident(bundle);

    EXPECT_NE(page.find("heap-anomaly"), std::string::npos);
    EXPECT_NE(page.find("leaky_alloc"), std::string::npos);
    EXPECT_NE(page.find("^"), std::string::npos); // crossing caret
    EXPECT_NE(page.find("stacks"), std::string::npos);
    // The suspect ranking appears before the stack listings.
    EXPECT_LT(page.find("leaky_alloc"), page.find("stacks"));
}

TEST(TrendTest, IdenticalManifestsAreClean)
{
    const RunManifest m = testManifest();
    analysis::Report report;
    diag::compareManifests(m, m, {}, report);
    EXPECT_TRUE(report.clean()) << report.describe();
}

TEST(TrendTest, NewAnomaliesAreRegressions)
{
    RunManifest baseline = testManifest();
    baseline.reportsTotal = 0;
    baseline.heapAnomalies = 0;
    baseline.poorlyDisguised = 0;
    baseline.bundlePaths.clear();
    const RunManifest candidate = testManifest();

    analysis::Report report;
    diag::compareManifests(baseline, candidate, {}, report);
    EXPECT_FALSE(report.clean());
    EXPECT_TRUE(report.has("trend.new-anomalies"));
    // The finding points at the candidate's bundles for triage.
    EXPECT_NE(report.describe().find("incident-001.json"),
              std::string::npos);
}

TEST(TrendTest, CounterDeltaBeyondToleranceFlagged)
{
    const RunManifest baseline = testManifest();
    RunManifest candidate = testManifest();
    candidate.counters[0].value = 8000; // graph.allocs 4000 -> 8000

    analysis::Report report;
    diag::compareManifests(baseline, candidate, {}, report);
    EXPECT_TRUE(report.has("trend.counter-delta"));

    // Within tolerance: clean.
    candidate.counters[0].value = 4100;
    analysis::Report ok;
    diag::compareManifests(baseline, candidate, {}, ok);
    EXPECT_FALSE(ok.has("trend.counter-delta"));
}

TEST(TrendTest, TimingAndSmallCountersIgnored)
{
    EXPECT_TRUE(diag::isTimingCounter("runtime.tick_ns"));
    EXPECT_FALSE(diag::isTimingCounter("graph.allocs"));

    RunManifest baseline = testManifest();
    baseline.counters.push_back({"runtime.tick_ns", 1000000});
    baseline.counters.push_back({"tiny.counter", 4});
    RunManifest candidate = testManifest();
    candidate.counters.push_back({"runtime.tick_ns", 9000000});
    candidate.counters.push_back({"tiny.counter", 40});

    analysis::Report report;
    diag::compareManifests(baseline, candidate, {}, report);
    EXPECT_FALSE(report.has("trend.counter-delta"))
        << report.describe();
}

TEST(TrendTest, MissingCounterWarns)
{
    const RunManifest baseline = testManifest();
    RunManifest candidate = testManifest();
    candidate.counters.erase(candidate.counters.begin());

    analysis::Report report;
    diag::compareManifests(baseline, candidate, {}, report);
    EXPECT_TRUE(report.has("trend.counter-missing"));
    EXPECT_TRUE(report.clean()); // a warning, not a regression
}

TEST(TrendTest, SampleRateDropFlagged)
{
    const RunManifest baseline = testManifest(); // 33 / 10000
    RunManifest candidate = testManifest();
    candidate.samples = 20; // ~40% drop

    analysis::Report report;
    diag::compareManifests(baseline, candidate, {}, report);
    EXPECT_TRUE(report.has("trend.sample-rate-drop"));
}

TEST(TrendTest, ProgramMismatchAndInputChangeSurface)
{
    const RunManifest baseline = testManifest();
    RunManifest candidate = testManifest();
    candidate.program = "vpr seed 1 v1";
    candidate.inputs[0].fingerprint =
        hashFingerprint(fnv1a64("other-model"));

    analysis::Report report;
    diag::compareManifests(baseline, candidate, {}, report);
    EXPECT_TRUE(report.has("trend.program-mismatch"));
    EXPECT_TRUE(report.has("trend.input-changed"));
    EXPECT_TRUE(report.clean()); // hazards, not regressions
}

TEST(TrendTest, EnvironmentMismatchesAreHazards)
{
    RunManifest baseline = testManifest();
    RunManifest candidate = testManifest();
    baseline.sanitizer = "none";
    candidate.sanitizer = "address,undefined";
    baseline.hardwareConcurrency = 8;
    candidate.hardwareConcurrency = 2;

    analysis::Report report;
    diag::compareManifests(baseline, candidate, {}, report);
    EXPECT_TRUE(report.has("trend.env-sanitizer"));
    EXPECT_TRUE(report.has("trend.env-concurrency"));
    EXPECT_TRUE(report.clean()); // comparability hazards, not bugs
}

TEST(TrendTest, SingleCoreCandidateGetsContextNote)
{
    RunManifest baseline = testManifest();
    RunManifest candidate = testManifest();
    baseline.hardwareConcurrency = 1;
    candidate.hardwareConcurrency = 1;

    analysis::Report report;
    diag::compareManifests(baseline, candidate, {}, report);
    EXPECT_TRUE(report.has("trend.env-single-core"));
    EXPECT_FALSE(report.has("trend.env-concurrency"));
    EXPECT_EQ(report.warningCount(), 0u);
}

TEST(TrendTest, EnvChecksStaySilentOnV1Manifests)
{
    // Manifests loaded from schema-1 documents carry no env data.
    RunManifest baseline = testManifest();
    RunManifest candidate = testManifest();
    baseline.hardwareConcurrency = 0;
    baseline.sanitizer.clear();
    candidate.hardwareConcurrency = 0;
    candidate.sanitizer.clear();

    analysis::Report report;
    diag::compareManifests(baseline, candidate, {}, report);
    EXPECT_FALSE(report.has("trend.env-sanitizer"));
    EXPECT_FALSE(report.has("trend.env-concurrency"));
    EXPECT_FALSE(report.has("trend.env-single-core"));
}

TEST(TrendTest, PeakRssRegressionFlagged)
{
    const RunManifest baseline = testManifest(); // 64 MiB
    RunManifest candidate = testManifest();
    candidate.peakRssBytes = 100ull * 1024 * 1024; // +56%

    analysis::Report report;
    diag::compareManifests(baseline, candidate, {}, report);
    EXPECT_TRUE(report.has("trend.env-rss")) << report.describe();
    EXPECT_FALSE(report.clean());

    // Within the default 35% tolerance: silent.
    candidate.peakRssBytes = 80ull * 1024 * 1024; // +25%
    analysis::Report within;
    diag::compareManifests(baseline, candidate, {}, within);
    EXPECT_FALSE(within.has("trend.env-rss"));

    // A tightened tolerance flags the same delta.
    diag::TrendOptions strict;
    strict.rssTolerance = 0.10;
    analysis::Report tight;
    diag::compareManifests(baseline, candidate, strict, tight);
    EXPECT_TRUE(tight.has("trend.env-rss"));
}

TEST(TrendTest, TinyOrAbsentRssBaselinesAreIgnored)
{
    // Footprints under the floor are noise-dominated (allocator
    // round-up, page-cache luck), and v2 documents carry 0.
    RunManifest baseline = testManifest();
    RunManifest candidate = testManifest();
    baseline.peakRssBytes = 8ull * 1024 * 1024;
    candidate.peakRssBytes = 80ull * 1024 * 1024; // 10x, still silent
    analysis::Report small;
    diag::compareManifests(baseline, candidate, {}, small);
    EXPECT_FALSE(small.has("trend.env-rss"));

    baseline.peakRssBytes = 64ull * 1024 * 1024;
    candidate.peakRssBytes = 0; // candidate predates v3
    analysis::Report absent;
    diag::compareManifests(baseline, candidate, {}, absent);
    EXPECT_FALSE(absent.has("trend.env-rss"));
}

TEST(TrendTest, PhaseWallRegressionFlagged)
{
    const RunManifest baseline = testManifest(); // phase.train 210ms
    RunManifest candidate = testManifest();
    candidate.phases[1].wallNanos = 550000000; // +162%, tol +100%

    analysis::Report report;
    diag::compareManifests(baseline, candidate, {}, report);
    EXPECT_TRUE(report.has("trend.phase-wall")) << report.describe();
    EXPECT_FALSE(report.clean());

    diag::TrendOptions loose;
    loose.phaseWallTolerance = 2.0;
    analysis::Report ok;
    diag::compareManifests(baseline, candidate, loose, ok);
    EXPECT_FALSE(ok.has("trend.phase-wall"));
    EXPECT_TRUE(ok.clean());
}

TEST(TrendTest, FastBaselinePhasesAndNewPhasesAreContext)
{
    RunManifest baseline = testManifest();
    RunManifest candidate = testManifest();
    // Below the 50ms floor a 10x blowup is still microseconds of
    // wall time -- scheduling noise, not a regression.
    baseline.phases[0].wallNanos = 2000000;
    candidate.phases[0].wallNanos = 20000000;
    // A phase only the candidate ran is context, not a regression.
    candidate.phases.push_back({"phase.deep_audit", 1, 5000000, 0, 0});

    analysis::Report report;
    diag::compareManifests(baseline, candidate, {}, report);
    EXPECT_FALSE(report.has("trend.phase-wall"));
    EXPECT_TRUE(report.has("trend.phase-new"));
    EXPECT_TRUE(report.clean()) << report.describe();
}

TEST(DiagLintTest, CleanArtifactsPass)
{
    const IncidentBundle bundle = diag::makeIncidentBundle(
        testReport(), testRegistry(), testSeries(30));
    analysis::Report bundle_report;
    const analysis::BundleLintStats bs = analysis::lintBundleText(
        diag::bundleToJson(bundle), bundle_report);
    EXPECT_TRUE(bundle_report.clean()) << bundle_report.describe();
    EXPECT_EQ(bs.contextEntries, 6u);
    EXPECT_EQ(bs.frames, 12u);

    analysis::Report manifest_report;
    const analysis::ManifestLintStats ms = analysis::lintManifestText(
        diag::manifestToJson(testManifest()), manifest_report);
    EXPECT_TRUE(manifest_report.clean())
        << manifest_report.describe();
    EXPECT_EQ(ms.inputs, 1u);
    EXPECT_EQ(ms.metrics, kNumMetrics);
    EXPECT_EQ(ms.reports, 2u);
}

TEST(DiagLintTest, StructuralDefectsCaught)
{
    analysis::Report not_json;
    analysis::lintBundleText("{nope", not_json);
    EXPECT_TRUE(not_json.has("diag.parse"));

    analysis::Report wrong_kind;
    analysis::lintBundleText(
        "{\"kind\": \"heapmd.manifest\", \"schemaVersion\": 1}",
        wrong_kind);
    EXPECT_TRUE(wrong_kind.has("diag.kind"));

    analysis::Report bad_version;
    analysis::lintManifestText(
        "{\"kind\": \"heapmd.manifest\", \"schemaVersion\": 7}",
        bad_version);
    EXPECT_TRUE(bad_version.has("diag.version"));
}

TEST(DiagLintTest, SemanticDefectsCaught)
{
    IncidentBundle bundle = diag::makeIncidentBundle(
        testReport(), testRegistry(), testSeries(30));
    bundle.metric = "NoSuchMetric";
    bundle.calibratedMin = 50.0; // above calibratedMax
    analysis::Report report;
    analysis::lintBundleText(diag::bundleToJson(bundle), report);
    EXPECT_TRUE(report.has("diag.bad-metric"));
    EXPECT_TRUE(report.has("diag.range-inverted"));

    RunManifest manifest = testManifest();
    manifest.reportsTotal = 9; // tallies sum to 2
    manifest.inputs[0].fingerprint = "sha256:deadbeef";
    std::swap(manifest.counters[0], manifest.counters[1]);
    analysis::Report mreport;
    analysis::lintManifestText(diag::manifestToJson(manifest),
                               mreport);
    EXPECT_TRUE(mreport.has("diag.report-count"));
    EXPECT_TRUE(mreport.has("diag.hash-format"));
    EXPECT_TRUE(mreport.has("diag.counter-order"));
}

TEST(DiagLintTest, SuspectMismatchCaught)
{
    IncidentBundle bundle = diag::makeIncidentBundle(
        testReport(), testRegistry(), testSeries(30));
    // Claim steady_work is the top suspect; the context log disagrees.
    std::swap(bundle.suspects[0], bundle.suspects[1]);
    analysis::Report report;
    analysis::lintBundleText(diag::bundleToJson(bundle), report);
    EXPECT_TRUE(report.has("diag.suspect-mismatch"));
}

TEST(HashTest, Fingerprints)
{
    const std::uint64_t h = fnv1a64("hello");
    EXPECT_EQ(h, fnv1a64("hello"));
    EXPECT_NE(h, fnv1a64("hellp"));
    const std::string fp = hashFingerprint(h);
    EXPECT_TRUE(isHashFingerprint(fp)) << fp;
    EXPECT_FALSE(isHashFingerprint("fnv1a:xyz"));
    EXPECT_FALSE(isHashFingerprint("sha256:0123456789abcdef"));
    EXPECT_FALSE(isHashFingerprint(""));
}

} // namespace

} // namespace heapmd
