/**
 * @file
 * Unit tests of the instrumented data structures: heap-graph shape,
 * correctness of operations, and fault-injection effects.
 */

#include <gtest/gtest.h>

#include <map>

#include "istl/adj_graph.hh"
#include "istl/binary_tree.hh"
#include "istl/btree.hh"
#include "istl/buffer_pool.hh"
#include "istl/circular_list.hh"
#include "istl/descriptor_table.hh"
#include "istl/dll.hh"
#include "istl/handle_pool.hh"
#include "istl/hash_table.hh"
#include "istl/oct_tree.hh"

namespace heapmd
{

namespace
{

class IstlTest : public ::testing::Test
{
  protected:
    IstlTest()
        : process_(), heap_(process_), faults_(),
          ctx_(heap_, faults_, 42)
    {
    }

    /** Count live graph vertices with the given indegree. */
    std::uint64_t
    countIndeg(std::size_t d) const
    {
        std::uint64_t n = 0;
        process_.graph().forEachObject([&](const ObjectRecord &rec) {
            n += rec.indegree() == d ? 1 : 0;
        });
        return n;
    }

    Process process_;
    HeapApi heap_;
    FaultPlan faults_;
    istl::Context ctx_;
};

// ---------------------------------------------------------------- Dll

TEST_F(IstlTest, DllPushAndSize)
{
    istl::Dll dll(ctx_, 0);
    const Addr a = dll.pushBack();
    const Addr b = dll.pushBack();
    const Addr c = dll.pushFront();
    EXPECT_EQ(dll.size(), 3u);
    EXPECT_EQ(dll.head(), c);
    EXPECT_EQ(dll.tail(), b);
    EXPECT_EQ(dll.nodeAt(1), a);
    EXPECT_EQ(process_.graph().vertexCount(), 3u);
}

TEST_F(IstlTest, DllInteriorNodesHaveDegreeTwo)
{
    istl::Dll dll(ctx_, 0);
    for (int i = 0; i < 10; ++i)
        dll.pushBack();
    // 8 interior nodes: indegree 2 (prev's next + next's prev).
    EXPECT_EQ(countIndeg(2), 8u);
    EXPECT_EQ(countIndeg(1), 2u); // the two ends
    process_.graph().checkConsistency();
}

TEST_F(IstlTest, DllPopAndRemove)
{
    istl::Dll dll(ctx_, 16);
    dll.pushBack();
    const Addr b = dll.pushBack();
    dll.pushBack();
    dll.remove(b);
    EXPECT_EQ(dll.size(), 2u);
    dll.popFront();
    dll.popFront();
    EXPECT_EQ(dll.size(), 0u);
    EXPECT_EQ(process_.graph().vertexCount(), 0u);
    EXPECT_EQ(heap_.liveCount(), 0u);
}

TEST_F(IstlTest, DllClearFreesPayloads)
{
    istl::Dll dll(ctx_, 32);
    for (int i = 0; i < 5; ++i)
        dll.pushBack();
    EXPECT_EQ(process_.graph().vertexCount(), 10u); // nodes + payloads
    dll.clear();
    EXPECT_EQ(process_.graph().vertexCount(), 0u);
}

TEST_F(IstlTest, DllInsertAfterLinksBothDirections)
{
    istl::Dll dll(ctx_, 0);
    const Addr a = dll.pushBack();
    const Addr b = dll.pushBack();
    const Addr mid = dll.insertAfter(a);
    EXPECT_EQ(dll.size(), 3u);
    EXPECT_EQ(heap_.loadPtr(a + istl::Dll::kNextOff), mid);
    EXPECT_EQ(heap_.loadPtr(mid + istl::Dll::kPrevOff), a);
    EXPECT_EQ(heap_.loadPtr(mid + istl::Dll::kNextOff), b);
    EXPECT_EQ(heap_.loadPtr(b + istl::Dll::kPrevOff), mid);
}

TEST_F(IstlTest, DllMissingPrevFaultLeavesIndegreeOne)
{
    faults_.enable(FaultKind::DllMissingPrev, 1.0);
    istl::Dll dll(ctx_, 0);
    const Addr a = dll.pushBack(); // pushBack is not the buggy site
    dll.pushBack();
    const Addr mid = dll.insertAfter(a);
    // The Figure 1 bug: mid's prev and succ's prev not updated.
    EXPECT_EQ(heap_.loadPtr(mid + istl::Dll::kPrevOff), kNullAddr);
    const ObjectRecord *rec = process_.graph().objectAt(mid);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->indegree(), 1u); // only a's next
}

TEST_F(IstlTest, DllInsertAtCursorSpreadsPositions)
{
    istl::Dll dll(ctx_, 0);
    for (int i = 0; i < 20; ++i)
        dll.pushBack();
    const Addr n = dll.insertAtCursor(7);
    EXPECT_NE(n, kNullAddr);
    EXPECT_EQ(dll.size(), 21u);
    EXPECT_NE(dll.cursor(), kNullAddr);
}

TEST_F(IstlTest, DllSharedPayloadNotFreedWithoutFault)
{
    istl::Dll dll(ctx_, 0);
    const Addr node = dll.pushBack();
    const Addr payload = heap_.malloc(64);
    dll.sharePayload(node, payload);
    dll.popFront();
    EXPECT_TRUE(heap_.isLive(payload)); // borrowed, not freed
    heap_.free(payload);
}

TEST_F(IstlTest, DllSharedStateFreeFaultFreesSharedPayload)
{
    faults_.enable(FaultKind::SharedStateFree, 1.0);
    istl::Dll dll(ctx_, 0);
    const Addr node = dll.pushBack();
    const Addr payload = heap_.malloc(64);
    dll.sharePayload(node, payload);
    dll.popFront();
    EXPECT_FALSE(heap_.isLive(payload)); // the injected bug
}

TEST_F(IstlTest, DllAdoptPayloadIsFreedWithNode)
{
    istl::Dll dll(ctx_, 0);
    const Addr node = dll.pushBack();
    const Addr payload = heap_.malloc(64);
    dll.adoptPayload(node, payload);
    dll.popFront();
    EXPECT_FALSE(heap_.isLive(payload));
}

// ------------------------------------------------------- CircularList

TEST_F(IstlTest, CircularRingShape)
{
    istl::CircularList ring(ctx_, 0);
    for (int i = 0; i < 8; ++i)
        ring.insert();
    EXPECT_EQ(ring.size(), 8u);
    // Every ring node has indegree exactly 1 and outdegree 1.
    EXPECT_EQ(countIndeg(1), 8u);
    // Walking next 8 times returns to the head.
    Addr walk = ring.head();
    for (int i = 0; i < 8; ++i)
        walk = heap_.loadPtr(walk + istl::CircularList::kNextOff);
    EXPECT_EQ(walk, ring.head());
}

TEST_F(IstlTest, CircularRemoveHeadRepairsRing)
{
    istl::CircularList ring(ctx_, 0);
    for (int i = 0; i < 5; ++i)
        ring.insert();
    ring.removeHead();
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(process_.graph().vertexCount(), 4u);
    // Ring is intact: 4 steps return to head.
    Addr walk = ring.head();
    for (int i = 0; i < 4; ++i)
        walk = heap_.loadPtr(walk + istl::CircularList::kNextOff);
    EXPECT_EQ(walk, ring.head());
    EXPECT_EQ(countIndeg(1), 4u);
}

TEST_F(IstlTest, CircularDanglingTailFault)
{
    faults_.enable(FaultKind::CircularDanglingTail, 1.0);
    istl::CircularList ring(ctx_, 0);
    for (int i = 0; i < 5; ++i)
        ring.insert();
    const Addr old_head = ring.head();
    ring.removeHead();
    // The Figure 12 bug: the predecessor still stores the freed
    // head's address (dangling), so its graph edge is gone.
    EXPECT_EQ(process_.graph().vertexCount(), 4u);
    std::uint64_t outdeg_zero = 0;
    process_.graph().forEachObject([&](const ObjectRecord &rec) {
        outdeg_zero += rec.outdegree() == 0 ? 1 : 0;
    });
    EXPECT_EQ(outdeg_zero, 1u); // the node that pointed at old head
    EXPECT_EQ(process_.graph().objectAt(old_head), nullptr);
}

TEST_F(IstlTest, CircularSingletonRemove)
{
    istl::CircularList ring(ctx_, 16);
    ring.insert();
    ring.removeHead();
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.head(), kNullAddr);
    EXPECT_EQ(heap_.liveCount(), 0u);
}

TEST_F(IstlTest, CircularRotate)
{
    istl::CircularList ring(ctx_, 0);
    ring.insert();
    ring.insert();
    const Addr before = ring.head();
    ring.rotate();
    EXPECT_NE(ring.head(), before);
    ring.rotate();
    EXPECT_EQ(ring.head(), before);
}

// --------------------------------------------------------- BinaryTree

TEST_F(IstlTest, BstInsertAndFind)
{
    istl::BinaryTree tree(ctx_, 0);
    tree.insert(50);
    tree.insert(30);
    tree.insert(70);
    tree.insert(60);
    EXPECT_EQ(tree.size(), 4u);
    EXPECT_NE(tree.find(60), kNullAddr);
    EXPECT_EQ(tree.find(99), kNullAddr);
}

TEST_F(IstlTest, BstParentPointersGiveChildrenExtraIndegree)
{
    istl::BinaryTree tree(ctx_, 0);
    tree.insert(50);
    tree.insert(30);
    tree.insert(70);
    // Root: indeg 2 (both children's parent pointers), out 2.
    const ObjectRecord *root =
        process_.graph().objectAt(tree.root());
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->indegree(), 2u);
    EXPECT_EQ(root->outdegree(), 2u);
    // Leaves: indeg 1 (parent's child slot), outdeg 1 (parent ptr).
    EXPECT_EQ(countIndeg(1), 2u);
}

TEST_F(IstlTest, BstSpliceNormalKeepsBackPointer)
{
    istl::BinaryTree tree(ctx_, 0);
    for (std::uint64_t k : {50, 30, 70, 20, 40, 60, 80})
        tree.insert(k);
    const std::uint64_t before = tree.size();
    const Addr fresh = tree.spliceAbove();
    ASSERT_NE(fresh, kNullAddr);
    EXPECT_EQ(tree.size(), before + 1);
    const ObjectRecord *rec = process_.graph().objectAt(fresh);
    ASSERT_NE(rec, nullptr);
    // Correct splice: child's parent pointer updated -> indeg >= 1,
    // and when it has a child, indeg 2 (unless spliced above root).
    EXPECT_GE(rec->indegree(), 1u);
}

TEST_F(IstlTest, BstSpliceFaultLeavesIndegreeOne)
{
    faults_.enable(FaultKind::TreeMissingParent, 1.0);
    istl::BinaryTree tree(ctx_, 0);
    for (std::uint64_t k : {50, 30, 70, 20, 40, 60, 80})
        tree.insert(k);
    for (int i = 0; i < 10; ++i) {
        const Addr fresh = tree.spliceAbove();
        ASSERT_NE(fresh, kNullAddr);
        const ObjectRecord *rec = process_.graph().objectAt(fresh);
        ASSERT_NE(rec, nullptr);
        // The Figure 10 bug: missing back-pointer from the child.
        EXPECT_LE(rec->indegree(), 1u);
    }
}

TEST_F(IstlTest, BstBuildFullCounts)
{
    istl::BinaryTree tree(ctx_, 0);
    tree.buildFull(5);
    EXPECT_EQ(tree.size(), 31u); // 2^5 - 1
    EXPECT_EQ(process_.graph().vertexCount(), 31u);
    tree.clear();
    EXPECT_EQ(process_.graph().vertexCount(), 0u);
}

TEST_F(IstlTest, BstSingleChildFaultShrinksTree)
{
    faults_.enable(FaultKind::SingleChildTree, 1.0);
    istl::BinaryTree tree(ctx_, 0);
    tree.buildFull(5);
    EXPECT_EQ(tree.size(), 5u); // a single path of 5 nodes
    // Every internal node has exactly one child.
    std::uint64_t out2 = 0;
    process_.graph().forEachObject([&](const ObjectRecord &rec) {
        // out: child(ren) + parent pointer
        out2 += rec.outdegree() >= 3 ? 1 : 0;
    });
    EXPECT_EQ(out2, 0u);
}

TEST_F(IstlTest, BstRemoveRandomLeafShrinks)
{
    istl::BinaryTree tree(ctx_, 16);
    for (std::uint64_t k : {50, 30, 70, 20, 40})
        tree.insert(k);
    const std::uint64_t before = tree.size();
    tree.removeRandomLeaf();
    EXPECT_EQ(tree.size(), before - 1);
    process_.graph().checkConsistency();
}

TEST_F(IstlTest, BstDeepSplicedTreeClearsCompletely)
{
    istl::BinaryTree tree(ctx_, 0);
    tree.insert(500000);
    for (int i = 0; i < 300; ++i)
        tree.spliceAbove(); // very deep chains
    tree.clear();
    EXPECT_EQ(process_.graph().vertexCount(), 0u);
    EXPECT_EQ(heap_.liveCount(), 0u);
}

// ------------------------------------------------------------ OctTree

TEST_F(IstlTest, OctTreeFullBuildCounts)
{
    istl::OctTree oct(ctx_);
    oct.build(2, 1.0); // 1 + 8 + 64
    EXPECT_EQ(oct.size(), 73u);
    EXPECT_EQ(process_.graph().vertexCount(), 73u);
    // All non-root nodes have indegree exactly 1.
    EXPECT_EQ(countIndeg(1), 72u);
    EXPECT_EQ(countIndeg(0), 1u);
}

TEST_F(IstlTest, OctTreeDagFaultSharesSubtrees)
{
    faults_.enable(FaultKind::OctTreeDag, 0.8);
    istl::OctTree oct(ctx_);
    oct.build(3, 1.0);
    // Sharing means far fewer allocations than the full 585 ...
    EXPECT_LT(oct.size(), 400u);
    // ... and some nodes have indegree >= 2.
    std::uint64_t shared = 0;
    process_.graph().forEachObject([&](const ObjectRecord &rec) {
        shared += rec.indegree() >= 2 ? 1 : 0;
    });
    EXPECT_GT(shared, 0u);
    // DAG-safe teardown frees everything exactly once.
    oct.clear();
    EXPECT_EQ(process_.graph().vertexCount(), 0u);
    EXPECT_EQ(process_.graph().stats().unknownFrees, 0u);
}

TEST_F(IstlTest, OctTreeTraverseVisitsOnce)
{
    istl::OctTree oct(ctx_);
    oct.build(2, 1.0);
    const Tick before = process_.now();
    oct.traverse();
    // 73 touches + child loads; bounded well below double-visiting.
    EXPECT_LT(process_.now() - before, 73u * 10u);
}

// ---------------------------------------------------------- HashTable

TEST_F(IstlTest, HashInsertFindErase)
{
    istl::HashTable table(ctx_, 64, 16);
    table.insert(100);
    table.insert(200);
    EXPECT_EQ(table.size(), 2u);
    EXPECT_NE(table.find(100), kNullAddr);
    EXPECT_EQ(table.find(300), kNullAddr);
    EXPECT_NE(table.payloadOf(100), kNullAddr);
    EXPECT_TRUE(table.erase(100));
    EXPECT_FALSE(table.erase(100));
    EXPECT_EQ(table.size(), 1u);
    EXPECT_EQ(table.find(100), kNullAddr);
}

TEST_F(IstlTest, HashAgainstReferenceMap)
{
    istl::HashTable table(ctx_, 32, 0);
    std::map<std::uint64_t, bool> reference;
    Rng rng(7);
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t key = 1 + rng.below(200);
        if (rng.chance(0.6)) {
            if (!reference.count(key)) {
                table.insert(key);
                reference[key] = true;
            }
        } else {
            const bool erased = table.erase(key);
            EXPECT_EQ(erased, reference.erase(key) > 0);
        }
    }
    for (const auto &[key, present] : reference) {
        (void)present;
        EXPECT_NE(table.find(key), kNullAddr) << "key " << key;
    }
    EXPECT_EQ(table.size(), reference.size());
}

TEST_F(IstlTest, HashClearEmptiesChains)
{
    istl::HashTable table(ctx_, 16, 24);
    for (std::uint64_t k = 1; k <= 40; ++k)
        table.insert(k);
    table.clear();
    EXPECT_EQ(table.size(), 0u);
    // Only the bucket array object remains.
    EXPECT_EQ(process_.graph().vertexCount(), 1u);
}

TEST_F(IstlTest, BadHashFaultConcentratesChains)
{
    faults_.enable(FaultKind::BadHashFunction, 1.0);
    istl::HashTable table(ctx_, 64, 0);
    for (std::uint64_t k = 1; k <= 128; ++k)
        table.insert(k);
    std::uint64_t used = 0;
    for (std::uint64_t b = 0; b < table.bucketCount(); ++b)
        used += table.chainLength(b) > 0 ? 1 : 0;
    EXPECT_LE(used, 7u); // key % 7
    // Entries are still all findable (it is slow, not wrong).
    for (std::uint64_t k = 1; k <= 128; ++k)
        EXPECT_NE(table.find(k), kNullAddr);
}

TEST_F(IstlTest, GoodHashSpreadsChains)
{
    istl::HashTable table(ctx_, 64, 0);
    for (std::uint64_t k = 1; k <= 128; ++k)
        table.insert(k);
    std::uint64_t used = 0;
    for (std::uint64_t b = 0; b < table.bucketCount(); ++b)
        used += table.chainLength(b) > 0 ? 1 : 0;
    EXPECT_GT(used, 40u);
}

// -------------------------------------------------------------- BTree

TEST_F(IstlTest, BTreeInsertAndContains)
{
    istl::BTree btree(ctx_);
    for (std::uint64_t k = 1; k <= 200; ++k)
        btree.insert(k * 7 % 1009 + 1);
    EXPECT_EQ(btree.size(), 200u);
    EXPECT_GT(btree.nodeCount(), 20u);
    for (std::uint64_t k = 1; k <= 200; ++k)
        EXPECT_TRUE(btree.contains(k * 7 % 1009 + 1));
    EXPECT_FALSE(btree.contains(999999));
}

TEST_F(IstlTest, BTreeEraseFromLeaf)
{
    istl::BTree btree(ctx_);
    for (std::uint64_t k = 1; k <= 64; ++k)
        btree.insert(k);
    // Some keys are in leaves; erase those that are.
    std::uint64_t erased = 0;
    for (std::uint64_t k = 1; k <= 64; ++k)
        erased += btree.eraseFromLeaf(k) ? 1 : 0;
    EXPECT_GT(erased, 32u); // most keys live in leaves
    EXPECT_EQ(btree.size(), 64u - erased);
}

TEST_F(IstlTest, BTreeClearFreesAllNodes)
{
    istl::BTree btree(ctx_);
    for (std::uint64_t k = 1; k <= 300; ++k)
        btree.insert(1 + (k * 37) % 5000);
    btree.clear();
    EXPECT_EQ(btree.nodeCount(), 0u);
    EXPECT_EQ(process_.graph().vertexCount(), 0u);
}

TEST_F(IstlTest, BTreeInternalNodesHaveHighOutdegree)
{
    istl::BTree btree(ctx_);
    for (std::uint64_t k = 1; k <= 400; ++k)
        btree.insert(1 + (k * 613) % 9001);
    std::uint64_t internal = 0;
    process_.graph().forEachObject([&](const ObjectRecord &rec) {
        internal += rec.outdegree() >= 4 ? 1 : 0;
    });
    EXPECT_GT(internal, 0u);
    process_.graph().checkConsistency();
}

TEST_F(IstlTest, BTreeDuplicateKeysAllowed)
{
    istl::BTree btree(ctx_);
    btree.insert(5);
    btree.insert(5);
    btree.insert(5);
    EXPECT_EQ(btree.size(), 3u);
    EXPECT_TRUE(btree.contains(5));
}

TEST_F(IstlTest, BTreeLeafChainIsComplete)
{
    istl::BTree btree(ctx_);
    for (std::uint64_t k = 1; k <= 300; ++k)
        btree.insert(1 + (k * 37) % 5000);
    const std::uint64_t leaves = btree.leafCount();
    EXPECT_GT(leaves, 10u);
    // Every leaf is reachable through the next-leaf chain.
    EXPECT_EQ(btree.scanLeaves(), leaves);
    // Chained leaves have outdegree 1 (next leaf) except the last.
    std::uint64_t out1 = 0;
    process_.graph().forEachObject([&](const ObjectRecord &rec) {
        out1 += rec.outdegree() == 1 ? 1 : 0;
    });
    EXPECT_GE(out1, leaves - 1);
}

TEST_F(IstlTest, BTreeLeafUnlinkedFaultBreaksChain)
{
    faults_.enable(FaultKind::BTreeLeafUnlinked, 1.0);
    istl::BTree btree(ctx_);
    for (std::uint64_t k = 1; k <= 300; ++k)
        btree.insert(1 + (k * 37) % 5000);
    const std::uint64_t leaves = btree.leafCount();
    // The Section 4.5 invariant bug: split siblings never enter the
    // chain, so the scan reaches only the first leaf.
    EXPECT_EQ(btree.scanLeaves(), 1u);
    // Unlinked leaves have indegree 1 / outdegree 0 instead of 2 / 1.
    std::uint64_t out0_in1 = 0;
    process_.graph().forEachObject([&](const ObjectRecord &rec) {
        if (rec.outdegree() == 0 && rec.indegree() == 1)
            ++out0_in1;
    });
    EXPECT_GE(out0_in1, leaves - 1);
    btree.clear();
    EXPECT_EQ(process_.graph().vertexCount(), 0u);
}

// --------------------------------------------------------- HandlePool

TEST_F(IstlTest, HandlePoolShape)
{
    istl::HandlePool pool(ctx_, 48);
    for (int i = 0; i < 20; ++i)
        pool.acquire();
    EXPECT_EQ(pool.size(), 20u);
    EXPECT_EQ(process_.graph().vertexCount(), 40u);
    // Handles: indegree 0, outdegree 1; payloads: indegree 1, out 0.
    std::uint64_t handle_shape = 0, payload_shape = 0;
    process_.graph().forEachObject([&](const ObjectRecord &rec) {
        if (rec.indegree() == 0 && rec.outdegree() == 1)
            ++handle_shape;
        if (rec.indegree() == 1 && rec.outdegree() == 0)
            ++payload_shape;
    });
    EXPECT_EQ(handle_shape, 20u);
    EXPECT_EQ(payload_shape, 20u);
}

TEST_F(IstlTest, HandlePoolChurnAndClear)
{
    istl::HandlePool pool(ctx_, 32);
    for (int i = 0; i < 10; ++i)
        pool.acquire();
    pool.releaseRandom();
    pool.releaseRandom();
    EXPECT_EQ(pool.size(), 8u);
    EXPECT_EQ(process_.graph().vertexCount(), 16u);
    pool.retargetRandom(); // payload swapped, counts unchanged
    EXPECT_EQ(process_.graph().vertexCount(), 16u);
    pool.touchAll();
    pool.clear();
    EXPECT_EQ(process_.graph().vertexCount(), 0u);
    EXPECT_EQ(heap_.liveCount(), 0u);
    process_.graph().checkConsistency();
}

TEST_F(IstlTest, OctTreeBudgetIsExact)
{
    istl::OctTree oct(ctx_);
    oct.buildBudget(500, 0.85);
    EXPECT_EQ(oct.size(), 500u);
    EXPECT_EQ(process_.graph().vertexCount(), 500u);
    // Still a tree: every non-root node has indegree 1.
    EXPECT_EQ(countIndeg(1), 499u);
    oct.clear();
    EXPECT_EQ(process_.graph().vertexCount(), 0u);
}

TEST_F(IstlTest, OctTreeBudgetDagFault)
{
    faults_.enable(FaultKind::OctTreeDag, 0.5);
    istl::OctTree oct(ctx_);
    oct.buildBudget(400, 0.9);
    std::uint64_t shared = 0;
    process_.graph().forEachObject([&](const ObjectRecord &rec) {
        shared += rec.indegree() >= 2 ? 1 : 0;
    });
    EXPECT_GT(shared, 0u);
    oct.clear();
    EXPECT_EQ(process_.graph().stats().unknownFrees, 0u);
}

TEST_F(IstlTest, BstUnspliceInvertsSplice)
{
    istl::BinaryTree tree(ctx_, 0);
    for (std::uint64_t k : {50, 30, 70, 20, 40, 60, 80})
        tree.insert(k);
    const std::uint64_t before = tree.size();
    ASSERT_NE(tree.spliceAbove(), kNullAddr);
    EXPECT_EQ(tree.size(), before + 1);
    EXPECT_TRUE(tree.unspliceRandom());
    EXPECT_EQ(tree.size(), before);
    process_.graph().checkConsistency();
    tree.clear();
    EXPECT_EQ(heap_.liveCount(), 0u);
}

TEST_F(IstlTest, BuildFullMissingParentFault)
{
    faults_.enable(FaultKind::TreeMissingParent, 1.0);
    istl::BinaryTree tree(ctx_, 0);
    tree.buildFull(5);
    // Without child->parent back-pointers every node has indegree
    // exactly 1 (its parent's child slot), except the root.
    EXPECT_EQ(countIndeg(1), tree.size() - 1);
    EXPECT_EQ(countIndeg(0), 1u);
}

// ----------------------------------------------------------- AdjGraph

TEST_F(IstlTest, AdjGraphEdgesAndRemoval)
{
    istl::AdjGraph graph(ctx_, 0);
    const Addr u = graph.addVertex();
    const Addr v = graph.addVertex();
    graph.addEdge(u, v);
    graph.addEdge(u, v);
    EXPECT_EQ(graph.edgeCount(), 2u);
    // 2 vertices + 2 edge nodes.
    EXPECT_EQ(process_.graph().vertexCount(), 4u);
    graph.removeFirstEdge(u);
    EXPECT_EQ(graph.edgeCount(), 1u);
    graph.clear();
    EXPECT_EQ(process_.graph().vertexCount(), 0u);
}

TEST_F(IstlTest, AdjGraphBuildRandomSizes)
{
    istl::AdjGraph graph(ctx_, 16);
    graph.buildRandom(50, 2.0);
    EXPECT_EQ(graph.vertexCount(), 50u);
    EXPECT_EQ(graph.edgeCount(), 100u);
    // 50 vertices + 50 payloads + 100 edge nodes.
    EXPECT_EQ(process_.graph().vertexCount(), 200u);
}

TEST_F(IstlTest, LocalizationFaultMakesStarGraph)
{
    faults_.enable(FaultKind::LocalizationBug, 1.0);
    istl::AdjGraph graph(ctx_, 0);
    graph.buildRandom(50, 3.0);
    // Nearly all edge-list nodes hang off the hub vertex.
    const Addr hub = graph.vertexAt(0);
    std::uint64_t hub_chain = 0;
    Addr edge = heap_.loadPtr(hub + istl::AdjGraph::kEdgeHeadOff);
    while (edge != kNullAddr) {
        ++hub_chain;
        edge = heap_.loadPtr(edge + istl::AdjGraph::kENextOff);
    }
    EXPECT_GT(hub_chain, 120u); // ~95% of 150 edges
}

// --------------------------------------------------------- BufferPool

TEST_F(IstlTest, BufferPoolLifecycle)
{
    istl::BufferPool pool(ctx_);
    const std::size_t a = pool.acquire(100);
    const std::size_t b = pool.acquire(200);
    EXPECT_EQ(pool.liveCount(), 2u);
    EXPECT_NE(pool.bufferAt(a), kNullAddr);
    pool.fill(a, 4);
    pool.grow(a);
    EXPECT_EQ(heap_.blockSize(pool.bufferAt(a)), 200u);
    pool.release(a);
    pool.release(a); // idempotent
    EXPECT_EQ(pool.liveCount(), 1u);
    pool.touchAll();
    pool.clear();
    EXPECT_EQ(pool.liveCount(), 0u);
    EXPECT_EQ(process_.graph().vertexCount(), 0u);
    (void)b;
}

TEST_F(IstlTest, BuffersAreRootsAndLeaves)
{
    istl::BufferPool pool(ctx_);
    pool.acquire(64);
    pool.acquire(64);
    EXPECT_EQ(countIndeg(0), 2u);
    EXPECT_EQ(process_.graph().edgeCount(), 0u);
}

// ---------------------------------------------------- DescriptorTable

TEST_F(IstlTest, DescriptorPopulateAndCorrectTransfer)
{
    istl::DescriptorTable table(ctx_, 8, 48);
    istl::Dll sink(ctx_, 0);
    table.populate(3);
    const Addr desc = table.descriptorAt(3);
    ASSERT_NE(desc, kNullAddr);
    const Addr leaked = table.transfer(3, sink);
    EXPECT_EQ(leaked, kNullAddr); // correct path
    EXPECT_EQ(table.descriptorAt(3), kNullAddr);
    EXPECT_EQ(sink.size(), 1u);
    // The descriptor now belongs to the sink node.
    EXPECT_EQ(heap_.loadPtr(sink.head() + istl::Dll::kPayloadOff),
              desc);
    sink.clear();
    EXPECT_FALSE(heap_.isLive(desc)); // sink owned it
}

TEST_F(IstlTest, DescriptorTypoLeakFault)
{
    faults_.enable(FaultKind::TypoLeak, 1.0);
    istl::DescriptorTable table(ctx_, 8, 48);
    istl::Dll sink(ctx_, 0);
    for (std::uint64_t i = 0; i < 8; ++i)
        table.populate(i);
    const Addr victim = table.descriptorAt(5);
    const Addr leaked = table.transfer(5, sink);
    // The Figure 11 bug: slot 5's descriptor lost its only reference.
    EXPECT_EQ(leaked, victim);
    EXPECT_TRUE(heap_.isLive(victim));
    const ObjectRecord *rec = process_.graph().objectAt(victim);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->indegree(), 0u); // unreachable root: leaked
}

TEST_F(IstlTest, DescriptorTouchAllAndClear)
{
    istl::DescriptorTable table(ctx_, 4, 32);
    for (std::uint64_t i = 0; i < 4; ++i)
        table.populate(i);
    table.touchAll();
    table.clear();
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(table.descriptorAt(i), kNullAddr);
}

} // namespace

} // namespace heapmd
