/**
 * @file
 * Unit tests of the online anomaly detector: range checks, excursion
 * deduplication, slope-armed call-stack logging.
 */

#include <gtest/gtest.h>

#include "detector/anomaly_detector.hh"

namespace heapmd
{

namespace
{

HeapModel
singleMetricModel(MetricId id, double min, double max)
{
    HeapModel model;
    HeapModel::Entry e;
    e.id = id;
    e.minValue = min;
    e.maxValue = max;
    model.addEntry(e);
    return model;
}

MetricSample
sampleAt(MetricId id, double value, std::uint64_t point)
{
    MetricSample s;
    s.pointIndex = point;
    s.tick = point * 100;
    s.vertexCount = 1000;
    // Park every metric mid-range so only the metric under test can
    // trip the detector, then override it.
    for (MetricId other : kAllMetrics)
        s.values[metricIndex(other)] = 15.0;
    s.values[metricIndex(id)] = value;
    return s;
}

/** Feed a value sequence into a fresh detector; return it. */
class DetectorHarness
{
  public:
    DetectorHarness(MetricId id, double min, double max,
                    DetectorConfig cfg = {})
        : id_(id), model_(singleMetricModel(id, min, max)),
          detector_(model_, cfg)
    {
    }

    void
    feed(const std::vector<double> &values)
    {
        Process process;
        for (double v : values)
            detector_.onSample(sampleAt(id_, v, point_++), process);
    }

    AnomalyDetector &detector() { return detector_; }

  private:
    MetricId id_;
    HeapModel model_;
    AnomalyDetector detector_;
    std::uint64_t point_ = 0;
};

// Default slack for range [10, 20]: max(0.25 * 10, 1.0) = 2.5, so the
// effective detection bounds are [7.5, 22.5].

TEST(AnomalyDetectorTest, InRangeValuesProduceNoReports)
{
    DetectorHarness h(MetricId::Leaves, 10.0, 20.0);
    h.feed({12, 14, 16, 18, 20, 22, 7.6});
    h.detector().finish();
    EXPECT_TRUE(h.detector().reports().empty());
    EXPECT_EQ(h.detector().samplesChecked(), 7u);
}

TEST(AnomalyDetectorTest, ViolationAboveSlackReported)
{
    DetectorHarness h(MetricId::Leaves, 10.0, 20.0);
    h.feed({15, 18, 21, 24, 26, 27, 27, 27});
    h.detector().finish();
    ASSERT_EQ(h.detector().reports().size(), 1u);
    const BugReport &r = h.detector().reports()[0];
    EXPECT_EQ(r.klass, BugClass::HeapAnomaly);
    EXPECT_EQ(r.metric, MetricId::Leaves);
    EXPECT_EQ(r.direction, AnomalyDirection::AboveMax);
    EXPECT_GT(r.observedValue, 22.5);
    EXPECT_DOUBLE_EQ(r.calibratedMin, 10.0);
    EXPECT_DOUBLE_EQ(r.calibratedMax, 20.0);
}

TEST(AnomalyDetectorTest, ViolationBelowReported)
{
    DetectorHarness h(MetricId::Indeg1, 10.0, 20.0);
    h.feed({15, 12, 9, 6, 5, 5, 5, 5});
    h.detector().finish();
    ASSERT_EQ(h.detector().reports().size(), 1u);
    EXPECT_EQ(h.detector().reports()[0].direction,
              AnomalyDirection::BelowMin);
}

TEST(AnomalyDetectorTest, SustainedViolationIsOneExcursion)
{
    DetectorHarness h(MetricId::Leaves, 10.0, 20.0);
    std::vector<double> values(40, 30.0);
    h.feed(values);
    h.detector().finish();
    EXPECT_EQ(h.detector().reports().size(), 1u);
}

TEST(AnomalyDetectorTest, SeparateExcursionsAreSeparateReports)
{
    DetectorConfig cfg;
    cfg.afterSamples = 0; // finalize immediately at the crossing
    DetectorHarness h(MetricId::Leaves, 10.0, 20.0, cfg);
    h.feed({15, 30, 15, 15, 30, 15});
    h.detector().finish();
    EXPECT_EQ(h.detector().reports().size(), 2u);
}

TEST(AnomalyDetectorTest, PendingReportFlushedByFinish)
{
    DetectorConfig cfg;
    cfg.afterSamples = 10; // wants 10 post-crossing samples
    DetectorHarness h(MetricId::Leaves, 10.0, 20.0, cfg);
    h.feed({15, 30}); // run ends right after the crossing
    EXPECT_TRUE(h.detector().reports().empty());
    h.detector().finish();
    EXPECT_EQ(h.detector().reports().size(), 1u);
}

TEST(AnomalyDetectorTest, ReportCarriesContextLog)
{
    DetectorConfig cfg;
    cfg.afterSamples = 2;
    DetectorHarness h(MetricId::Leaves, 10.0, 20.0, cfg);
    // Approach the max from below (arming), cross, then 2 more.
    h.feed({15, 19, 21, 22, 25, 26, 26});
    h.detector().finish();
    ASSERT_EQ(h.detector().reports().size(), 1u);
    EXPECT_FALSE(h.detector().reports()[0].contextLog.empty());
}

TEST(AnomalyDetectorTest, MetricsOutsideModelIgnored)
{
    DetectorHarness h(MetricId::Leaves, 10.0, 20.0);
    Process process;
    // Roots is not in the model: wild values are fine.
    MetricSample s = sampleAt(MetricId::Roots, 99.0, 0);
    h.detector().onSample(s, process);
    h.detector().finish();
    EXPECT_TRUE(h.detector().reports().empty());
}

TEST(AnomalyDetectorTest, NarrowRangeGetsAbsoluteSlack)
{
    // Span 0.03 -> slack = max(0.25 * 0.03, 1.0) = 1.0 percentage
    // point: tiny wiggle cannot fire.
    DetectorHarness h(MetricId::Roots, 0.04, 0.07);
    h.feed({0.05, 0.10, 0.90, 1.00, 0.05});
    h.detector().finish();
    EXPECT_TRUE(h.detector().reports().empty());

    DetectorHarness h2(MetricId::Roots, 0.04, 0.07);
    h2.feed({0.05, 1.5, 1.5, 1.5, 1.5});
    h2.detector().finish();
    EXPECT_EQ(h2.detector().reports().size(), 1u);
}

TEST(AnomalyDetectorTest, AttachRegistersWithProcess)
{
    const HeapModel model =
        singleMetricModel(MetricId::Leaves, 0.0, 99.0);
    ProcessConfig pcfg;
    pcfg.metricFrequency = 1;
    Process process(pcfg);
    AnomalyDetector detector(model);
    detector.attach(process);
    process.onFnEnter(0);
    EXPECT_EQ(detector.samplesChecked(), 1u);
}

TEST(AnomalyDetectorDeathTest, DoubleAttachPanics)
{
    const HeapModel model =
        singleMetricModel(MetricId::Leaves, 0.0, 99.0);
    Process process;
    AnomalyDetector detector(model);
    detector.attach(process);
    EXPECT_DEATH(detector.attach(process), "already attached");
}

TEST(AnomalyDetectorTest, EventLoggingWhileArmedCapturesStacks)
{
    // End-to-end through a live Process: approach the maximum and
    // verify the culprit function shows up in the context log.
    HeapModel model = singleMetricModel(MetricId::Roots, 0.0, 30.0);
    ProcessConfig pcfg;
    pcfg.metricFrequency = 4;
    Process process(pcfg);
    DetectorConfig dcfg;
    dcfg.afterSamples = 1;
    AnomalyDetector detector(model, dcfg);
    detector.attach(process);

    const FnId leaker = process.registry().intern("leaky_alloc");
    const FnId other = process.registry().intern("other_work");
    // Anchor object so percentages are defined.
    process.onAlloc(0x100000, 64);
    Addr next = 0x200000;
    // Allocate isolated roots until %Roots blows past 30 + slack.
    for (int i = 0; i < 200; ++i) {
        process.onFnEnter(leaker);
        process.onAlloc(next, 64);
        next += 0x100;
        process.onFnExit(leaker);
        process.onFnEnter(other);
        process.onFnExit(other);
    }
    detector.finish();
    ASSERT_FALSE(detector.reports().empty());
    const BugReport &r = detector.reports()[0];
    EXPECT_EQ(r.metric, MetricId::Roots);
    EXPECT_EQ(r.direction, AnomalyDirection::AboveMax);
    ASSERT_FALSE(r.contextLog.empty());
    // The suspect function is derivable from the log.
    const FnId suspect = r.suspectFunction();
    EXPECT_TRUE(suspect == leaker || suspect == other);
    const std::string text = r.describe(process.registry());
    EXPECT_NE(text.find("Root"), std::string::npos);
    EXPECT_NE(text.find("above max"), std::string::npos);
}

TEST(BugReportTest, SuspectFunctionMajority)
{
    BugReport r;
    StackLogEntry e1;
    e1.frames = {7, 1};
    StackLogEntry e2;
    e2.frames = {7, 2};
    StackLogEntry e3;
    e3.frames = {9};
    r.contextLog = {e1, e2, e3};
    EXPECT_EQ(r.suspectFunction(), 7u);

    BugReport empty;
    EXPECT_EQ(empty.suspectFunction(), kNoFunction);
}

TEST(BugReportTest, SuspectFunctionEmptyContextLog)
{
    BugReport r;
    EXPECT_EQ(r.suspectFunction(), kNoFunction);
    EXPECT_TRUE(r.suspectRanking().empty());

    // Snapshots whose stacks are all empty also yield no suspect.
    StackLogEntry hollow;
    r.contextLog = {hollow, hollow};
    EXPECT_EQ(r.suspectFunction(), kNoFunction);
    EXPECT_TRUE(r.suspectRanking().empty());
}

TEST(BugReportTest, SuspectFunctionSingleEntry)
{
    BugReport r;
    StackLogEntry e;
    e.frames = {42, 3, 1}; // innermost first
    r.contextLog = {e};
    EXPECT_EQ(r.suspectFunction(), 42u);
    const auto ranking = r.suspectRanking();
    ASSERT_EQ(ranking.size(), 1u);
    EXPECT_EQ(ranking[0].first, 42u);
    EXPECT_EQ(ranking[0].second, 1u);
}

TEST(BugReportTest, SuspectFunctionTieBreaksToLowestId)
{
    // fn 9 and fn 4 are each innermost twice: the tie must go to the
    // lower id deterministically, independent of log order.
    BugReport r;
    StackLogEntry a, b, c, d;
    a.frames = {9};
    b.frames = {4};
    c.frames = {9};
    d.frames = {4};
    r.contextLog = {a, b, c, d};
    EXPECT_EQ(r.suspectFunction(), 4u);

    BugReport reversed;
    reversed.contextLog = {c, d, a, b};
    EXPECT_EQ(reversed.suspectFunction(), 4u);
}

TEST(BugReportTest, SuspectRankingOrdersByFrequency)
{
    BugReport r;
    StackLogEntry x, y, z;
    x.frames = {5, 1};
    y.frames = {8, 1};
    z.frames = {8, 2};
    r.contextLog = {x, y, z};
    const auto ranking = r.suspectRanking();
    ASSERT_EQ(ranking.size(), 2u);
    EXPECT_EQ(ranking[0].first, 8u);
    EXPECT_EQ(ranking[0].second, 2u);
    EXPECT_EQ(ranking[1].first, 5u);
    EXPECT_EQ(ranking[1].second, 1u);
}

TEST(BugReportTest, DescribeSurvivesUnregisteredFnIds)
{
    // A report whose log mentions functions the registry never saw
    // (truncated trace, cross-run registry) must render placeholders,
    // not crash.
    BugReport r;
    r.klass = BugClass::HeapAnomaly;
    r.metric = MetricId::Leaves;
    r.direction = AnomalyDirection::AboveMax;
    StackLogEntry e;
    e.frames = {9999, 3};
    r.contextLog = {e};

    FunctionRegistry registry; // empty: every id is unregistered
    const std::string text = r.describe(registry);
    EXPECT_NE(text.find("<fn#9999>"), std::string::npos);
    EXPECT_FALSE(registry.contains(9999));
}

TEST(BugReportTest, AnomalyDirectionNames)
{
    EXPECT_STREQ(anomalyDirectionName(AnomalyDirection::AboveMax),
                 "above-max");
    EXPECT_STREQ(anomalyDirectionName(AnomalyDirection::BelowMin),
                 "below-min");
    EXPECT_EQ(tryAnomalyDirectionFromName("above-max"),
              AnomalyDirection::AboveMax);
    EXPECT_EQ(tryAnomalyDirectionFromName("below-min"),
              AnomalyDirection::BelowMin);
    EXPECT_FALSE(tryAnomalyDirectionFromName("sideways").has_value());
}

TEST(BugClassTest, TryBugClassFromName)
{
    EXPECT_EQ(tryBugClassFromName("heap-anomaly"),
              BugClass::HeapAnomaly);
    EXPECT_EQ(tryBugClassFromName("poorly-disguised"),
              BugClass::PoorlyDisguised);
    EXPECT_EQ(tryBugClassFromName("pathological"),
              BugClass::Pathological);
    EXPECT_FALSE(tryBugClassFromName("benign").has_value());
}

} // namespace

} // namespace heapmd
