/**
 * @file
 * Property tests of the heap-graph: under arbitrary event sequences,
 * the incremental degree census must equal a from-scratch recompute,
 * and every internal invariant must hold.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "heapgraph/heap_graph.hh"
#include "runtime/address_space.hh"
#include "support/random.hh"

namespace heapmd
{

namespace
{

/**
 * From-scratch ordered oracle of the live extent set: the
 * std::map<Addr, ...> structure the page index replaced.  Every probe
 * answers "who owns this address" by upper_bound walk and must agree
 * with the graph's O(1) objectAt().
 */
struct ExtentOracle
{
    std::map<Addr, std::pair<std::uint64_t, ObjectId>> extents;

    void
    insert(Addr addr, std::uint64_t size, ObjectId id)
    {
        extents[addr] = {size, id};
    }

    void erase(Addr addr) { extents.erase(addr); }

    /** Owner id of @p addr, or kNoObject. */
    ObjectId
    ownerOf(Addr addr) const
    {
        auto it = extents.upper_bound(addr);
        if (it == extents.begin())
            return kNoObject;
        --it;
        const auto [size, id] = it->second;
        return addr - it->first < size ? id : kNoObject;
    }
};

/** Probe objectAt() against the oracle at and around every extent. */
void
expectLookupsMatchOracle(const HeapGraph &g, const ExtentOracle &oracle,
                         Rng &rng)
{
    for (const auto &[addr, ext] : oracle.extents) {
        const auto [size, id] = ext;
        for (const Addr probe :
             {addr, addr + size - 1, addr + rng.below(size),
              addr + size, addr - 1}) {
            const ObjectId expected = oracle.ownerOf(probe);
            const ObjectRecord *got = g.objectAt(probe);
            ASSERT_EQ(got == nullptr ? kNoObject : got->id, expected)
                << "objectAt(" << probe << ") disagrees with the "
                << "ordered-map oracle";
        }
        const ObjectRecord *start = g.objectStartingAt(addr);
        ASSERT_NE(start, nullptr);
        ASSERT_EQ(start->id, id);
    }
}

/** Compare the incremental census with a from-scratch recompute. */
void
expectCensusMatches(const HeapGraph &g)
{
    const DegreeHistogram fresh = g.recomputeHistogram();
    const DegreeHistogram &inc = g.histogram();
    ASSERT_EQ(fresh.vertexCount(), inc.vertexCount());
    ASSERT_EQ(fresh.inEqOutCount(), inc.inEqOutCount());
    for (std::size_t d = 0; d < DegreeHistogram::kExactBuckets; ++d) {
        ASSERT_EQ(fresh.indegCount(d), inc.indegCount(d))
            << "indeg bucket " << d;
        ASSERT_EQ(fresh.outdegCount(d), inc.outdegCount(d))
            << "outdeg bucket " << d;
    }
}

class HeapGraphFuzzTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HeapGraphFuzzTest, RandomOpsKeepInvariants)
{
    Rng rng(GetParam());
    HeapGraph g;
    AddressSpace space;
    std::vector<Addr> live;
    ExtentOracle oracle;
    std::vector<ObjectId> stale_ids;

    const int kOps = 3000;
    for (int op = 0; op < kOps; ++op) {
        const std::uint64_t kind = rng.below(100);
        if (kind < 30 || live.empty()) {
            // Allocate.
            const std::uint64_t size = 8 + rng.below(256);
            const Addr addr = space.allocate(size);
            const ObjectId id = g.allocate(addr, size);
            oracle.insert(addr, size, id);
            live.push_back(addr);
        } else if (kind < 45) {
            // Free a random live block.
            const std::size_t i = rng.below(live.size());
            const Addr addr = live[i];
            stale_ids.push_back(g.objectStartingAt(addr)->id);
            EXPECT_TRUE(g.free(addr));
            oracle.erase(addr);
            space.release(addr);
            live[i] = live.back();
            live.pop_back();
        } else if (kind < 50 && !live.empty()) {
            // Realloc a random block.
            const std::size_t i = rng.below(live.size());
            const Addr old_addr = live[i];
            const std::uint64_t new_size = 8 + rng.below(512);
            const ObjectId old_id = g.objectStartingAt(old_addr)->id;
            const Addr new_addr = space.reallocate(old_addr, new_size);
            if (new_addr != old_addr) // a move invalidates the id
                stale_ids.push_back(old_id);
            const ObjectId id =
                g.reallocate(old_addr, new_addr, new_size);
            oracle.erase(old_addr);
            oracle.insert(new_addr, new_size, id);
            live[i] = new_addr;
        } else if (kind < 55) {
            // Double free / wild free: must be tolerated.
            g.free(0xdead0000 + rng.below(0x1000));
        } else {
            // Write: mostly pointers to live objects, sometimes junk.
            const Addr owner = live[rng.below(live.size())];
            const std::uint64_t owner_size = space.blockSize(owner);
            const Addr slot =
                owner + (rng.below(owner_size / 8)) * 8;
            Addr value = 0;
            const std::uint64_t v = rng.below(10);
            if (v < 6) {
                const Addr target = live[rng.below(live.size())];
                value = target + rng.below(space.blockSize(target));
            } else if (v < 8) {
                value = rng.below(1000); // small data word
            } else {
                value = 0; // null out
            }
            g.write(slot, value);
        }

        if (op % 250 == 0) {
            expectCensusMatches(g);
            g.checkConsistency();
            expectLookupsMatchOracle(g, oracle, rng);
            // Generation tags: every freed/moved id stays dead even
            // after its arena slot is recycled by later allocations.
            for (ObjectId stale : stale_ids)
                ASSERT_EQ(g.objectById(stale), nullptr);
        }
    }
    expectCensusMatches(g);
    g.checkConsistency();
    expectLookupsMatchOracle(g, oracle, rng);
    for (ObjectId stale : stale_ids)
        ASSERT_EQ(g.objectById(stale), nullptr);

    // Tear down completely; the graph must empty out.
    for (Addr addr : live)
        EXPECT_TRUE(g.free(addr));
    EXPECT_EQ(g.vertexCount(), 0u);
    EXPECT_EQ(g.edgeCount(), 0u);
    EXPECT_EQ(g.stats().liveBytes, 0u);
    g.checkConsistency();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapGraphFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));

class HeapGraphChurnTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HeapGraphChurnTest, AddressReuseNeverAliasesVertices)
{
    // Heavy free/alloc churn in one size class: addresses recycle
    // constantly, vertex ids must never collide and stale edges must
    // never reappear.
    Rng rng(GetParam());
    HeapGraph g;
    AddressSpace space;
    std::vector<std::pair<Addr, ObjectId>> live;

    for (int op = 0; op < 2000; ++op) {
        if (live.size() < 8 || rng.chance(0.55)) {
            const Addr addr = space.allocate(64);
            const ObjectId id = g.allocate(addr, 64);
            for (const auto &[other_addr, other_id] : live) {
                (void)other_addr;
                ASSERT_NE(id, other_id);
            }
            // Wire the new object to a random live one and back.
            if (!live.empty()) {
                const auto &[taddr, tid] = live[rng.below(live.size())];
                g.write(addr, taddr);
                g.write(taddr + 8, addr);
                ASSERT_TRUE(g.hasEdge(id, tid));
            }
            live.emplace_back(addr, id);
        } else {
            const std::size_t i = rng.below(live.size());
            const auto [addr, id] = live[i];
            ASSERT_TRUE(g.free(addr));
            ASSERT_EQ(g.objectById(id), nullptr);
            space.release(addr);
            live[i] = live.back();
            live.pop_back();
        }
    }
    expectCensusMatches(g);
    g.checkConsistency();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapGraphChurnTest,
                         ::testing::Values(101, 202, 303, 404, 505));

} // namespace

} // namespace heapmd
