/**
 * @file
 * Determinism gate for the parallel replay pipeline: training and
 * batch checking must produce byte-identical artifacts regardless of
 * the worker count, both through the library API and through the CLI
 * (where HEAPMD_JOBS selects the worker count without perturbing the
 * manifest-recorded command line).
 */

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/heapmd.hh"
#include "trace/trace_writer.hh"

namespace heapmd
{

namespace
{

std::string
saveModel(const HeapModel &model)
{
    std::ostringstream out;
    model.save(out);
    return out.str();
}

HeapMDConfig
configWithJobs(unsigned jobs)
{
    HeapMDConfig cfg;
    cfg.process.metricFrequency = 200;
    cfg.jobs = jobs;
    return cfg;
}

TEST(ParallelTrain, ModelBytesAreJobInvariant)
{
    auto app = makeApp("Multimedia");
    const std::vector<AppConfig> inputs = makeInputs(1, 8, 1, 0.4);

    const TrainingOutcome serial =
        HeapMD(configWithJobs(1)).train(*app, inputs);
    const TrainingOutcome wide =
        HeapMD(configWithJobs(8)).train(*app, inputs);
    const TrainingOutcome autos =
        HeapMD(configWithJobs(0)).train(*app, inputs);

    EXPECT_EQ(saveModel(serial.model), saveModel(wide.model));
    EXPECT_EQ(saveModel(serial.model), saveModel(autos.model));
    EXPECT_EQ(serial.suspectTrainingRuns, wide.suspectTrainingRuns);
}

TEST(ParallelCheck, CheckManyMatchesSequentialChecks)
{
    auto app = makeApp("Multimedia");
    const std::vector<AppConfig> inputs = makeInputs(50, 6, 1, 0.4);
    const HeapModel model =
        HeapMD(configWithJobs(1))
            .train(*app, makeInputs(1, 8, 1, 0.4))
            .model;

    const HeapMD serial(configWithJobs(1));
    const HeapMD wide(configWithJobs(8));
    const std::vector<CheckOutcome> batch =
        wide.checkMany(*app, inputs, model);
    ASSERT_EQ(batch.size(), inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const CheckOutcome one = serial.check(*app, inputs[i], model);
        EXPECT_EQ(batch[i].check.reports.size(),
                  one.check.reports.size());
        EXPECT_EQ(batch[i].check.samplesChecked,
                  one.check.samplesChecked);
        EXPECT_EQ(batch[i].run.series.samples().size(),
                  one.run.series.samples().size());
        EXPECT_EQ(batch[i].run.finalTick, one.run.finalTick);
    }
}

#if defined(HEAPMD_CLI_PATH)

/** CLI invocations in a throwaway directory. */
class CliDeterminismTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("heapmd_pardet_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                "_" + ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name());
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    std::string path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    /**
     * Run the CLI under HEAPMD_JOBS=@p jobs with @p subdir (under the
     * test directory, created on demand) as the working directory,
     * stdout+stderr captured to @p log.  Returns the exit status.
     * Output artifacts should use relative paths: runs that must
     * produce byte-identical manifests need byte-identical command
     * lines, so only the (unrecorded) working directory may differ.
     */
    int
    run(const std::string &jobs, const std::string &args,
        const std::string &log, const std::string &subdir = "") const
    {
        const std::filesystem::path cwd =
            subdir.empty() ? dir_ : dir_ / subdir;
        std::filesystem::create_directories(cwd);
        const std::string cmd = "cd \"" + cwd.string() +
                                "\" && HEAPMD_JOBS=" + jobs + " \"" +
                                HEAPMD_CLI_PATH "\" " + args + " > " +
                                path(log) + " 2>&1";
        const int status = std::system(cmd.c_str());
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    /**
     * Zero every timing/resource value in a manifest: elapsed time,
     * CPU time, and peak RSS are the run-accounting fields that
     * legitimately differ between byte-identical runs (and `trend`
     * excludes or tolerances them for the same reason).  That covers
     * `*_ns` counter entries and, since schema v3, the env
     * peakRssBytes/durationNanos pair plus wallNanos/cpuNanos in the
     * phases[] and run blocks.  Everything else must match exactly.
     */
    static std::string
    zeroTimingCounters(const std::string &text)
    {
        static const char *const keys[] = {
            "\"peakRssBytes\":", "\"durationNanos\":",
            "\"wallNanos\":", "\"cpuNanos\":"};
        std::istringstream in(text);
        std::ostringstream out;
        std::string line;
        bool timing = false;
        while (std::getline(in, line)) {
            bool zero =
                timing && line.find("\"value\":") != std::string::npos;
            for (const char *key : keys)
                zero = zero || line.find(key) != std::string::npos;
            if (zero) {
                const bool comma = !line.empty() && line.back() == ',';
                line.erase(line.find(':') + 1);
                line += comma ? " 0," : " 0";
            }
            timing = line.find("_ns\",") != std::string::npos;
            out << line << '\n';
        }
        return out.str();
    }

    std::string
    slurp(const std::string &name) const
    {
        std::ifstream in(path(name), std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        return buffer.str();
    }

    /**
     * Record a capture-provenance trace and truncate it mid-stream,
     * as a child killed before its atexit flush would: decoding must
     * stop cleanly and training over it stay deterministic.
     */
    void
    writeTruncatedCaptureTrace(const std::string &name) const
    {
        ProcessConfig pcfg;
        pcfg.metricFrequency = 200;
        Process process(pcfg);
        {
            std::ofstream out(path(name), std::ios::binary);
            TraceWriterOptions options;
            options.captureProvenance = true;
            TraceWriter writer(out, process.registry(), options);
            process.addEventObserver(&writer);
            auto app = makeApp("Multimedia");
            AppConfig cfg;
            cfg.inputSeed = 3;
            cfg.scale = 0.3;
            app->run(process, cfg);
            writer.finish();
        }
        const auto size = std::filesystem::file_size(path(name));
        ASSERT_GT(size, 64u);
        // Two-thirds of the stream: lands mid-event, usually inside
        // a varint.
        std::filesystem::resize_file(path(name), size * 2 / 3);
    }

    std::filesystem::path dir_;
};

TEST_F(CliDeterminismTest, SyntheticTrainArtifactsAreJobInvariant)
{
    // Identical command lines (relative output paths), different
    // working directories: the manifests must be byte-identical
    // modulo elapsed-time counters.
    const std::string train = "train --app Multimedia --inputs 6 "
                              "--scale 0.4 --out m.model "
                              "--manifest m.manifest";
    ASSERT_EQ(run("1", train, "train1.log", "j1"), 0)
        << slurp("train1.log");
    ASSERT_EQ(run("8", train, "train8.log", "j8"), 0)
        << slurp("train8.log");

    const std::string m1 = slurp("j1/m.model");
    ASSERT_FALSE(m1.empty());
    EXPECT_EQ(m1, slurp("j8/m.model"));
    EXPECT_EQ(zeroTimingCounters(slurp("j1/m.manifest")),
              zeroTimingCounters(slurp("j8/m.manifest")));
    EXPECT_EQ(slurp("train1.log"), slurp("train8.log"));
}

TEST_F(CliDeterminismTest, TraceTrainArtifactsAreJobInvariant)
{
    std::string trace_flags;
    for (int seed = 1; seed <= 4; ++seed) {
        std::string stem = "t";
        stem += std::to_string(seed);
        stem += ".trace";
        const std::string trace = path(stem);
        ASSERT_EQ(run("1",
                      "record --app Multimedia --seed " +
                          std::to_string(seed) + " --scale 0.3 "
                          "--out " + trace,
                      "record.log"),
                  0)
            << slurp("record.log");
        trace_flags += " --trace " + trace;
    }
    writeTruncatedCaptureTrace("killed.trace");
    trace_flags += " --trace " + path("killed.trace");

    // Trace inputs are shared absolute paths (identical in both
    // command lines); outputs are relative to per-job directories.
    std::string train = "train --name pardet";
    train += trace_flags;
    train += " --out m.model --manifest m.manifest";
    ASSERT_EQ(run("1", train, "train1.log", "j1"), 0)
        << slurp("train1.log");
    ASSERT_EQ(run("8", train, "train8.log", "j8"), 0)
        << slurp("train8.log");

    const std::string m1 = slurp("j1/m.model");
    ASSERT_FALSE(m1.empty());
    EXPECT_EQ(m1, slurp("j8/m.model"));
    EXPECT_EQ(zeroTimingCounters(slurp("j1/m.manifest")),
              zeroTimingCounters(slurp("j8/m.manifest")));
    EXPECT_EQ(slurp("train1.log"), slurp("train8.log"));
    // The truncated capture trace really was replayed as one.
    EXPECT_NE(slurp("train1.log").find("(live capture)"),
              std::string::npos);
}

TEST_F(CliDeterminismTest, BatchCheckOutputIsJobInvariant)
{
    ASSERT_EQ(run("1",
                  "train --app Multimedia --inputs 6 --scale 0.4 "
                  "--out " + path("base.model"),
                  "train.log"),
              0)
        << slurp("train.log");

    const std::string check = "check --app Multimedia --model " +
                              path("base.model") +
                              " --seed 100 --inputs 3 --scale 0.4";
    const int status1 = run("1", check, "check1.log");
    const int status8 = run("8", check, "check8.log");
    EXPECT_EQ(status1, status8);
    EXPECT_TRUE(status1 == 0 || status1 == 3)
        << slurp("check1.log");
    EXPECT_EQ(slurp("check1.log"), slurp("check8.log"));
    EXPECT_NE(slurp("check1.log").find("seed 102"),
              std::string::npos);
}

TEST_F(CliDeterminismTest, DeepAuditOutputIsJobInvariant)
{
    // Record a clean and a fault-seeded trace, then deep-audit both
    // at jobs 1 and 8: reports must be byte-identical, the exit code
    // must reflect the worst finding, and the seeded double free
    // must surface under its exact flow rule id.
    ASSERT_EQ(run("1",
                  "record --app Multimedia --seed 3 --scale 0.3 "
                  "--out " + path("clean.trace"),
                  "rec1.log"),
              0)
        << slurp("rec1.log");
    ASSERT_EQ(run("1",
                  "record --app Multimedia --seed 3 --scale 0.3 "
                  "--fault shared-state-free --rate 1.0 --out " +
                      path("fault.trace"),
                  "rec2.log"),
              0)
        << slurp("rec2.log");

    const std::string audit = "audit --deep 1 --trace " +
                              path("clean.trace") + " --trace " +
                              path("fault.trace");
    const int status1 = run("1", audit, "audit1.log");
    const int status8 = run("8", audit, "audit8.log");
    EXPECT_EQ(status1, 3) << slurp("audit1.log");
    EXPECT_EQ(status8, 3);
    EXPECT_EQ(slurp("audit1.log"), slurp("audit8.log"));
    EXPECT_NE(slurp("audit1.log").find("flow.double_free"),
              std::string::npos);
    // The clean trace contributes no flow findings: its section of
    // the report precedes the faulted trace's and stays clean.
    const std::string log = slurp("audit1.log");
    EXPECT_LT(log.find("clean.trace"), log.find("fault.trace"));
}

TEST_F(CliDeterminismTest, InvalidJobsValuesAreUsageErrors)
{
    EXPECT_EQ(run("1", "train --app Multimedia --inputs 2 "
                       "--jobs banana",
                  "bad1.log"),
              2);
    EXPECT_EQ(run("banana", "train --app Multimedia --inputs 2",
                  "bad2.log"),
              2);
    EXPECT_EQ(run("1", "check --app Multimedia --model none "
                       "--inputs 0",
                  "bad3.log"),
              2);
    EXPECT_NE(slurp("bad1.log").find("invalid --jobs value"),
              std::string::npos);
    EXPECT_NE(slurp("bad2.log").find("invalid HEAPMD_JOBS value"),
              std::string::npos);
}

#endif // HEAPMD_CLI_PATH

} // namespace

} // namespace heapmd
