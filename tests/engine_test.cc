/**
 * @file
 * Tests of the workload engine: phase structure, target feedback,
 * bulk rebuilds, generic leak scenarios and teardown hygiene.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/workload_engine.hh"
#include "metrics/stability.hh"

namespace heapmd
{

namespace
{

class EngineTest : public ::testing::Test
{
  protected:
    EngineTest()
        : process_(makeConfig()), heap_(process_), faults_(),
          ctx_(heap_, faults_, 7)
    {
    }

    static ProcessConfig
    makeConfig()
    {
        ProcessConfig cfg;
        cfg.metricFrequency = 100;
        return cfg;
    }

    Process process_;
    HeapApi heap_;
    FaultPlan faults_;
    istl::Context ctx_;
    AppResult result_;
};

apps::MixParams
smallMix()
{
    apps::MixParams p;
    p.dllCount = 2;
    p.dllTarget = 60;
    p.dllPayload = 16;
    p.hashCount = 1;
    p.hashBuckets = 64;
    p.hashTarget = 80;
    p.hashPayload = 16;
    p.bufferCount = 40;
    p.bufferSize = 64;
    p.handleCount = 30;
    p.steadyOps = 4000;
    p.wDll = 0.30;
    p.wHash = 0.25;
    p.wBuffer = 0.20;
    p.wHandle = 0.15;
    p.wTraverse = 0.05;
    return p;
}

TEST_F(EngineTest, StartupBuildsToTargets)
{
    apps::MixParams p = smallMix();
    apps::WorkloadEngine engine(ctx_, p, result_);
    engine.startup();
    // 2 DLLs x 60 nodes (+payloads), hash 80 entries (+payloads),
    // 40 buffers, 30 handles (+payloads), bucket array, archive.
    EXPECT_GT(process_.graph().vertexCount(), 400u);
    engine.shutdown();
    EXPECT_EQ(process_.graph().vertexCount(), 0u);
    EXPECT_EQ(heap_.liveCount(), 0u);
}

TEST_F(EngineTest, SteadyStateHoversNearTargets)
{
    apps::MixParams p = smallMix();
    apps::WorkloadEngine engine(ctx_, p, result_);
    engine.startup();
    const std::uint64_t at_startup = process_.graph().vertexCount();
    engine.steady();
    const std::uint64_t after = process_.graph().vertexCount();
    // Stationary churn: the population stays within ~35% of the
    // startup level.
    EXPECT_GT(after, at_startup * 65 / 100);
    EXPECT_LT(after, at_startup * 135 / 100);
    engine.shutdown();
}

TEST_F(EngineTest, RunAllLeavesNothingBehindWithoutFaults)
{
    apps::MixParams p = smallMix();
    p.phases = 3;
    p.phaseWeightSwing = 0.5;
    p.phaseTargetSwing = 0.15;
    p.bulkDll = true;
    p.bulkHash = true;
    p.bulkBuffers = true;
    apps::WorkloadEngine(ctx_, p, result_).runAll();
    EXPECT_EQ(process_.graph().vertexCount(), 0u);
    EXPECT_EQ(heap_.liveCount(), 0u);
    EXPECT_EQ(result_.injectedLeakObjects, 0u);
    EXPECT_EQ(result_.reachableLeakObjects, 0u);
    process_.graph().checkConsistency();
}

TEST_F(EngineTest, PhasesProduceMoreSamplesVariance)
{
    // Bulk rebuilds at phase boundaries must destabilize at least
    // one metric relative to the single-phase run.
    apps::MixParams flat = smallMix();
    apps::MixParams phased = smallMix();
    phased.phases = 4;
    phased.phaseWeightSwing = 0.5;
    phased.phaseTargetSwing = 0.15;
    phased.bulkDll = true;
    phased.bulkHash = true;

    double flat_worst = 0.0, phased_worst = 0.0;
    {
        Process process(makeConfig());
        HeapApi heap(process);
        FaultPlan faults;
        istl::Context ctx(heap, faults, 11);
        AppResult result;
        apps::WorkloadEngine(ctx, flat, result).runAll();
        const StabilityThresholds thr;
        for (MetricId id : kAllMetrics) {
            flat_worst = std::max(
                flat_worst,
                analyzeMetric(process.series(), id, thr).stdDev);
        }
    }
    {
        Process process(makeConfig());
        HeapApi heap(process);
        FaultPlan faults;
        istl::Context ctx(heap, faults, 11);
        AppResult result;
        apps::WorkloadEngine(ctx, phased, result).runAll();
        const StabilityThresholds thr;
        for (MetricId id : kAllMetrics) {
            phased_worst = std::max(
                phased_worst,
                analyzeMetric(process.series(), id, thr).stdDev);
        }
    }
    EXPECT_GT(phased_worst, flat_worst);
}

TEST_F(EngineTest, SmallLeakBudgetHonoured)
{
    apps::MixParams p = smallMix();
    faults_.enable(FaultKind::SmallLeak, 1.0, 3);
    apps::WorkloadEngine(ctx_, p, result_).runAll();
    EXPECT_EQ(result_.injectedLeakObjects, 3u);
    EXPECT_EQ(result_.leakAddrs.size(), 3u);
    EXPECT_EQ(process_.graph().vertexCount(), 3u); // only the leaks
    for (Addr addr : result_.leakAddrs)
        EXPECT_NE(process_.graph().objectStartingAt(addr), nullptr);
}

TEST_F(EngineTest, ReachableLeaksParkedThenFreedAtExit)
{
    apps::MixParams p = smallMix();
    faults_.enable(FaultKind::ReachableLeak, 0.01);
    apps::WorkloadEngine(ctx_, p, result_).runAll();
    EXPECT_GT(result_.reachableLeakObjects, 0u);
    EXPECT_EQ(result_.reachableLeakObjects,
              result_.leakAddrs.size());
    // Archive teardown freed them: nothing live at exit.
    EXPECT_EQ(process_.graph().vertexCount(), 0u);
}

TEST_F(EngineTest, CacheObjectsRecordedAndIdle)
{
    apps::MixParams p = smallMix();
    p.cacheObjects = 20;
    p.cacheObjectSize = 32;

    apps::WorkloadEngine engine(ctx_, p, result_);
    engine.startup();
    EXPECT_EQ(result_.cacheObjects, 40u); // nodes + payloads
    EXPECT_EQ(result_.cacheAddrs.size(), 40u);
    for (Addr addr : result_.cacheAddrs)
        EXPECT_NE(process_.graph().objectStartingAt(addr), nullptr);

    // The steady loop never touches the cache: its objects see no
    // Read events after the warm-up traversal.
    const Tick warm_end = process_.now();
    engine.steady();
    // (Indirect check: SWAT-style staleness would flag them; here we
    // at least assert they are still live and untouched structurally.)
    for (Addr addr : result_.cacheAddrs)
        EXPECT_NE(process_.graph().objectStartingAt(addr), nullptr);
    EXPECT_GT(process_.now(), warm_end);
    engine.shutdown();
}

TEST_F(EngineTest, EmptyMixIsHarmless)
{
    apps::MixParams p; // nothing enabled
    p.steadyOps = 100;
    apps::WorkloadEngine(ctx_, p, result_).runAll();
    EXPECT_EQ(process_.graph().vertexCount(), 0u);
}

TEST_F(EngineTest, DeterministicAcrossIdenticalContexts)
{
    apps::MixParams p = smallMix();
    p.phases = 2;
    p.phaseWeightSwing = 0.4;
    p.bulkDll = true;

    std::uint64_t allocs[2];
    for (int round = 0; round < 2; ++round) {
        Process process(makeConfig());
        HeapApi heap(process);
        FaultPlan faults;
        istl::Context ctx(heap, faults, 99);
        AppResult result;
        apps::WorkloadEngine(ctx, p, result).runAll();
        allocs[round] = process.graph().stats().allocs;
    }
    EXPECT_EQ(allocs[0], allocs[1]);
}

} // namespace

} // namespace heapmd
