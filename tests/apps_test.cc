/**
 * @file
 * Tests of the synthetic application suite: registry, determinism,
 * phase structure, clean teardown, and ground-truth accounting.
 * Small scales keep these fast.
 */

#include <gtest/gtest.h>

#include "core/heapmd.hh"

namespace heapmd
{

namespace
{

HeapMDConfig
smallConfig()
{
    HeapMDConfig cfg;
    cfg.process.metricFrequency = 150;
    return cfg;
}

AppConfig
smallInput(std::uint64_t seed, std::uint32_t version = 1)
{
    AppConfig cfg;
    cfg.inputSeed = seed;
    cfg.version = version;
    cfg.scale = 0.25;
    return cfg;
}

TEST(AppRegistryTest, AllAppsConstructible)
{
    for (const std::string &name : allAppNames()) {
        auto app = makeApp(name);
        ASSERT_NE(app, nullptr) << name;
        EXPECT_EQ(app->name(), name);
    }
}

TEST(AppRegistryTest, NamesMatchThePaper)
{
    EXPECT_EQ(specAppNames().size(), 8u);
    EXPECT_EQ(commercialAppNames().size(), 5u);
    EXPECT_EQ(allAppNames().size(), 13u);
    EXPECT_EQ(specAppNames().front(), "twolf");
    EXPECT_EQ(commercialAppNames().front(), "Multimedia");
}

TEST(AppRegistryDeathTest, UnknownNameFatal)
{
    EXPECT_DEATH(makeApp("no-such-app"), "unknown application");
}

TEST(AppRegistryTest, PaperInputCounts)
{
    EXPECT_EQ(paperInputCount("twolf"), 3u);
    EXPECT_EQ(paperInputCount("vpr"), 6u);
    EXPECT_EQ(paperInputCount("vortex"), 5u);
    EXPECT_EQ(paperInputCount("gzip"), 100u);
    EXPECT_EQ(paperInputCount("gcc"), 100u);
    EXPECT_EQ(paperInputCount("Multimedia"), 50u);
    EXPECT_EQ(paperInputCount("Productivity"), 50u);
}

class PerAppTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PerAppTest, DeterministicForSameInput)
{
    HeapMD tool(smallConfig());
    auto app = makeApp(GetParam());
    const RunOutcome a = tool.observe(*app, smallInput(3));
    const RunOutcome b = tool.observe(*app, smallInput(3));
    ASSERT_EQ(a.series.size(), b.series.size());
    for (std::size_t i = 0; i < a.series.size(); ++i) {
        for (MetricId id : kAllMetrics) {
            ASSERT_DOUBLE_EQ(a.series.at(i).value(id),
                             b.series.at(i).value(id))
                << "sample " << i;
        }
    }
    EXPECT_EQ(a.graphStats.allocs, b.graphStats.allocs);
    EXPECT_EQ(a.graphStats.writes, b.graphStats.writes);
}

TEST_P(PerAppTest, DifferentInputsDiffer)
{
    HeapMD tool(smallConfig());
    auto app = makeApp(GetParam());
    const RunOutcome a = tool.observe(*app, smallInput(1));
    const RunOutcome b = tool.observe(*app, smallInput(2));
    EXPECT_NE(a.graphStats.allocs, b.graphStats.allocs);
}

TEST_P(PerAppTest, FaultFreeRunLeavesNoLiveBlocks)
{
    HeapMD tool(smallConfig());
    auto app = makeApp(GetParam());
    const RunOutcome run = tool.observe(*app, smallInput(5));
    EXPECT_EQ(run.liveBlocksAtExit, 0u)
        << GetParam() << " leaked without any injected fault";
    EXPECT_EQ(run.app.injectedLeakObjects, 0u);
}

TEST_P(PerAppTest, ProducesHeapActivityAndSamples)
{
    HeapMD tool(smallConfig());
    auto app = makeApp(GetParam());
    const RunOutcome run = tool.observe(*app, smallInput(7));
    EXPECT_GT(run.app.fnEntries, 1000u);
    EXPECT_GT(run.graphStats.allocs, 100u);
    EXPECT_GT(run.graphStats.pointerWrites, 50u);
    EXPECT_GT(run.series.size(), 10u);
    EXPECT_GT(run.graphStats.peakVertices, 100u);
}

TEST_P(PerAppTest, HasAtLeastOneStableMetric)
{
    // The paper's core claim (Section 3): every benchmark exhibited
    // at least one globally stable metric.
    HeapMD tool(smallConfig());
    auto app = makeApp(GetParam());
    const TrainingOutcome training =
        tool.train(*app, makeInputs(1, 4, 1, 0.25));
    EXPECT_GE(training.model.stableMetricCount(), 1u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllApps, PerAppTest,
                         ::testing::ValuesIn(allAppNames()));

TEST(AppGroundTruthTest, TypoLeakCountsLeakedObjects)
{
    HeapMD tool(smallConfig());
    auto app = makeApp("Interactive web-app.");
    AppConfig cfg = smallInput(11);
    cfg.faults.enable(FaultKind::TypoLeak, 1.0);
    const RunOutcome run = tool.observe(*app, cfg);
    EXPECT_GT(run.app.injectedLeakObjects, 0u);
    // The typo also double-links the wrongly copied descriptor, so
    // subsequent frees can collide with reused addresses; the live
    // count tracks the leak count only approximately.
    EXPECT_GE(run.liveBlocksAtExit,
              run.app.injectedLeakObjects / 2);
    ASSERT_FALSE(run.app.firedFaults.empty());
    EXPECT_EQ(run.app.firedFaults[0], FaultKind::TypoLeak);
}

TEST(AppGroundTruthTest, SmallLeakRespectsBudget)
{
    HeapMD tool(smallConfig());
    auto app = makeApp("Multimedia");
    AppConfig cfg = smallInput(13);
    cfg.faults.enable(FaultKind::SmallLeak, 0.01, 4);
    const RunOutcome run = tool.observe(*app, cfg);
    EXPECT_LE(run.app.injectedLeakObjects, 4u);
    EXPECT_EQ(run.liveBlocksAtExit, run.app.injectedLeakObjects);
}

TEST(AppGroundTruthTest, ReachableLeakIsFreedAtExitButCounted)
{
    HeapMD tool(smallConfig());
    auto app = makeApp("PC Game (simulation)");
    AppConfig cfg = smallInput(17);
    cfg.faults.enable(FaultKind::ReachableLeak, 0.005);
    const RunOutcome run = tool.observe(*app, cfg);
    EXPECT_GT(run.app.reachableLeakObjects, 0u);
    // Reachable leaks are torn down with the archive at exit.
    EXPECT_EQ(run.liveBlocksAtExit, 0u);
}

TEST(AppGroundTruthTest, CacheObjectsCounted)
{
    HeapMD tool(smallConfig());
    auto app = makeApp("Productivity");
    const RunOutcome run = tool.observe(*app, smallInput(19));
    EXPECT_GT(run.app.cacheObjects, 0u);
}

TEST(AppGroundTruthTest, MultimediaHasNoCache)
{
    // Table 1: SWAT shows false positives on web-app and game-sim
    // (caches) but not on Multimedia.
    HeapMD tool(smallConfig());
    auto app = makeApp("Multimedia");
    const RunOutcome run = tool.observe(*app, smallInput(19));
    EXPECT_EQ(run.app.cacheObjects, 0u);
}

TEST(AppVersionTest, VersionsShiftBehaviourOnlySlightly)
{
    HeapMD tool(smallConfig());
    auto app = makeApp("Productivity");
    const RunOutcome v1 = tool.observe(*app, smallInput(3, 1));
    const RunOutcome v5 = tool.observe(*app, smallInput(3, 5));
    // Different builds differ ...
    EXPECT_NE(v1.graphStats.allocs, v5.graphStats.allocs);
    // ... but only slightly (Figure 7(B): ranges persist).
    const double ratio = static_cast<double>(v5.graphStats.allocs) /
                         static_cast<double>(v1.graphStats.allocs);
    EXPECT_GT(ratio, 0.80);
    EXPECT_LT(ratio, 1.25);
}

TEST(AppLongRunTest, VprInputLengthVariesWithSeed)
{
    // Figure 4: vpr runs much longer on some inputs.
    HeapMD tool(smallConfig());
    auto app = makeApp("vpr");
    std::uint64_t shortest = ~0ull, longest = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const RunOutcome run = tool.observe(*app, smallInput(seed));
        shortest = std::min<std::uint64_t>(shortest,
                                           run.series.size());
        longest = std::max<std::uint64_t>(longest, run.series.size());
    }
    EXPECT_GE(longest, shortest * 2);
}

} // namespace

} // namespace heapmd
