/**
 * @file
 * Unit tests of the fleet aggregation layer: input discovery, merge
 * determinism (input order and worker count), leave-one-out outlier
 * attribution, incident clustering, the canonical-JSON round-trip,
 * the fleet.* linter, and cross-fleet trend comparison.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/fleet_lint.hh"
#include "analysis/report.hh"
#include "diag/incident_bundle.hh"
#include "diag/run_manifest.hh"
#include "fleet/fleet_merge.hh"
#include "fleet/fleet_model.hh"
#include "fleet/fleet_trend.hh"
#include "metrics/metric.hh"

namespace heapmd
{

namespace
{

namespace fs = std::filesystem;

/** Fleet artifacts in a throwaway directory. */
class FleetTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("heapmd_fleet_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                "_" + ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void
    TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    std::string
    path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    /**
     * A manifest whose per-metric means sit at @p base + the metric
     * index, so every metric carries a distinct but steady value.
     * @p drift shifts every mean (the drifting member).
     */
    diag::RunManifest
    testManifest(const std::string &program, double base,
                 double drift = 0.0,
                 std::uint64_t samples = 100) const
    {
        diag::RunManifest m;
        m.command = "check";
        m.commandLine = "heapmd check --app " + program;
        m.program = program;
        m.metricFrequency = 300;
        m.events = samples * 300;
        m.samples = samples;
        for (MetricId id : kAllMetrics) {
            diag::ManifestMetric metric;
            metric.metric = metricName(id);
            metric.summary.count = samples;
            metric.summary.mean = base +
                                  static_cast<double>(
                                      metricIndex(id)) +
                                  drift;
            metric.summary.min = metric.summary.mean - 2.0;
            metric.summary.max = metric.summary.mean + 2.0;
            metric.summary.stddev = 0.5;
            m.metrics.push_back(std::move(metric));
        }
        return m;
    }

    /** Write @p manifest to @p name under the test directory. */
    std::string
    writeManifest(const std::string &name,
                  const diag::RunManifest &manifest) const
    {
        const std::string file = path(name);
        std::ofstream out(file, std::ios::binary);
        diag::saveRunManifest(manifest, out);
        return file;
    }

    /** Write a minimal incident bundle with the given signature. */
    std::string
    writeBundle(const std::string &name,
                const std::vector<std::string> &suspects) const
    {
        diag::IncidentBundle bundle;
        bundle.program = "server";
        bundle.bugClass = "HeapAnomaly";
        bundle.metric = "Leaves";
        bundle.direction = "above-max";
        bundle.observedValue = 40.0;
        bundle.calibratedMin = 8.0;
        bundle.calibratedMax = 30.0;
        for (std::size_t i = 0; i < suspects.size(); ++i) {
            diag::BundleSuspect suspect;
            suspect.fnId = FnId{static_cast<std::uint32_t>(i)};
            suspect.name = suspects[i];
            suspect.snapshots = suspects.size() - i;
            bundle.suspects.push_back(std::move(suspect));
        }
        const std::string file = path(name);
        std::ofstream out(file, std::ios::binary);
        diag::saveIncidentBundle(bundle, out);
        return file;
    }

    /** collectFleetInputs + mergeFleet over explicit paths. */
    fleet::FleetModel
    merge(const std::vector<std::string> &paths,
          analysis::Report &report, unsigned jobs = 1) const
    {
        fleet::FleetInputs inputs;
        std::string error;
        EXPECT_TRUE(
            fleet::collectFleetInputs(paths, inputs, error))
            << error;
        fleet::FleetMergeOptions options;
        options.jobs = jobs;
        fleet::FleetModel model;
        EXPECT_TRUE(fleet::mergeFleet(inputs, options, model,
                                      report, error))
            << error;
        return model;
    }

    fs::path dir_;
};

TEST_F(FleetTest, MergeIsByteDeterministic)
{
    std::vector<std::string> paths;
    for (int i = 0; i < 6; ++i) {
        paths.push_back(writeManifest(
            "m" + std::to_string(i) + ".json",
            testManifest("app" + std::to_string(i), 40.0,
                         i == 3 ? 25.0 : 0.1 * i)));
    }

    analysis::Report first_report;
    const std::string first =
        fleet::fleetToJson(merge(paths, first_report));

    // Reversed input order.
    std::vector<std::string> reversed(paths.rbegin(), paths.rend());
    analysis::Report reversed_report;
    EXPECT_EQ(first,
              fleet::fleetToJson(merge(reversed, reversed_report)));

    // More workers.
    analysis::Report jobs_report;
    EXPECT_EQ(first,
              fleet::fleetToJson(merge(paths, jobs_report, 4)));
}

TEST_F(FleetTest, SingleProcessDegenerateCase)
{
    const std::string file =
        writeManifest("only.json", testManifest("solo", 50.0));
    analysis::Report report;
    const fleet::FleetModel model = merge({file}, report);

    EXPECT_EQ(1u, model.processes);
    ASSERT_EQ(1u, model.members.size());
    EXPECT_EQ(file, model.members.front().path);
    EXPECT_EQ(kNumMetrics, model.metrics.size());
    // Below minMembers: no outlier attribution, hence no findings.
    EXPECT_TRUE(model.outliers.empty());
    EXPECT_TRUE(report.clean());
    // The pooled range still reflects the one member.
    EXPECT_DOUBLE_EQ(48.0, model.metrics.front().min);
    EXPECT_DOUBLE_EQ(52.0, model.metrics.front().max);
}

TEST_F(FleetTest, DriftingMemberIsSoleOutlier)
{
    std::vector<std::string> paths;
    for (int i = 0; i < 7; ++i) {
        paths.push_back(writeManifest(
            "steady" + std::to_string(i) + ".json",
            testManifest("steady" + std::to_string(i), 40.0,
                         0.05 * i)));
    }
    const std::string drifter = writeManifest(
        "drifter.json", testManifest("drifter", 40.0, 30.0));
    paths.push_back(drifter);

    analysis::Report report;
    const fleet::FleetModel model = merge(paths, report);

    ASSERT_FALSE(model.outliers.empty());
    for (const fleet::FleetOutlier &outlier : model.outliers)
        EXPECT_EQ(drifter, outlier.path);
    EXPECT_FALSE(report.clean());
    EXPECT_TRUE(report.has("fleet.outlier"));
    // The pooled ranges describe the healthy seven, not the drifter.
    for (const fleet::FleetMetricRange &range : model.metrics)
        EXPECT_LT(range.max, 50.0);
}

TEST_F(FleetTest, SampleWeightShapesAttribution)
{
    // The drifting member barely sampled; heavy steady members keep
    // the leave-one-out yardstick where the real population is.
    std::vector<std::string> paths;
    for (int i = 0; i < 5; ++i) {
        paths.push_back(writeManifest(
            "heavy" + std::to_string(i) + ".json",
            testManifest("heavy" + std::to_string(i), 40.0, 0.0,
                         1000)));
    }
    paths.push_back(writeManifest(
        "light.json", testManifest("light", 40.0, 20.0, 2)));

    analysis::Report report;
    const fleet::FleetModel model = merge(paths, report);
    ASSERT_FALSE(model.outliers.empty());
    for (const fleet::FleetOutlier &outlier : model.outliers)
        EXPECT_EQ(path("light.json"), outlier.path);
}

TEST_F(FleetTest, MixedProvenanceWarns)
{
    const std::string a =
        writeManifest("a.json", testManifest("a", 40.0));
    diag::RunManifest other = testManifest("b", 40.0);
    other.metricFrequency = 150;
    const std::string b = writeManifest("b.json", other);

    analysis::Report report;
    const fleet::FleetModel model = merge({a, b}, report);
    EXPECT_TRUE(model.mixedProvenance);
    EXPECT_TRUE(report.has("fleet.mixed-provenance"));
    // A warning, not an error: the merge still exits 0.
    EXPECT_TRUE(report.clean());
}

TEST_F(FleetTest, DuplicateInputIsNoted)
{
    const std::string a =
        writeManifest("a.json", testManifest("a", 40.0));
    analysis::Report report;
    const fleet::FleetModel model = merge({a, a}, report);
    EXPECT_EQ(1u, model.processes);
    EXPECT_TRUE(report.has("fleet.duplicate"));
    EXPECT_TRUE(report.clean());
}

TEST_F(FleetTest, DirectoryDiscoveryClassifiesKinds)
{
    writeManifest("m1.json", testManifest("a", 40.0));
    writeManifest("m2.json", testManifest("b", 40.0));
    writeBundle("incident-001.json", {"leaky_alloc", "main"});
    {
        // Not a fleet input; must be skipped, not rejected.
        std::ofstream out(path("notes.json"));
        out << "{\"kind\": \"something.else\"}\n";
    }

    fleet::FleetInputs inputs;
    std::string error;
    ASSERT_TRUE(fleet::collectFleetInputs({dir_.string()}, inputs,
                                          error))
        << error;
    EXPECT_EQ(2u, inputs.manifests.size());
    EXPECT_EQ(1u, inputs.bundles.size());

    std::string missing_error;
    EXPECT_FALSE(fleet::collectFleetInputs(
        {path("no-such-file.json")}, inputs, missing_error));
    EXPECT_NE(std::string::npos,
              missing_error.find("does not exist"));
}

TEST_F(FleetTest, IncidentClusteringDedupsBySignature)
{
    diag::RunManifest a = testManifest("a", 40.0);
    a.bundlePaths = {writeBundle("bundle-a.json",
                                 {"leaky_alloc", "main"})};
    diag::RunManifest b = testManifest("b", 40.0);
    b.bundlePaths = {writeBundle("bundle-b.json",
                                 {"leaky_alloc", "main"})};
    diag::RunManifest c = testManifest("c", 40.0);
    c.bundlePaths = {writeBundle("bundle-c.json", {"other_fn"})};
    const std::string pa = writeManifest("a.json", a);
    const std::string pb = writeManifest("b.json", b);
    const std::string pc = writeManifest("c.json", c);

    analysis::Report report;
    const fleet::FleetModel model = merge({pa, pb, pc}, report);

    ASSERT_EQ(2u, model.incidents.size());
    // Biggest cluster first: the same signature on two hosts.
    EXPECT_EQ(2u, model.incidents[0].count);
    EXPECT_EQ(
        fleet::incidentSignature("HeapAnomaly", "Leaves",
                                 {"leaky_alloc", "main"}),
        model.incidents[0].signature);
    EXPECT_EQ(std::vector<std::string>({pa, pb}),
              model.incidents[0].members);
    EXPECT_EQ(1u, model.incidents[1].count);
}

TEST_F(FleetTest, MissingBundleIsANote)
{
    diag::RunManifest a = testManifest("a", 40.0);
    a.bundlePaths = {"bundles/gone-001.json"};
    const std::string pa = writeManifest("a.json", a);

    analysis::Report report;
    const fleet::FleetModel model = merge({pa}, report);
    EXPECT_TRUE(model.incidents.empty());
    EXPECT_TRUE(report.has("fleet.bundle-missing"));
    EXPECT_TRUE(report.clean());
}

TEST_F(FleetTest, ModelRoundTripsByteForByte)
{
    std::vector<std::string> paths;
    for (int i = 0; i < 4; ++i) {
        paths.push_back(writeManifest(
            "m" + std::to_string(i) + ".json",
            testManifest("app" + std::to_string(i), 40.0,
                         i == 2 ? 25.0 : 0.0)));
    }
    analysis::Report report;
    const fleet::FleetModel model = merge(paths, report);
    const std::string json = fleet::fleetToJson(model);

    fleet::FleetModel loaded;
    std::string error;
    ASSERT_TRUE(fleet::loadFleetModel(json, loaded, &error))
        << error;
    EXPECT_EQ(json, fleet::fleetToJson(loaded));
    EXPECT_EQ(model.processes, loaded.processes);
    EXPECT_EQ(model.outliers.size(), loaded.outliers.size());

    std::uint64_t version = 0;
    EXPECT_TRUE(
        fleet::peekFleetSchemaVersion(json, version, nullptr));
    EXPECT_EQ(fleet::kFleetSchemaVersion, version);
}

TEST_F(FleetTest, LintAcceptsMergeOutputAndCatchesDefects)
{
    std::vector<std::string> paths;
    for (int i = 0; i < 4; ++i) {
        paths.push_back(writeManifest(
            "m" + std::to_string(i) + ".json",
            testManifest("app" + std::to_string(i), 40.0,
                         i == 2 ? 25.0 : 0.0)));
    }
    analysis::Report merge_report;
    const fleet::FleetModel model = merge(paths, merge_report);
    const std::string json = fleet::fleetToJson(model);

    {
        analysis::Report lint;
        const analysis::FleetLintStats stats =
            analysis::lintFleetText(json, lint);
        EXPECT_TRUE(lint.clean()) << lint.describe();
        EXPECT_EQ(4u, stats.members);
        EXPECT_EQ(kNumMetrics, stats.metrics);
    }
    {
        // Out-of-order members.
        analysis::Report lint;
        std::string broken = json;
        const std::size_t at = broken.find("m0.json");
        ASSERT_NE(std::string::npos, at);
        broken.replace(at, 7, "z9.json");
        analysis::lintFleetText(broken, lint);
        EXPECT_TRUE(lint.has("fleet.member-order"));
    }
    {
        // An outlier pointing at no member.
        analysis::Report lint;
        std::string broken = json;
        const std::size_t outliers = broken.find("\"outliers\"");
        ASSERT_NE(std::string::npos, outliers);
        const std::size_t at = broken.find("m2.json", outliers);
        ASSERT_NE(std::string::npos, at);
        broken.replace(at, 7, "zz.json");
        analysis::lintFleetText(broken, lint);
        EXPECT_TRUE(lint.has("fleet.outlier-unknown"));
    }
    {
        // An unknown metric name.
        analysis::Report lint;
        std::string broken = json;
        const std::size_t at = broken.find("\"Leaves\"");
        ASSERT_NE(std::string::npos, at);
        broken.replace(at, 8, "\"Bogus1\"");
        analysis::lintFleetText(broken, lint);
        EXPECT_TRUE(lint.has("fleet.bad-metric"));
    }
    {
        analysis::Report lint;
        analysis::lintFleetText("{\"kind\": \"heapmd.manifest\"}",
                                lint);
        EXPECT_TRUE(lint.has("fleet.kind"));
    }
}

TEST_F(FleetTest, TrendFlagsNewOutlierAndDrift)
{
    std::vector<std::string> steady;
    for (int i = 0; i < 4; ++i) {
        steady.push_back(writeManifest(
            "m" + std::to_string(i) + ".json",
            testManifest("app" + std::to_string(i), 40.0)));
    }
    analysis::Report baseline_report;
    const fleet::FleetModel baseline =
        merge(steady, baseline_report);

    {
        // Identical fleets: clean.
        analysis::Report report;
        fleet::compareFleets(baseline, baseline, {}, report);
        EXPECT_TRUE(report.clean()) << report.describe();
        EXPECT_TRUE(report.findings().empty());
    }

    // Today one member drifted.
    std::vector<std::string> today(steady.begin(),
                                   steady.end() - 1);
    today.push_back(writeManifest(
        "m3b.json", testManifest("app3", 40.0, 30.0)));
    analysis::Report today_report;
    const fleet::FleetModel candidate = merge(today, today_report);

    analysis::Report report;
    fleet::compareFleets(baseline, candidate, {}, report);
    EXPECT_FALSE(report.clean());
    EXPECT_TRUE(report.has("fleet.outlier-new"));
    EXPECT_TRUE(report.has("fleet.outlier-count"));
}

TEST_F(FleetTest, TrendFlagsShrinkAndNewIncidents)
{
    std::vector<std::string> paths;
    for (int i = 0; i < 3; ++i) {
        paths.push_back(writeManifest(
            "m" + std::to_string(i) + ".json",
            testManifest("app" + std::to_string(i), 40.0)));
    }
    analysis::Report baseline_report;
    const fleet::FleetModel baseline = merge(paths, baseline_report);

    // Today: one member gone, and an incident cluster appeared.
    diag::RunManifest with_bundle = testManifest("app0", 40.0);
    with_bundle.bundlePaths = {
        writeBundle("bundle.json", {"leaky_alloc"})};
    analysis::Report today_report;
    const fleet::FleetModel candidate =
        merge({writeManifest("m0b.json", with_bundle), paths[1]},
              today_report);

    analysis::Report report;
    fleet::compareFleets(baseline, candidate, {}, report);
    EXPECT_TRUE(report.has("fleet.process-count"));
    EXPECT_TRUE(report.has("fleet.incident-new"));
    EXPECT_FALSE(report.clean());
}

} // namespace

} // namespace heapmd
