/**
 * @file
 * Tests for the worker pool and the deterministic parallel-for the
 * replay pipeline is built on.
 */

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "support/thread_pool.hh"

using namespace heapmd;

TEST(EffectiveJobs, ZeroMeansHardwareConcurrency)
{
    EXPECT_GE(effectiveJobs(0), 1u);
    EXPECT_EQ(effectiveJobs(1), 1u);
    EXPECT_EQ(effectiveJobs(7), 7u);
}

TEST(ThreadPool, RunsEveryPostedTask)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(4);
        EXPECT_EQ(pool.workerCount(), 4u);
        for (int i = 0; i < 100; ++i)
            pool.post([&] { ran.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(ran.load(), 100);
    }
}

TEST(ThreadPool, DestructorDrainsTheQueue)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.post([&] { ran.fetch_add(1); });
        // No wait(): the destructor must finish the queue itself.
    }
    EXPECT_EQ(ran.load(), 50);
}

TEST(ParallelForIndexed, EveryIndexRunsExactlyOnce)
{
    constexpr std::size_t kCount = 500;
    std::vector<std::atomic<int>> hits(kCount);
    parallelForIndexed(kCount, 4, [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelForIndexed, SingleJobRunsInOrderOnCallingThread)
{
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    parallelForIndexed(10, 1, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    std::vector<std::size_t> expected(10);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected);
}

TEST(ParallelForIndexed, ZeroJobsMeansHardwareSize)
{
    std::atomic<int> ran{0};
    parallelForIndexed(32, 0, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 32);
}

TEST(ParallelForIndexed, CountZeroNeverCallsTheBody)
{
    bool called = false;
    parallelForIndexed(0, 8, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelForIndexed, SingleItemRunsInline)
{
    const std::thread::id caller = std::this_thread::get_id();
    std::size_t seen = 99;
    parallelForIndexed(1, 8, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        seen = i;
    });
    EXPECT_EQ(seen, 0u);
}

TEST(ParallelForIndexed, ResultSlotsAreDeterministic)
{
    constexpr std::size_t kCount = 200;
    std::vector<std::size_t> slots(kCount, ~std::size_t{0});
    parallelForIndexed(kCount, 8, [&](std::size_t i) {
        slots[i] = i * i;
    });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(slots[i], i * i);
}

TEST(ParallelForIndexed, RethrowsSequentialException)
{
    EXPECT_THROW(
        parallelForIndexed(5, 1,
                           [&](std::size_t i) {
                               if (i == 3)
                                   throw std::runtime_error("boom 3");
                           }),
        std::runtime_error);
}

TEST(ParallelForIndexed, RethrowsParallelException)
{
    std::atomic<int> ran{0};
    try {
        parallelForIndexed(100, 4, [&](std::size_t i) {
            ran.fetch_add(1);
            throw std::runtime_error("fail " + std::to_string(i));
        });
        FAIL() << "expected a rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("fail"),
                  std::string::npos);
    }
    // Abandonment: the four workers stop claiming after the throw.
    EXPECT_LE(ran.load(), 4);
}

TEST(ParallelForIndexed, ExceptionAbandonsRemainingIndices)
{
    std::atomic<int> ran{0};
    EXPECT_THROW(
        parallelForIndexed(1000, 2,
                           [&](std::size_t) {
                               ran.fetch_add(1);
                               throw std::runtime_error("early");
                           }),
        std::runtime_error);
    EXPECT_LT(ran.load(), 1000);
}
