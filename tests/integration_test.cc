/**
 * @file
 * Integration tests: the full train -> model -> check pipeline, trace
 * record/replay through the pipeline, and SWAT-vs-HeapMD end to end.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/heapmd.hh"
#include "swat/swat_detector.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_writer.hh"

namespace heapmd
{

namespace
{

HeapMDConfig
smallConfig()
{
    HeapMDConfig cfg;
    cfg.process.metricFrequency = 200;
    return cfg;
}

AppConfig
input(std::uint64_t seed, double scale = 0.4)
{
    AppConfig cfg;
    cfg.inputSeed = seed;
    cfg.scale = scale;
    return cfg;
}

TEST(PipelineTest, TrainProducesUsableModel)
{
    HeapMD tool(smallConfig());
    auto app = makeApp("Multimedia");
    const TrainingOutcome training =
        tool.train(*app, makeInputs(1, 6, 1, 0.4));
    EXPECT_EQ(training.model.trainingRuns, 6u);
    EXPECT_GE(training.model.stableMetricCount(), 1u);
    EXPECT_EQ(training.summarizer.runCount(), 6u);
    EXPECT_TRUE(training.suspectTrainingRuns.empty());
    const HeapModel::Entry *example =
        pickExampleMetric(training.model);
    ASSERT_NE(example, nullptr);
    EXPECT_GE(example->stableRuns, 1u);
}

TEST(PipelineTest, CleanInputsProduceNoReports)
{
    HeapMD tool(smallConfig());
    auto app = makeApp("Multimedia");
    const TrainingOutcome training =
        tool.train(*app, makeInputs(1, 10, 1, 0.4));
    for (std::uint64_t seed = 50; seed < 53; ++seed) {
        const CheckOutcome out =
            tool.check(*app, input(seed), training.model);
        EXPECT_FALSE(out.check.anomalous())
            << "seed " << seed << " first report: "
            << (out.check.reports.empty()
                    ? ""
                    : out.check.reports[0].describe(
                          FunctionRegistry{}));
    }
}

TEST(PipelineTest, InjectedInvariantBugDetectedWithDirection)
{
    HeapMD tool(smallConfig());
    auto app = makeApp("PC Game (action)");
    const TrainingOutcome training =
        tool.train(*app, makeInputs(1, 10, 1, 0.4));

    bool detected = false;
    for (std::uint64_t seed = 90; seed < 94 && !detected; ++seed) {
        AppConfig cfg = input(seed);
        cfg.faults.enable(FaultKind::TreeMissingParent, 1.0);
        const CheckOutcome out =
            tool.check(*app, cfg, training.model);
        for (const BugReport &r : out.check.reports) {
            if (r.metric == MetricId::Indeg1 &&
                r.direction == AnomalyDirection::AboveMax) {
                // The Figure 10 signature: %indegree=1 rises above
                // its calibrated maximum.
                detected = true;
            }
        }
    }
    EXPECT_TRUE(detected);
}

TEST(PipelineTest, BuggyTrainingInputFlaggedAsSuspect)
{
    // Train with one buggy input among clean ones: Section 4.1 says
    // such inputs show up as range violators against the stable rest.
    HeapMD tool(smallConfig());
    auto app = makeApp("Interactive web-app.");
    std::vector<AppConfig> inputs = makeInputs(1, 9, 1, 0.4);
    AppConfig buggy = input(99);
    // A build with a manifest leak: descriptors leak at every typo
    // site and a steady drip of dropped blocks accumulates, pushing
    // the run's Leaves/Roots envelope well past the clean spread.
    buggy.faults.enable(FaultKind::TypoLeak, 1.0);
    buggy.faults.enable(FaultKind::SmallLeak, 0.04);
    inputs.push_back(buggy);
    const TrainingOutcome training = tool.train(*app, inputs);
    bool flagged = false;
    for (std::size_t idx : training.suspectTrainingRuns)
        flagged |= idx == 9;
    EXPECT_TRUE(flagged);
}

TEST(PipelineTest, ModelRoundTripsThroughSerialization)
{
    HeapMD tool(smallConfig());
    auto app = makeApp("gzip");
    const TrainingOutcome training =
        tool.train(*app, makeInputs(1, 5, 1, 0.4));
    std::stringstream ss;
    training.model.save(ss);
    const HeapModel loaded = HeapModel::load(ss);
    EXPECT_EQ(loaded.stableMetricCount(),
              training.model.stableMetricCount());
    // Checking against the loaded model behaves identically.
    const CheckOutcome a = tool.check(*app, input(42), training.model);
    const CheckOutcome b = tool.check(*app, input(42), loaded);
    EXPECT_EQ(a.check.reports.size(), b.check.reports.size());
}

TEST(PipelineTest, OfflineTraceCheckMatchesOnline)
{
    // Record a buggy run to a trace, replay it offline into a fresh
    // checker: the post-mortem design of Section 2 must agree with
    // online checking.
    HeapMD tool(smallConfig());
    auto app = makeApp("PC Game (action)");
    const TrainingOutcome training =
        tool.train(*app, makeInputs(1, 8, 1, 0.4));

    AppConfig cfg = input(91);
    cfg.faults.enable(FaultKind::TreeMissingParent, 1.0);

    // Online check + recording.
    ProcessConfig pcfg = smallConfig().process;
    Process online(pcfg);
    std::stringstream trace_bytes;
    TraceWriter writer(trace_bytes, online.registry());
    online.addEventObserver(&writer);
    ExecutionChecker online_checker(training.model);
    online_checker.attach(online);
    app->run(online, cfg);
    writer.finish();
    const CheckResult online_result = online_checker.finalize(online);

    // Offline replay into a fresh process + checker.
    Process offline(pcfg);
    ExecutionChecker offline_checker(training.model);
    offline_checker.attach(offline);
    TraceReader reader(trace_bytes);
    replayTrace(reader, offline);
    const CheckResult offline_result =
        offline_checker.finalize(offline);

    EXPECT_EQ(offline_result.reports.size(),
              online_result.reports.size());
    ASSERT_EQ(offline.series().size(), online.series().size());
    for (std::size_t i = 0; i < offline.series().size(); ++i) {
        for (MetricId id : kAllMetrics) {
            ASSERT_DOUBLE_EQ(offline.series().at(i).value(id),
                             online.series().at(i).value(id));
        }
    }
}

TEST(PipelineTest, SwatFindsReachableLeakHeapMdMisses)
{
    // The Table 1 contrast in miniature: a reachable leak is invisible
    // to HeapMD's degree metrics but stale to SWAT.
    HeapMD tool(smallConfig());
    auto app = makeApp("PC Game (simulation)");
    const TrainingOutcome training =
        tool.train(*app, makeInputs(1, 8, 1, 0.4));

    AppConfig cfg = input(77);
    cfg.faults.enable(FaultKind::ReachableLeak, 0.0015);

    ProcessConfig pcfg = smallConfig().process;
    Process process(pcfg);
    ExecutionChecker checker(training.model);
    checker.attach(process);
    SwatConfig scfg;
    scfg.stalenessThreshold = 30000; // scaled to the short test run
    SwatDetector swat(scfg);
    swat.attach(process);

    const AppResult appResult = app->run(process, cfg);
    ASSERT_GT(appResult.reachableLeakObjects, 0u);

    // SWAT: stale archive objects reported (sticky across teardown).
    const auto leaks = swat.finalize(process.now());
    EXPECT_GT(leaks.size(), 0u);

    // HeapMD: reachable leak keeps indegree 1 -> no metric anomaly.
    const CheckResult result = checker.finalize(process);
    EXPECT_FALSE(result.anomalous());
}

TEST(PipelineTest, MakeInputsHelper)
{
    const auto inputs = makeInputs(10, 3, 2, 0.5);
    ASSERT_EQ(inputs.size(), 3u);
    EXPECT_EQ(inputs[0].inputSeed, 10u);
    EXPECT_EQ(inputs[2].inputSeed, 12u);
    EXPECT_EQ(inputs[1].version, 2u);
    EXPECT_DOUBLE_EQ(inputs[1].scale, 0.5);
}

TEST(PipelineTest, PickExampleMetricPrefersMostStable)
{
    HeapModel model;
    HeapModel::Entry wide;
    wide.id = MetricId::Roots;
    wide.minValue = 0;
    wide.maxValue = 50;
    wide.stableRuns = 3;
    model.addEntry(wide);
    HeapModel::Entry narrow;
    narrow.id = MetricId::Leaves;
    narrow.minValue = 10;
    narrow.maxValue = 12;
    narrow.stableRuns = 3;
    model.addEntry(narrow);
    HeapModel::Entry most;
    most.id = MetricId::Outdeg1;
    most.minValue = 0;
    most.maxValue = 99;
    most.stableRuns = 5;
    model.addEntry(most);
    const HeapModel::Entry *pick = pickExampleMetric(model);
    ASSERT_NE(pick, nullptr);
    EXPECT_EQ(pick->id, MetricId::Outdeg1); // most stable runs wins
    EXPECT_EQ(pickExampleMetric(HeapModel{}), nullptr);
}

} // namespace

} // namespace heapmd
