/**
 * @file
 * Unit tests of the fault-injection plan.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "faults/fault_plan.hh"

namespace heapmd
{

namespace
{

TEST(FaultPlanTest, EmptyByDefault)
{
    FaultPlan plan;
    EXPECT_TRUE(plan.empty());
    Rng rng(1);
    for (std::size_t i = 0; i < kNumFaultKinds; ++i) {
        const auto kind = static_cast<FaultKind>(i);
        EXPECT_FALSE(plan.isActive(kind));
        EXPECT_FALSE(plan.fire(kind, rng));
        EXPECT_EQ(plan.firedCount(kind), 0u);
    }
}

TEST(FaultPlanTest, RateOneAlwaysFires)
{
    FaultPlan plan;
    plan.enable(FaultKind::TypoLeak, 1.0);
    Rng rng(2);
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(plan.fire(FaultKind::TypoLeak, rng));
    EXPECT_EQ(plan.firedCount(FaultKind::TypoLeak), 50u);
}

TEST(FaultPlanTest, RateZeroNeverFires)
{
    FaultPlan plan;
    plan.enable(FaultKind::TypoLeak, 0.0);
    EXPECT_TRUE(plan.isActive(FaultKind::TypoLeak));
    Rng rng(3);
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(plan.fire(FaultKind::TypoLeak, rng));
}

TEST(FaultPlanTest, FractionalRateApproximated)
{
    FaultPlan plan;
    plan.enable(FaultKind::SmallLeak, 0.25);
    Rng rng(4);
    int fired = 0;
    for (int i = 0; i < 4000; ++i)
        fired += plan.fire(FaultKind::SmallLeak, rng) ? 1 : 0;
    EXPECT_NEAR(fired / 4000.0, 0.25, 0.04);
}

TEST(FaultPlanTest, BudgetCapsTriggers)
{
    FaultPlan plan;
    plan.enable(FaultKind::SmallLeak, 1.0, 5);
    Rng rng(5);
    int fired = 0;
    for (int i = 0; i < 100; ++i)
        fired += plan.fire(FaultKind::SmallLeak, rng) ? 1 : 0;
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(plan.firedCount(FaultKind::SmallLeak), 5u);
    plan.resetCounters();
    EXPECT_EQ(plan.firedCount(FaultKind::SmallLeak), 0u);
    EXPECT_TRUE(plan.fire(FaultKind::SmallLeak, rng)); // refilled
}

TEST(FaultPlanTest, ActiveKinds)
{
    FaultPlan plan;
    plan.enable(FaultKind::TypoLeak, 0.5);
    plan.enable(FaultKind::OctTreeDag, 1.0);
    const auto kinds = plan.activeKinds();
    ASSERT_EQ(kinds.size(), 2u);
    EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanDeathTest, BadRateFatal)
{
    FaultPlan plan;
    EXPECT_DEATH(plan.enable(FaultKind::TypoLeak, 1.5), "rate");
    EXPECT_DEATH(plan.enable(FaultKind::TypoLeak, -0.1), "rate");
}

TEST(FaultTaxonomyTest, CategoriesMatchThePaper)
{
    // Figure 8/9 ground-truth mapping.
    EXPECT_EQ(faultCategory(FaultKind::TypoLeak),
              BugCategory::ProgrammingTypo);
    EXPECT_EQ(faultCategory(FaultKind::SmallLeak),
              BugCategory::ProgrammingTypo);
    EXPECT_EQ(faultCategory(FaultKind::CircularDanglingTail),
              BugCategory::SharedState);
    EXPECT_EQ(faultCategory(FaultKind::SharedStateFree),
              BugCategory::SharedState);
    EXPECT_EQ(faultCategory(FaultKind::DllMissingPrev),
              BugCategory::DataStructureInvariant);
    EXPECT_EQ(faultCategory(FaultKind::TreeMissingParent),
              BugCategory::DataStructureInvariant);
    EXPECT_EQ(faultCategory(FaultKind::OctTreeDag),
              BugCategory::DataStructureInvariant);
    EXPECT_EQ(faultCategory(FaultKind::BTreeLeafUnlinked),
              BugCategory::DataStructureInvariant);
    EXPECT_EQ(faultCategory(FaultKind::BadHashFunction),
              BugCategory::Indirect);
    EXPECT_EQ(faultCategory(FaultKind::SingleChildTree),
              BugCategory::Indirect);
    EXPECT_EQ(faultCategory(FaultKind::LocalizationBug),
              BugCategory::Indirect);
}

TEST(FaultTaxonomyTest, LeakFlag)
{
    EXPECT_TRUE(faultLeaks(FaultKind::TypoLeak));
    EXPECT_TRUE(faultLeaks(FaultKind::SmallLeak));
    EXPECT_TRUE(faultLeaks(FaultKind::ReachableLeak));
    EXPECT_FALSE(faultLeaks(FaultKind::DllMissingPrev));
    EXPECT_FALSE(faultLeaks(FaultKind::BadHashFunction));
}

TEST(FaultTaxonomyTest, NamesAreUnique)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < kNumFaultKinds; ++i)
        names.insert(faultKindName(static_cast<FaultKind>(i)));
    EXPECT_EQ(names.size(), kNumFaultKinds);
}

TEST(ClassificationTest, DisplayNames)
{
    EXPECT_STREQ(bugClassName(BugClass::HeapAnomaly), "heap-anomaly");
    EXPECT_STREQ(bugClassName(BugClass::PoorlyDisguised),
                 "poorly-disguised");
    EXPECT_STREQ(bugClassName(BugClass::Pathological), "pathological");
    EXPECT_STREQ(bugCategoryName(BugCategory::ProgrammingTypo),
                 "Programming Typos");
    EXPECT_STREQ(bugCategoryName(BugCategory::SharedState),
                 "Shared state");
    EXPECT_STREQ(
        bugCategoryName(BugCategory::DataStructureInvariant),
        "Data struct. Invariants");
    EXPECT_STREQ(bugCategoryName(BugCategory::Indirect), "Indirect");
}

} // namespace

} // namespace heapmd
