/**
 * @file
 * Live-observability tests: the shared-memory stats segment (seqlock
 * writer/reader, discovery, reaping, version gating), the Prometheus
 * exposition renderer, and the `heapmd top` text view.
 *
 * Segment tests use fake pids far above the kernel's pid ceiling, so
 * they can never collide with a real process's segment and pidAlive()
 * is reliably false for them.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "obsv/prometheus.hh"
#include "obsv/segment.hh"
#include "obsv/top_view.hh"

using namespace heapmd;
using namespace heapmd::obsv;

namespace
{

/** Fake pids: above PID_MAX_LIMIT (4194304), unique per test. */
std::uint32_t
fakePid(std::uint32_t salt)
{
    return 4000000000u + (static_cast<std::uint32_t>(::getpid()) %
                          100000u) * 10u + salt;
}

class ObsvSegmentTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        for (std::uint32_t pid : created_)
            unlinkSegmentForPid(pid);
    }

    std::uint32_t
    track(std::uint32_t pid)
    {
        created_.push_back(pid);
        return pid;
    }

    std::vector<std::uint32_t> created_;
};

TEST_F(ObsvSegmentTest, WriterReaderRoundTrip)
{
    const std::uint32_t pid = track(fakePid(1));
    SegmentWriter writer;
    ASSERT_TRUE(writer.create(pid, "roundtrip"));
    ASSERT_TRUE(writer.valid());

    std::array<std::uint64_t, kSlotCount> values{};
    for (std::size_t i = 0; i < kSlotCount; ++i)
        values[i] = 1000 + i;
    writer.publish(values);

    SegmentReader reader;
    std::string error;
    ASSERT_TRUE(reader.attachPid(pid, &error)) << error;
    SegmentSnapshot snapshot;
    ASSERT_TRUE(reader.read(snapshot, &error)) << error;

    EXPECT_EQ(snapshot.pid, pid);
    EXPECT_EQ(snapshot.layoutVersion, kLayoutVersion);
    EXPECT_EQ(snapshot.program, "roundtrip");
    EXPECT_GT(snapshot.startMonoMs, 0u);
    EXPECT_GE(snapshot.heartbeatMonoMs, snapshot.startMonoMs);
    for (std::size_t i = 0; i < kSlotCount; ++i)
        EXPECT_EQ(snapshot.values[i], 1000 + i) << "slot " << i;
}

TEST_F(ObsvSegmentTest, MetricSlotsStartAbsentAndScaleBack)
{
    const std::uint32_t pid = track(fakePid(2));
    SegmentWriter writer;
    ASSERT_TRUE(writer.create(pid, "metrics"));

    SegmentReader reader;
    std::string error;
    ASSERT_TRUE(reader.attachPid(pid, &error)) << error;
    SegmentSnapshot snapshot;
    ASSERT_TRUE(reader.read(snapshot, &error)) << error;
    EXPECT_FALSE(snapshot.hasMetrics());
    EXPECT_EQ(snapshot.metricPercent(MetricId::Roots), 0.0);

    std::array<std::uint64_t, kSlotCount> values{};
    // 43.21% at the fixed-point scale.
    values[metricSlotIndex(MetricId::Roots)] = 432100;
    writer.publish(values);
    ASSERT_TRUE(reader.read(snapshot, &error)) << error;
    EXPECT_TRUE(snapshot.hasMetrics());
    EXPECT_DOUBLE_EQ(snapshot.metricPercent(MetricId::Roots), 43.21);
}

TEST_F(ObsvSegmentTest, PublishPrefixLeavesTailSlotsAlone)
{
    const std::uint32_t pid = track(fakePid(3));
    SegmentWriter writer;
    ASSERT_TRUE(writer.create(pid, "prefix"));

    std::array<std::uint64_t, kSlotCount> values{};
    for (std::size_t i = 0; i < kSlotCount; ++i)
        values[i] = 7000 + i;
    writer.publish(values);

    const std::uint64_t prefix[4] = {1, 2, 3, 4};
    writer.publishPrefix(prefix, 4);

    SegmentReader reader;
    std::string error;
    ASSERT_TRUE(reader.attachPid(pid, &error)) << error;
    SegmentSnapshot snapshot;
    ASSERT_TRUE(reader.read(snapshot, &error)) << error;
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(snapshot.values[i], i + 1);
    for (std::size_t i = 4; i < kSlotCount; ++i)
        EXPECT_EQ(snapshot.values[i], 7000 + i) << "slot " << i;
}

TEST_F(ObsvSegmentTest, ReaderRejectsLayoutVersionSkew)
{
    const std::uint32_t pid = track(fakePid(4));
    SegmentWriter writer;
    ASSERT_TRUE(writer.create(pid, "skew"));

    // Re-map the same segment read-write and bump its layout version,
    // as a newer shim would have written.
    char name[32];
    segmentName(pid, name, sizeof name);
    const int fd = ::shm_open(name, O_RDWR, 0);
    ASSERT_GE(fd, 0);
    void *mapped = ::mmap(nullptr, kSegmentBytes,
                          PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    ::close(fd);
    ASSERT_NE(mapped, MAP_FAILED);
    static_cast<SegmentHeader *>(mapped)->layoutVersion =
        kLayoutVersion + 1;

    SegmentReader reader;
    std::string error;
    ASSERT_TRUE(reader.attachPid(pid, &error)) << error;
    SegmentSnapshot snapshot;
    EXPECT_FALSE(reader.read(snapshot, &error));
    EXPECT_NE(error.find("layout version"), std::string::npos)
        << error;
    ::munmap(mapped, kSegmentBytes);
}

TEST_F(ObsvSegmentTest, ListAndReapDeadSegments)
{
    const std::uint32_t pid = track(fakePid(5));
    SegmentWriter writer;
    ASSERT_TRUE(writer.create(pid, "dead"));
    // The writer stays mapped, but the fake pid names no live
    // process, so the reaper must collect the /dev/shm entry.
    EXPECT_FALSE(pidAlive(pid));

    const std::vector<std::uint32_t> pids = listSegmentPids();
    EXPECT_NE(std::find(pids.begin(), pids.end(), pid), pids.end());

    const ReapResult result = reapDeadSegments();
    EXPECT_NE(std::find(result.reaped.begin(), result.reaped.end(),
                        pid),
              result.reaped.end());
    const std::vector<std::uint32_t> after = listSegmentPids();
    EXPECT_EQ(std::find(after.begin(), after.end(), pid), after.end());
}

TEST_F(ObsvSegmentTest, OwnPidIsAlive)
{
    EXPECT_TRUE(pidAlive(static_cast<std::uint32_t>(::getpid())));
}

/**
 * Seqlock torn-read fuzz: a writer republishing at full speed while a
 * reader snapshots concurrently.  Every slot of every publish carries
 * the same generation value, so any snapshot mixing two generations
 * is a torn read the seqlock failed to exclude.  Run under TSan in CI
 * to also prove the protocol is race-annotation clean.
 */
TEST(SeqlockTortureTest, SnapshotsAreNeverTorn)
{
    const std::uint32_t pid = fakePid(6);
    SegmentWriter writer;
    ASSERT_TRUE(writer.create(pid, "torture"));

    std::atomic<bool> stop{false};
    std::thread publisher([&] {
        std::array<std::uint64_t, kSlotCount> values{};
        std::uint64_t generation = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            ++generation;
            values.fill(generation);
            writer.publish(values);
            // Exercise the partial-publish path with the same
            // generation so the all-equal invariant still holds.
            writer.publishPrefix(values.data(), 8);
        }
    });

    SegmentReader reader;
    std::string error;
    ASSERT_TRUE(reader.attachPid(pid, &error)) << error;
    // Time-boxed: on a single-core host the publisher thread only
    // runs when this loop yields, so an iteration count alone could
    // finish before the first publish ever lands.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(5);
    std::size_t reads = 0;
    while (reads < 2000 &&
           std::chrono::steady_clock::now() < deadline) {
        SegmentSnapshot snapshot;
        if (!reader.read(snapshot, &error)) {
            std::this_thread::yield(); // writer never quiesced
            continue;
        }
        const std::uint64_t first = snapshot.values[0];
        if (first == 0) {
            std::this_thread::yield();
            continue; // initial state, before the first publish:
                      // metric slots still carry the absent sentinel
        }
        ++reads;
        for (std::size_t s = 1; s < kSlotCount; ++s)
            ASSERT_EQ(snapshot.values[s], first)
                << "torn read: slot " << s << " generation "
                << snapshot.values[s] << " vs " << first;
    }
    stop.store(true);
    publisher.join();
    EXPECT_GT(reads, 0u);
    unlinkSegmentForPid(pid);
}

SegmentSnapshot
sampleSnapshot()
{
    SegmentSnapshot snapshot;
    snapshot.pid = 4242;
    snapshot.layoutVersion = kLayoutVersion;
    snapshot.program = "sample";
    snapshot.startMonoMs = 1000;
    snapshot.heartbeatMonoMs = 2500;
    for (std::size_t i = 0; i < kSlotCount; ++i)
        snapshot.values[i] = 10 * (i + 1);
    snapshot.values[metricSlotIndex(MetricId::Roots)] = 123400;
    return snapshot;
}

TEST(ObsvPrometheusTest, EscapesLabelValues)
{
    EXPECT_EQ(escapeLabelValue("plain"), "plain");
    EXPECT_EQ(escapeLabelValue("a\\b"), "a\\\\b");
    EXPECT_EQ(escapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(escapeLabelValue("two\nlines"), "two\\nlines");
}

TEST(ObsvPrometheusTest, RendersDeterministicExposition)
{
    const std::vector<SegmentSnapshot> snapshots = {sampleSnapshot()};
    const std::string first = renderPrometheus(snapshots);
    const std::string second = renderPrometheus(snapshots);
    EXPECT_EQ(first, second);

    EXPECT_NE(first.find("# TYPE heapmd_live_objects gauge"),
              std::string::npos);
    EXPECT_NE(first.find("# TYPE heapmd_alloc_events_total counter"),
              std::string::npos);
    EXPECT_NE(
        first.find(
            "heapmd_live_objects{pid=\"4242\",program=\"sample\"} 10"),
        std::string::npos)
        << first;
    // 123400 at the fixed-point scale is 12.34%.
    EXPECT_NE(first.find("metric=\"Root\"} 12.340000"),
              std::string::npos)
        << first;
    // Timestamps come from the segment, never the scraping host.
    EXPECT_NE(first.find("heapmd_heartbeat_monotonic_ms{pid=\"4242\","
                         "program=\"sample\"} 2500"),
              std::string::npos)
        << first;
}

TEST(ObsvPrometheusTest, EscapesProgramLabel)
{
    SegmentSnapshot snapshot = sampleSnapshot();
    snapshot.program = "evil\"app\\v1";
    const std::string text = renderPrometheus({snapshot});
    EXPECT_NE(text.find("program=\"evil\\\"app\\\\v1\""),
              std::string::npos)
        << text;
}

TEST(ObsvTopViewTest, RendersEmptyAndLiveSegments)
{
    EXPECT_EQ(renderTop({}, nullptr, 5000),
              "no live heapmd segments in /dev/shm\n");

    const SegmentSnapshot snapshot = sampleSnapshot();
    const std::string view = renderTop({snapshot}, nullptr, 3000);
    EXPECT_NE(view.find("pid 4242"), std::string::npos);
    EXPECT_NE(view.find("sample"), std::string::npos);
    EXPECT_EQ(view.find("[STALE]"), std::string::npos);
    EXPECT_NE(view.find("Root"), std::string::npos) << view;

    // Heartbeat 2500 against now 9000 is 6.5s stale: over the banner
    // threshold.
    const std::string stale = renderTop({snapshot}, nullptr, 9000);
    EXPECT_NE(stale.find("[STALE]"), std::string::npos) << stale;
}

TEST(ObsvTopViewTest, DriftColumnComparesAgainstModel)
{
    HeapModel model;
    model.programName = "sample";
    HeapModel::Entry entry;
    entry.id = MetricId::Roots;
    entry.minValue = 20.0;
    entry.maxValue = 30.0;
    entry.stableRuns = 5;
    model.addEntry(entry);

    // Roots is 12.34% in the sample: below the calibrated range.
    const std::string view =
        renderTop({sampleSnapshot()}, &model, 3000);
    EXPECT_NE(view.find("BELOW [20.0, 30.0]"), std::string::npos)
        << view;
    // Metrics without a model entry render as unstable.
    EXPECT_NE(view.find("unstable"), std::string::npos) << view;
}

} // namespace
