/**
 * @file
 * Unit tests of the heap-graph mirror: edge maintenance, freeing
 * semantics, realloc semantics, and the incremental degree census.
 */

#include <gtest/gtest.h>

#include "heapgraph/heap_graph.hh"

namespace heapmd
{

namespace
{

constexpr Addr kA = 0x1000;
constexpr Addr kB = 0x2000;
constexpr Addr kC = 0x3000;

TEST(DegreeHistogramTest, AddRemoveVertices)
{
    DegreeHistogram h;
    h.addVertex();
    h.addVertex();
    EXPECT_EQ(h.vertexCount(), 2u);
    EXPECT_EQ(h.indegCount(0), 2u);
    EXPECT_EQ(h.outdegCount(0), 2u);
    EXPECT_EQ(h.inEqOutCount(), 2u);
    h.removeVertex(0, 0);
    EXPECT_EQ(h.vertexCount(), 1u);
}

TEST(DegreeHistogramTest, TransitionMovesBuckets)
{
    DegreeHistogram h;
    h.addVertex();
    h.transition(0, 0, 1, 0);
    EXPECT_EQ(h.indegCount(0), 0u);
    EXPECT_EQ(h.indegCount(1), 1u);
    EXPECT_EQ(h.inEqOutCount(), 0u);
    h.transition(1, 0, 1, 1);
    EXPECT_EQ(h.inEqOutCount(), 1u);
    h.transition(1, 1, 5, 5); // beyond exact buckets, still in==out
    EXPECT_EQ(h.indegCount(1), 0u);
    EXPECT_EQ(h.inEqOutCount(), 1u);
}

TEST(DegreeHistogramTest, NoopTransition)
{
    DegreeHistogram h;
    h.addVertex();
    h.transition(0, 0, 0, 0);
    EXPECT_EQ(h.indegCount(0), 1u);
}

TEST(DegreeHistogramDeathTest, RemoveFromEmptyPanics)
{
    DegreeHistogram h;
    EXPECT_DEATH(h.removeVertex(0, 0), "empty");
}

TEST(DegreeHistogramDeathTest, BucketQueryBeyondExactPanics)
{
    DegreeHistogram h;
    EXPECT_DEATH(h.indegCount(3), "not tracked");
    EXPECT_DEATH(h.outdegCount(3), "not tracked");
}

TEST(HeapGraphTest, AllocateCreatesIsolatedVertex)
{
    HeapGraph g;
    const ObjectId id = g.allocate(kA, 64);
    EXPECT_EQ(g.vertexCount(), 1u);
    EXPECT_EQ(g.edgeCount(), 0u);
    const ObjectRecord *rec = g.objectById(id);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->indegree(), 0u);
    EXPECT_EQ(rec->outdegree(), 0u);
    EXPECT_EQ(g.stats().liveBytes, 64u);
}

TEST(HeapGraphTest, WriteCreatesEdge)
{
    HeapGraph g;
    const ObjectId a = g.allocate(kA, 64);
    const ObjectId b = g.allocate(kB, 64);
    g.write(kA + 8, kB);
    EXPECT_TRUE(g.hasEdge(a, b));
    EXPECT_EQ(g.edgeCount(), 1u);
    EXPECT_EQ(g.objectById(a)->outdegree(), 1u);
    EXPECT_EQ(g.objectById(b)->indegree(), 1u);
    EXPECT_EQ(g.stats().pointerWrites, 1u);
}

TEST(HeapGraphTest, InteriorPointerCreatesEdge)
{
    HeapGraph g;
    const ObjectId a = g.allocate(kA, 64);
    const ObjectId b = g.allocate(kB, 64);
    g.write(kA, kB + 63); // last byte of b
    EXPECT_TRUE(g.hasEdge(a, b));
    g.write(kA, kB + 64); // one past the end: no object
    EXPECT_FALSE(g.hasEdge(a, b));
}

TEST(HeapGraphTest, OverwriteRetargetsSlot)
{
    HeapGraph g;
    const ObjectId a = g.allocate(kA, 64);
    const ObjectId b = g.allocate(kB, 64);
    const ObjectId c = g.allocate(kC, 64);
    g.write(kA, kB);
    g.write(kA, kC); // same slot now points at c
    EXPECT_FALSE(g.hasEdge(a, b));
    EXPECT_TRUE(g.hasEdge(a, c));
    EXPECT_EQ(g.edgeCount(), 1u);
}

TEST(HeapGraphTest, NullingSlotSeversEdge)
{
    HeapGraph g;
    const ObjectId a = g.allocate(kA, 64);
    const ObjectId b = g.allocate(kB, 64);
    g.write(kA, kB);
    g.write(kA, 0);
    EXPECT_FALSE(g.hasEdge(a, b));
    EXPECT_EQ(g.stats().clearedSlots, 1u);
}

TEST(HeapGraphTest, MultipleSlotsOneDistinctEdge)
{
    HeapGraph g;
    const ObjectId a = g.allocate(kA, 64);
    const ObjectId b = g.allocate(kB, 64);
    g.write(kA, kB);
    g.write(kA + 8, kB);
    EXPECT_EQ(g.edgeCount(), 1u); // distinct neighbour
    EXPECT_EQ(g.objectById(a)->outdegree(), 1u);
    EXPECT_EQ(g.objectById(b)->indegree(), 1u);
    g.write(kA, 0); // one slot cleared, edge survives
    EXPECT_TRUE(g.hasEdge(a, b));
    g.write(kA + 8, 0);
    EXPECT_FALSE(g.hasEdge(a, b));
}

TEST(HeapGraphTest, SelfEdge)
{
    HeapGraph g;
    const ObjectId a = g.allocate(kA, 64);
    g.write(kA, kA + 16);
    EXPECT_TRUE(g.hasEdge(a, a));
    EXPECT_EQ(g.objectById(a)->indegree(), 1u);
    EXPECT_EQ(g.objectById(a)->outdegree(), 1u);
    EXPECT_EQ(g.histogram().inEqOutCount(), 1u);
    g.write(kA, 0);
    EXPECT_FALSE(g.hasEdge(a, a));
    g.checkConsistency();
}

TEST(HeapGraphTest, WriteOutsideHeapIgnored)
{
    HeapGraph g;
    g.allocate(kA, 64);
    g.write(0x999999, kA);
    EXPECT_EQ(g.stats().ignoredWrites, 1u);
    EXPECT_EQ(g.edgeCount(), 0u);
}

TEST(HeapGraphTest, FreeSeversOutEdges)
{
    HeapGraph g;
    g.allocate(kA, 64);
    const ObjectId b = g.allocate(kB, 64);
    g.write(kA, kB);
    EXPECT_TRUE(g.free(kA));
    EXPECT_EQ(g.vertexCount(), 1u);
    EXPECT_EQ(g.objectById(b)->indegree(), 0u);
    EXPECT_EQ(g.edgeCount(), 0u);
    g.checkConsistency();
}

TEST(HeapGraphTest, FreeSeversInEdges)
{
    HeapGraph g;
    const ObjectId a = g.allocate(kA, 64);
    g.allocate(kB, 64);
    g.write(kA, kB);
    EXPECT_TRUE(g.free(kB));
    EXPECT_EQ(g.objectById(a)->outdegree(), 0u);
    EXPECT_TRUE(g.objectById(a)->slots.empty());
    g.checkConsistency();
}

TEST(HeapGraphTest, FreeUnknownAddressCounted)
{
    HeapGraph g;
    EXPECT_FALSE(g.free(kA));
    EXPECT_EQ(g.stats().unknownFrees, 1u);
    g.allocate(kA, 64);
    EXPECT_TRUE(g.free(kA));
    EXPECT_FALSE(g.free(kA)); // double free
    EXPECT_EQ(g.stats().unknownFrees, 2u);
}

TEST(HeapGraphTest, FreeOfInteriorAddressFails)
{
    HeapGraph g;
    g.allocate(kA, 64);
    EXPECT_FALSE(g.free(kA + 8));
}

TEST(HeapGraphTest, DanglingEdgeNotResurrectedByReuse)
{
    HeapGraph g;
    const ObjectId a = g.allocate(kA, 64);
    g.allocate(kB, 64);
    g.write(kA, kB);
    g.free(kB);
    // New object at the same address: the stale slot does not re-bind.
    const ObjectId b2 = g.allocate(kB, 64);
    EXPECT_FALSE(g.hasEdge(a, b2));
    EXPECT_EQ(g.objectById(b2)->indegree(), 0u);
    // A fresh write does bind.
    g.write(kA, kB);
    EXPECT_TRUE(g.hasEdge(a, b2));
}

TEST(HeapGraphDeathTest, OverlappingAllocationPanics)
{
    HeapGraph g;
    g.allocate(kA, 64);
    EXPECT_DEATH(g.allocate(kA + 32, 16), "overlap|lands inside");
    EXPECT_DEATH(g.allocate(kA - 8, 16), "overlap|lands inside");
}

TEST(HeapGraphDeathTest, ZeroSizeAllocationPanics)
{
    HeapGraph g;
    EXPECT_DEATH(g.allocate(kA, 0), "size 0");
}

TEST(HeapGraphDeathTest, NullAllocationPanics)
{
    HeapGraph g;
    EXPECT_DEATH(g.allocate(kNullAddr, 8), "null");
}

TEST(HeapGraphTest, ReallocInPlaceShrinkDropsTailSlots)
{
    HeapGraph g;
    const ObjectId a = g.allocate(kA, 64);
    const ObjectId b = g.allocate(kB, 64);
    g.write(kA + 8, kB);
    g.write(kA + 48, kB);
    const ObjectId id = g.reallocate(kA, kA, 32);
    EXPECT_EQ(id, a);
    EXPECT_EQ(g.objectById(a)->slots.size(), 1u); // +48 dropped
    EXPECT_TRUE(g.hasEdge(a, b));
    EXPECT_EQ(g.stats().liveBytes, 32u + 64u);
    g.checkConsistency();
}

TEST(HeapGraphTest, ReallocMovePreservesOutEdges)
{
    HeapGraph g;
    const ObjectId a = g.allocate(kA, 64);
    const ObjectId b = g.allocate(kB, 64);
    g.write(kA + 8, kB);
    const ObjectId a2 = g.reallocate(kA, kC, 128);
    EXPECT_NE(a2, a);
    EXPECT_TRUE(g.hasEdge(a2, b));
    EXPECT_EQ(g.objectById(a2)->slots.count(kC + 8), 1u);
    EXPECT_EQ(g.objectStartingAt(kA), nullptr);
    g.checkConsistency();
}

TEST(HeapGraphTest, ReallocMoveDropsInEdges)
{
    HeapGraph g;
    const ObjectId a = g.allocate(kA, 64);
    g.allocate(kB, 64);
    g.write(kB, kA); // b -> a
    const ObjectId a2 = g.reallocate(kA, kC, 64);
    // b still holds the old address: the edge dangles.
    EXPECT_EQ(g.objectById(a2)->indegree(), 0u);
    g.checkConsistency();
}

TEST(HeapGraphTest, ReallocMoveSelfPointerDangles)
{
    HeapGraph g;
    const ObjectId a = g.allocate(kA, 64);
    g.write(kA + 8, kA); // self edge
    EXPECT_TRUE(g.hasEdge(a, a));
    const ObjectId a2 = g.reallocate(kA, kB, 64);
    // The copied pointer still holds the old address: dangling.
    EXPECT_FALSE(g.hasEdge(a2, a2));
    EXPECT_EQ(g.objectById(a2)->outdegree(), 0u);
    g.checkConsistency();
}

TEST(HeapGraphTest, ReallocNullActsAsMalloc)
{
    HeapGraph g;
    const ObjectId id = g.reallocate(kNullAddr, kA, 32);
    EXPECT_NE(id, kNoObject);
    EXPECT_EQ(g.vertexCount(), 1u);
}

TEST(HeapGraphTest, ReallocToZeroActsAsFree)
{
    HeapGraph g;
    g.allocate(kA, 32);
    const ObjectId id = g.reallocate(kA, kA, 0);
    EXPECT_EQ(id, kNoObject);
    EXPECT_EQ(g.vertexCount(), 0u);
}

TEST(HeapGraphTest, PeakTracking)
{
    HeapGraph g;
    g.allocate(kA, 100);
    g.allocate(kB, 200);
    g.free(kA);
    EXPECT_EQ(g.stats().peakLiveBytes, 300u);
    EXPECT_EQ(g.stats().peakVertices, 2u);
    EXPECT_EQ(g.stats().liveBytes, 200u);
}

TEST(HeapGraphTest, ObjectLookups)
{
    HeapGraph g;
    const ObjectId a = g.allocate(kA, 64);
    EXPECT_EQ(g.objectAt(kA)->id, a);
    EXPECT_EQ(g.objectAt(kA + 63)->id, a);
    EXPECT_EQ(g.objectAt(kA + 64), nullptr);
    EXPECT_EQ(g.objectAt(kA - 1), nullptr);
    EXPECT_EQ(g.objectStartingAt(kA)->id, a);
    EXPECT_EQ(g.objectStartingAt(kA + 8), nullptr);
    EXPECT_EQ(g.objectById(a)->addr, kA);
    EXPECT_EQ(g.objectById(a + 999), nullptr);
    EXPECT_EQ(g.objectAt(kNullAddr), nullptr);
}

TEST(HeapGraphTest, ClearResetsButKeepsIdsUnique)
{
    HeapGraph g;
    const ObjectId a = g.allocate(kA, 64);
    g.clear();
    EXPECT_EQ(g.vertexCount(), 0u);
    EXPECT_EQ(g.stats().liveBytes, 0u);
    const ObjectId b = g.allocate(kA, 64);
    EXPECT_GT(b, a); // ids never recycled
}

TEST(HeapGraphTest, DegreeCensusOnLinkedList)
{
    // Build a 5-node singly linked list.
    HeapGraph g;
    std::vector<Addr> nodes;
    for (int i = 0; i < 5; ++i) {
        const Addr addr = 0x1000 + 0x100 * i;
        g.allocate(addr, 32);
        nodes.push_back(addr);
    }
    for (int i = 0; i + 1 < 5; ++i)
        g.write(nodes[i] + 8, nodes[i + 1]);

    const DegreeHistogram &h = g.histogram();
    EXPECT_EQ(h.vertexCount(), 5u);
    EXPECT_EQ(h.indegCount(0), 1u);  // head
    EXPECT_EQ(h.indegCount(1), 4u);  // rest
    EXPECT_EQ(h.outdegCount(0), 1u); // tail
    EXPECT_EQ(h.outdegCount(1), 4u);
    EXPECT_EQ(h.inEqOutCount(), 3u); // interior nodes
    g.checkConsistency();
}

TEST(HeapGraphTest, RecomputeMatchesIncremental)
{
    HeapGraph g;
    g.allocate(kA, 64);
    g.allocate(kB, 64);
    g.allocate(kC, 64);
    g.write(kA, kB);
    g.write(kB, kC);
    g.write(kC, kA);
    const DegreeHistogram fresh = g.recomputeHistogram();
    EXPECT_EQ(fresh.vertexCount(), g.histogram().vertexCount());
    EXPECT_EQ(fresh.indegCount(1), g.histogram().indegCount(1));
    EXPECT_EQ(fresh.inEqOutCount(), g.histogram().inEqOutCount());
}

} // namespace

} // namespace heapmd
