/**
 * @file
 * Unit tests of the whole-graph component algorithms.
 */

#include <gtest/gtest.h>

#include "heapgraph/graph_algorithms.hh"
#include "heapgraph/heap_graph.hh"

namespace heapmd
{

namespace
{

Addr
addrOf(int i)
{
    return 0x1000 + 0x100 * static_cast<Addr>(i);
}

/** Allocate n objects and return their addresses. */
std::vector<Addr>
allocN(HeapGraph &g, int n)
{
    std::vector<Addr> out;
    for (int i = 0; i < n; ++i) {
        g.allocate(addrOf(i), 64);
        out.push_back(addrOf(i));
    }
    return out;
}

TEST(ComponentsTest, EmptyGraph)
{
    HeapGraph g;
    const ComponentSummary weak = connectedComponents(g);
    EXPECT_EQ(weak.count, 0u);
    EXPECT_EQ(weak.largest, 0u);
    EXPECT_EQ(weak.meanSize, 0.0);
    EXPECT_EQ(stronglyConnectedComponents(g).count, 0u);
}

TEST(ComponentsTest, IsolatedVertices)
{
    HeapGraph g;
    allocN(g, 4);
    const ComponentSummary weak = connectedComponents(g);
    EXPECT_EQ(weak.count, 4u);
    EXPECT_EQ(weak.largest, 1u);
    EXPECT_EQ(weak.singletons, 4u);
    EXPECT_EQ(stronglyConnectedComponents(g).count, 4u);
}

TEST(ComponentsTest, ChainIsOneWeakComponentManySccs)
{
    HeapGraph g;
    const auto nodes = allocN(g, 5);
    for (int i = 0; i + 1 < 5; ++i)
        g.write(nodes[i] + 8, nodes[i + 1]);
    const ComponentSummary weak = connectedComponents(g);
    EXPECT_EQ(weak.count, 1u);
    EXPECT_EQ(weak.largest, 5u);
    EXPECT_EQ(weak.singletons, 0u);
    const ComponentSummary scc = stronglyConnectedComponents(g);
    EXPECT_EQ(scc.count, 5u); // no cycles
    EXPECT_EQ(scc.largest, 1u);
}

TEST(ComponentsTest, RingIsOneScc)
{
    HeapGraph g;
    const auto nodes = allocN(g, 6);
    for (int i = 0; i < 6; ++i)
        g.write(nodes[i] + 8, nodes[(i + 1) % 6]);
    const ComponentSummary scc = stronglyConnectedComponents(g);
    EXPECT_EQ(scc.count, 1u);
    EXPECT_EQ(scc.largest, 6u);
    EXPECT_EQ(connectedComponents(g).count, 1u);
}

TEST(ComponentsTest, TwoIslands)
{
    HeapGraph g;
    const auto nodes = allocN(g, 6);
    // island 1: 0 -> 1 -> 2; island 2: 3 <-> 4, 5 isolated
    g.write(nodes[0] + 8, nodes[1]);
    g.write(nodes[1] + 8, nodes[2]);
    g.write(nodes[3] + 8, nodes[4]);
    g.write(nodes[4] + 8, nodes[3]);
    const ComponentSummary weak = connectedComponents(g);
    EXPECT_EQ(weak.count, 3u);
    EXPECT_EQ(weak.largest, 3u);
    EXPECT_EQ(weak.singletons, 1u);
    const ComponentSummary scc = stronglyConnectedComponents(g);
    EXPECT_EQ(scc.count, 5u); // {0}{1}{2}{3,4}{5}
    EXPECT_EQ(scc.largest, 2u);
}

TEST(ComponentsTest, ReverseEdgesCountForWeakConnectivity)
{
    HeapGraph g;
    const auto nodes = allocN(g, 3);
    // Both edges point INTO node 0: weakly one component.
    g.write(nodes[1] + 8, nodes[0]);
    g.write(nodes[2] + 8, nodes[0]);
    EXPECT_EQ(connectedComponents(g).count, 1u);
}

TEST(ComponentsTest, SizesSortedDescending)
{
    HeapGraph g;
    const auto nodes = allocN(g, 7);
    g.write(nodes[0] + 8, nodes[1]); // pair
    g.write(nodes[2] + 8, nodes[3]); // triple
    g.write(nodes[3] + 8, nodes[4]);
    const std::vector<std::uint64_t> sizes = componentSizes(g);
    ASSERT_EQ(sizes.size(), 4u);
    EXPECT_EQ(sizes[0], 3u);
    EXPECT_EQ(sizes[1], 2u);
    EXPECT_EQ(sizes[2], 1u);
    EXPECT_EQ(sizes[3], 1u);
}

TEST(ComponentsTest, DeepChainDoesNotOverflowStack)
{
    // 50k-deep chain: iterative algorithms must survive.
    HeapGraph g;
    Addr prev = 0;
    for (int i = 0; i < 50000; ++i) {
        const Addr addr = 0x100000 + 0x40 * static_cast<Addr>(i);
        g.allocate(addr, 32);
        if (prev != 0)
            g.write(prev + 8, addr);
        prev = addr;
    }
    EXPECT_EQ(connectedComponents(g).count, 1u);
    EXPECT_EQ(stronglyConnectedComponents(g).count, 50000u);
}

TEST(ComponentsTest, MeanSize)
{
    HeapGraph g;
    const auto nodes = allocN(g, 4);
    g.write(nodes[0] + 8, nodes[1]);
    const ComponentSummary weak = connectedComponents(g);
    EXPECT_EQ(weak.count, 3u);
    EXPECT_NEAR(weak.meanSize, 4.0 / 3.0, 1e-12);
}

} // namespace

} // namespace heapmd
