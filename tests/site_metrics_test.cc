/**
 * @file
 * Tests of per-allocation-site metrics (the Section 4.4 type-proxy
 * extension).
 */

#include <gtest/gtest.h>

#include "core/heapmd.hh"
#include "metrics/site_metrics.hh"

namespace heapmd
{

namespace
{

TEST(SiteMetricsTest, EmptyGraph)
{
    HeapGraph graph;
    EXPECT_TRUE(computeSiteMetrics(graph, 0, 0).empty());
}

TEST(SiteMetricsTest, GroupsBySiteWithDistinctShapes)
{
    // Site 1: a 10-node chain (mostly indeg 1 / outdeg 1).
    // Site 2: 10 isolated buffers (roots and leaves).
    HeapGraph graph;
    const FnId chain_site = 1, buffer_site = 2;
    Addr prev = 0;
    for (int i = 0; i < 10; ++i) {
        const Addr addr = 0x10000 + 0x100 * i;
        graph.allocate(addr, 32, chain_site);
        if (prev != 0)
            graph.write(prev + 8, addr);
        prev = addr;
    }
    for (int i = 0; i < 10; ++i)
        graph.allocate(0x90000 + 0x100 * i, 64, buffer_site);

    const auto sites = computeSiteMetrics(graph, 0, 1);
    ASSERT_EQ(sites.size(), 2u);
    // Both sites have 10 objects; order by count is tied, so find
    // them by id.
    const SiteMetrics *chain = nullptr, *buffers = nullptr;
    for (const SiteMetrics &m : sites) {
        if (m.site == chain_site)
            chain = &m;
        if (m.site == buffer_site)
            buffers = &m;
    }
    ASSERT_NE(chain, nullptr);
    ASSERT_NE(buffers, nullptr);

    EXPECT_EQ(chain->objectCount, 10u);
    EXPECT_EQ(chain->liveBytes, 320u);
    EXPECT_DOUBLE_EQ(chain->value(MetricId::Indeg1), 90.0);
    EXPECT_DOUBLE_EQ(chain->value(MetricId::Roots), 10.0);

    EXPECT_DOUBLE_EQ(buffers->value(MetricId::Roots), 100.0);
    EXPECT_DOUBLE_EQ(buffers->value(MetricId::Leaves), 100.0);
    EXPECT_DOUBLE_EQ(buffers->value(MetricId::InEqOut), 100.0);
    EXPECT_EQ(buffers->liveBytes, 640u);
}

TEST(SiteMetricsTest, MinObjectsFiltersNoise)
{
    HeapGraph graph;
    for (int i = 0; i < 10; ++i)
        graph.allocate(0x10000 + 0x100 * i, 32, /*site=*/1);
    graph.allocate(0x90000, 32, /*site=*/2); // lone object
    EXPECT_EQ(computeSiteMetrics(graph, 0, 8).size(), 1u);
    EXPECT_EQ(computeSiteMetrics(graph, 0, 1).size(), 2u);
}

TEST(SiteMetricsTest, TopKKeepsLargestSites)
{
    HeapGraph graph;
    Addr next = 0x10000;
    for (FnId site = 1; site <= 5; ++site) {
        for (FnId i = 0; i < site * 4; ++i) {
            graph.allocate(next, 16, site);
            next += 0x40;
        }
    }
    const auto sites = computeSiteMetrics(graph, 2, 1);
    ASSERT_EQ(sites.size(), 2u);
    EXPECT_EQ(sites[0].site, 5u);
    EXPECT_EQ(sites[1].site, 4u);
    EXPECT_GE(sites[0].objectCount, sites[1].objectCount);
}

TEST(SiteMetricsTest, MostDeviantSite)
{
    SiteMetrics a;
    a.site = 1;
    a.values[metricIndex(MetricId::Indeg1)] = 52.0;
    SiteMetrics b;
    b.site = 2;
    b.values[metricIndex(MetricId::Indeg1)] = 95.0;
    const std::vector<SiteMetrics> sites = {a, b};
    EXPECT_EQ(mostDeviantSite(sites, MetricId::Indeg1, 50.0), 1u);
    EXPECT_EQ(mostDeviantSite(sites, MetricId::Indeg1, 99.0), 0u);
    EXPECT_EQ(mostDeviantSite({}, MetricId::Indeg1, 0.0),
              static_cast<std::size_t>(-1));
}

TEST(SiteMetricsTest, AttributesInjectedBugToItsStructure)
{
    // Run PC Game (action) with the Figure 10 bug and snapshot the
    // heap mid-run: the tree-construction sites should be the most
    // deviant Indeg=1 population.
    struct Snapshotter : public SampleObserver
    {
        void
        onSample(const MetricSample &sample,
                 const Process &process) override
        {
            if (sample.pointIndex == 5) {
                before = computeSiteMetrics(process.graph(), 0, 16);
            } else if (sample.pointIndex == 25) {
                after = computeSiteMetrics(process.graph(), 0, 16);
                heapIndeg1 = sample.value(MetricId::Indeg1);
                for (const SiteMetrics &m : after)
                    names.push_back(
                        process.registry().name(m.site));
            }
        }

        std::vector<SiteMetrics> before, after;
        std::vector<std::string> names;
        double heapIndeg1 = 0.0;
    };

    ProcessConfig pcfg;
    pcfg.metricFrequency = 300;
    Process process(pcfg);
    Snapshotter snap;
    process.addSampleObserver(&snap);

    auto app = makeApp("PC Game (action)");
    AppConfig cfg;
    cfg.inputSeed = 200;
    cfg.scale = 0.6;
    cfg.faults.enable(FaultKind::TreeMissingParent, 1.0);
    app->run(process, cfg);

    ASSERT_FALSE(snap.before.empty());
    ASSERT_FALSE(snap.after.empty());
    // The bug pushes the whole-heap Indeg=1 ABOVE its range; the
    // culprit is the site whose indegree-1 population *grew* between
    // the early and late snapshots (static indegree-1 populations
    // like the oct-tree cancel out).
    const std::size_t culprit = largestPropertyGrowth(
        snap.before, snap.after, MetricId::Indeg1, true);
    ASSERT_LT(culprit, snap.after.size());
    // The corrupted population was built by the tree code.
    EXPECT_NE(snap.names[culprit].find("BinaryTree"),
              std::string::npos)
        << "attributed to " << snap.names[culprit];
}

} // namespace

} // namespace heapmd
