/**
 * @file
 * Tests of the static artifact auditors (src/analysis/).
 *
 * The trace linter runs over the seeded-defect corpus in tests/data/
 * (regenerate with gen_corpus.py); the model and graph linters run
 * over documents built in-test.  Every rule id in the DESIGN.md
 * catalog is covered by at least one test, and artifacts produced by
 * a clean pipeline run must audit with zero findings.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "analysis/graph_lint.hh"
#include "analysis/model_lint.hh"
#include "analysis/trace_lint.hh"
#include "heapgraph/graph_snapshot.hh"
#include "model/model.hh"
#include "runtime/process.hh"
#include "trace/trace_writer.hh"

namespace heapmd
{

namespace
{

using analysis::Report;
using analysis::Severity;

std::string
corpusPath(const std::string &name)
{
    return std::string(HEAPMD_TEST_DATA_DIR) + "/" + name;
}

Report
lintCorpus(const std::string &name)
{
    Report report;
    analysis::lintTraceFile(corpusPath(name), report);
    return report;
}

// --- Report ---------------------------------------------------------

TEST(ReportTest, CountsAndDescribe)
{
    Report report;
    EXPECT_TRUE(report.clean());
    report.errorAtByte("trace.bad-magic", 0, "boom");
    report.warningAtLine("model.syntax", 7, "odd");
    report.note("trace.io", "fyi");
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.errorCount(), 1u);
    EXPECT_EQ(report.warningCount(), 1u);
    EXPECT_EQ(report.noteCount(), 1u);
    EXPECT_TRUE(report.has("trace.bad-magic"));
    EXPECT_FALSE(report.has("trace.varint-overlong"));

    const std::string text = report.describe();
    EXPECT_NE(text.find("error trace.bad-magic @byte 0: boom"),
              std::string::npos);
    EXPECT_NE(text.find("warning model.syntax @line 7: odd"),
              std::string::npos);
    EXPECT_NE(text.find("1 error(s), 1 warning(s), 1 note(s)"),
              std::string::npos);
}

TEST(ReportTest, CapsFindingsButKeepsCounting)
{
    Report report(3);
    for (int i = 0; i < 10; ++i)
        report.error("trace.free-before-alloc", "finding");
    EXPECT_EQ(report.findings().size(), 3u);
    EXPECT_EQ(report.errorCount(), 10u);
    EXPECT_TRUE(report.truncated());
}

// --- Trace linter over the seeded corpus ----------------------------

struct CorpusCase
{
    const char *file;
    const char *rule;
};

class TraceCorpusTest : public ::testing::TestWithParam<CorpusCase>
{
};

TEST_P(TraceCorpusTest, SeededDefectIsDetected)
{
    const Report report = lintCorpus(GetParam().file);
    EXPECT_FALSE(report.clean()) << GetParam().file;
    EXPECT_TRUE(report.has(GetParam().rule))
        << GetParam().file << " expected " << GetParam().rule
        << " in:\n"
        << report.describe();
}

INSTANTIATE_TEST_SUITE_P(
    Seeded, TraceCorpusTest,
    ::testing::Values(
        CorpusCase{"bad_magic.trace", "trace.bad-magic"},
        CorpusCase{"bad_version.trace", "trace.bad-version"},
        CorpusCase{"truncated_varint.trace",
                   "trace.varint-truncated"},
        CorpusCase{"overlong_varint.trace", "trace.varint-overlong"},
        CorpusCase{"missing_footer.trace", "trace.no-footer"},
        CorpusCase{"footer_truncated.trace",
                   "trace.footer-truncated"},
        CorpusCase{"footer_name_overflow.trace",
                   "trace.footer-truncated"},
        CorpusCase{"unknown_tag.trace", "trace.unknown-tag"},
        CorpusCase{"fn_id_gap.trace", "trace.fn-id-range"},
        CorpusCase{"free_before_alloc.trace",
                   "trace.free-before-alloc"},
        CorpusCase{"write_after_free.trace",
                   "trace.write-after-free"},
        CorpusCase{"alloc_overlap.trace", "trace.alloc-overlap"},
        CorpusCase{"zero_alloc.trace", "trace.zero-alloc"}),
    [](const auto &info) {
        std::string name = info.param.file;
        return name.substr(0, name.find('.'));
    });

TEST(TraceLintTest, CleanCorpusTraceHasZeroFindings)
{
    const Report report = lintCorpus("clean.trace");
    EXPECT_TRUE(report.clean()) << report.describe();
    EXPECT_TRUE(report.findings().empty()) << report.describe();
}

TEST(TraceLintTest, TrailingBytesIsAWarningOnly)
{
    const Report report = lintCorpus("trailing_bytes.trace");
    EXPECT_TRUE(report.clean()) << report.describe();
    EXPECT_TRUE(report.has("trace.trailing-bytes"));
}

TEST(TraceLintTest, MissingFileIsAnIoFinding)
{
    Report report;
    analysis::lintTraceFile(corpusPath("does_not_exist.trace"),
                            report);
    EXPECT_TRUE(report.has("trace.io"));
}

TEST(TraceLintTest, FindingsCarryByteOffsets)
{
    const Report report = lintCorpus("free_before_alloc.trace");
    ASSERT_EQ(report.findings().size(), 1u);
    const analysis::Finding &f = report.findings()[0];
    EXPECT_EQ(f.locationKind, analysis::LocationKind::Byte);
    EXPECT_EQ(f.location, 8u); // first event, right after the header
}

TEST(TraceLintTest, WriterOutputAuditsClean)
{
    FunctionRegistry registry;
    const FnId fn = registry.intern("worker");
    std::stringstream ss;
    TraceWriter writer(ss, registry);
    Tick tick = 0;
    writer.onEvent(Event::fnEnter(fn), ++tick);
    writer.onEvent(Event::alloc(0x1000, 64), ++tick);
    writer.onEvent(Event::write(0x1000, 0x1000), ++tick);
    writer.onEvent(Event::free(0x1000), ++tick);
    writer.onEvent(Event::fnExit(fn), ++tick);
    writer.finish();

    Report report;
    const analysis::TraceLintStats stats =
        analysis::lintTrace(ss.str(), report);
    EXPECT_TRUE(report.findings().empty()) << report.describe();
    EXPECT_EQ(stats.events, 5u);
    EXPECT_EQ(stats.functions, 1u);
}

TEST(TraceLintTest, AddressReuseAfterFreeIsNotAUseAfterFree)
{
    std::stringstream ss;
    FunctionRegistry registry;
    TraceWriter writer(ss, registry);
    writer.onEvent(Event::alloc(0x1000, 64), 1);
    writer.onEvent(Event::free(0x1000), 2);
    writer.onEvent(Event::alloc(0x1000, 32), 3); // reuse is legal
    writer.onEvent(Event::write(0x1008, 0x1000), 4);
    writer.finish();

    Report report;
    analysis::lintTrace(ss.str(), report);
    EXPECT_TRUE(report.findings().empty()) << report.describe();
}

// --- Model linter ---------------------------------------------------

std::string
modelDocument(const std::string &metric_lines,
              const std::string &runs = "runs 10")
{
    return "heapmd-model v1\nprogram demo\n" + runs + "\n" +
           metric_lines + "end\n";
}

Report
lintModelText(const std::string &text)
{
    Report report;
    std::istringstream is(text);
    analysis::lintModel(is, report);
    return report;
}

TEST(ModelLintTest, SavedModelAuditsClean)
{
    HeapModel model;
    model.programName = "demo";
    model.trainingRuns = 10;
    HeapModel::Entry entry;
    entry.id = MetricId::Roots;
    entry.minValue = 10.0;
    entry.maxValue = 30.0;
    entry.avgChange = 0.2;
    entry.stdDev = 1.5;
    entry.stableRuns = 9;
    model.addEntry(entry);
    entry.id = MetricId::Leaves;
    entry.locallyStable = true;
    entry.stdDev = 12.0;
    model.addEntry(entry);
    model.unstableMetrics.push_back(MetricId::InEqOut);

    std::stringstream ss;
    model.save(ss);
    Report report;
    analysis::lintModel(ss, report);
    EXPECT_TRUE(report.findings().empty()) << report.describe();
}

TEST(ModelLintTest, BadHeader)
{
    EXPECT_TRUE(
        lintModelText("not a model\n").has("model.bad-header"));
}

TEST(ModelLintTest, RangeInverted)
{
    const Report report = lintModelText(modelDocument(
        "metric Root kind global min 30 max 10 avg 0.1 std 1 "
        "stable_runs 5\n"));
    EXPECT_TRUE(report.has("model.range-inverted"))
        << report.describe();
}

TEST(ModelLintTest, NonFiniteValues)
{
    const Report report = lintModelText(modelDocument(
        "metric Root kind global min nan max inf avg 0.1 std 1 "
        "stable_runs 5\n"));
    EXPECT_EQ(report.count("model.non-finite"), 2u)
        << report.describe();
    // Range/threshold checks must not fire on non-finite input.
    EXPECT_FALSE(report.has("model.range-inverted"));
}

TEST(ModelLintTest, ThresholdBounds)
{
    // avg change beyond the +/-1% stability definition.
    EXPECT_TRUE(lintModelText(
                    modelDocument("metric Root kind global min 10 "
                                  "max 30 avg 4.0 std 1 "
                                  "stable_runs 5\n"))
                    .has("model.threshold-bounds"));
    // stddev beyond the globally-stable bound of 5.
    EXPECT_TRUE(lintModelText(
                    modelDocument("metric Root kind global min 10 "
                                  "max 30 avg 0.1 std 9 "
                                  "stable_runs 5\n"))
                    .has("model.threshold-bounds"));
    // ... but 9 is fine for a locally-stable entry (bound 25).
    EXPECT_TRUE(lintModelText(
                    modelDocument("metric Root kind local min 10 "
                                  "max 30 avg 0.1 std 9 "
                                  "stable_runs 5\n"))
                    .clean());
    // Percentage metrics cannot leave [0, 100].
    EXPECT_TRUE(lintModelText(
                    modelDocument("metric Root kind global min -5 "
                                  "max 30 avg 0.1 std 1 "
                                  "stable_runs 5\n"))
                    .has("model.threshold-bounds"));
}

TEST(ModelLintTest, StableRunsBounds)
{
    EXPECT_TRUE(lintModelText(
                    modelDocument("metric Root kind global min 10 "
                                  "max 30 avg 0.1 std 1 "
                                  "stable_runs 0\n"))
                    .has("model.stable-runs"));
    EXPECT_TRUE(lintModelText(
                    modelDocument("metric Root kind global min 10 "
                                  "max 30 avg 0.1 std 1 "
                                  "stable_runs 25\n"))
                    .has("model.stable-runs")); // > 10 training runs
}

TEST(ModelLintTest, DuplicateAndContradictoryMetrics)
{
    const std::string entry =
        "metric Root kind global min 10 max 30 avg 0.1 std 1 "
        "stable_runs 5\n";
    EXPECT_TRUE(lintModelText(modelDocument(entry + entry))
                    .has("model.duplicate-metric"));
    EXPECT_TRUE(
        lintModelText(modelDocument(entry + "unstable Root\n"))
            .has("model.duplicate-metric"));
}

TEST(ModelLintTest, UnknownMetricAndSyntax)
{
    EXPECT_TRUE(lintModelText(
                    modelDocument("metric Bogus kind global min 1 "
                                  "max 2 avg 0.1 std 1 "
                                  "stable_runs 5\n"))
                    .has("model.unknown-metric"));
    EXPECT_TRUE(lintModelText(modelDocument("metric Root min\n"))
                    .has("model.syntax"));
    EXPECT_TRUE(lintModelText(modelDocument("frobnicate 3\n"))
                    .has("model.syntax"));
}

TEST(ModelLintTest, EmptyStableSetAndMissingEnd)
{
    EXPECT_TRUE(
        lintModelText(modelDocument("")).has("model.empty-stable-set"));
    EXPECT_TRUE(
        lintModelText("heapmd-model v1\nprogram demo\nruns 10\n")
            .has("model.no-end"));
}

// --- Graph linter ---------------------------------------------------

/** A 3-vertex / 2-edge document with every layer consistent. */
std::string
goodGraph()
{
    return "heapmd-graph v1\n"
           "vertices 3\n"
           "edges 2\n"
           "vertex 1 addr 4096 size 64 indeg 0 outdeg 2\n"
           "vertex 2 addr 8192 size 32 indeg 1 outdeg 0\n"
           "vertex 3 addr 12288 size 16 indeg 1 outdeg 0\n"
           "edge 1 2\n"
           "edge 1 3\n"
           "hist vertices 3 indeg 1 2 0 outdeg 2 0 1 ineqout 0\n"
           "metric Root 33.333333333333336\n"
           "metric Indeg=1 66.666666666666671\n"
           "metric Indeg=2 0\n"
           "metric Leaves 66.666666666666671\n"
           "metric Outdeg=1 0\n"
           "metric Outdeg=2 33.333333333333336\n"
           "metric In=Out 0\n"
           "end\n";
}

Report
lintGraphText(const std::string &text)
{
    Report report;
    std::istringstream is(text);
    analysis::lintGraph(is, report);
    return report;
}

/** Replace the first occurrence of @p from in the good document. */
std::string
withLine(const std::string &from, const std::string &to)
{
    std::string doc = goodGraph();
    const std::size_t at = doc.find(from);
    EXPECT_NE(at, std::string::npos) << from;
    doc.replace(at, from.size(), to);
    return doc;
}

TEST(GraphLintTest, ConsistentDocumentAuditsClean)
{
    const Report report = lintGraphText(goodGraph());
    EXPECT_TRUE(report.findings().empty()) << report.describe();
}

TEST(GraphLintTest, SavedSnapshotAuditsClean)
{
    // Drive a real process, snapshot its graph, audit the document.
    Process process;
    process.onAlloc(0x1000, 64);
    process.onAlloc(0x2000, 32);
    process.onAlloc(0x3000, 16);
    process.onWrite(0x1000, 0x2000);
    process.onWrite(0x1008, 0x3000);
    process.onWrite(0x2000, 0x2000); // self-edge
    process.onFree(0x3000);

    std::stringstream ss;
    saveGraphSnapshot(process.graph(), ss);
    Report report;
    const analysis::GraphLintStats stats =
        analysis::lintGraph(ss, report);
    EXPECT_TRUE(report.findings().empty()) << report.describe();
    EXPECT_EQ(stats.vertices, 2u);
}

TEST(GraphLintTest, EmptyGraphSnapshotAuditsClean)
{
    Process process;
    std::stringstream ss;
    saveGraphSnapshot(process.graph(), ss);
    Report report;
    analysis::lintGraph(ss, report);
    EXPECT_TRUE(report.findings().empty()) << report.describe();
}

TEST(GraphLintTest, BadHeader)
{
    EXPECT_TRUE(lintGraphText("nope\n").has("graph.bad-header"));
}

TEST(GraphLintTest, CountMismatch)
{
    EXPECT_TRUE(lintGraphText(withLine("vertices 3", "vertices 4"))
                    .has("graph.count-mismatch"));
    EXPECT_TRUE(lintGraphText(withLine("edges 2", "edges 7"))
                    .has("graph.count-mismatch"));
}

TEST(GraphLintTest, DanglingEdgeTarget)
{
    const Report report =
        lintGraphText(withLine("edge 1 3", "edge 1 9"));
    EXPECT_TRUE(report.has("graph.dangling-edge"))
        << report.describe();
}

TEST(GraphLintTest, DegreeMismatchAndConservation)
{
    // Vertex 2 claims indegree 5; the edge list disagrees, and so
    // does the sum(indeg) == edges conservation law.
    const Report report = lintGraphText(
        withLine("vertex 2 addr 8192 size 32 indeg 1 outdeg 0",
                 "vertex 2 addr 8192 size 32 indeg 5 outdeg 0"));
    EXPECT_GE(report.count("graph.degree-mismatch"), 2u)
        << report.describe();
}

TEST(GraphLintTest, HistogramDisagreement)
{
    const Report report = lintGraphText(
        withLine("hist vertices 3 indeg 1 2 0 outdeg 2 0 1 ineqout 0",
                 "hist vertices 3 indeg 0 3 0 outdeg 2 0 1 "
                 "ineqout 2"));
    EXPECT_GE(report.count("graph.histogram"), 2u)
        << report.describe();
}

TEST(GraphLintTest, MetricNotRecomputable)
{
    const Report report = lintGraphText(withLine(
        "metric Root 33.333333333333336", "metric Root 95.0"));
    EXPECT_TRUE(report.has("graph.metric-recompute"))
        << report.describe();
}

TEST(GraphLintTest, MissingMetricLine)
{
    EXPECT_TRUE(lintGraphText(withLine("metric In=Out 0\n", ""))
                    .has("graph.metric-recompute"));
}

TEST(GraphLintTest, DuplicateVertexAndEdge)
{
    EXPECT_TRUE(
        lintGraphText(
            withLine("edge 1 3\n", "edge 1 3\nedge 1 3\n"))
            .has("graph.duplicate"));
    EXPECT_TRUE(lintGraphText(withLine(
                    "vertex 3 addr 12288 size 16 indeg 1 outdeg 0\n",
                    "vertex 3 addr 12288 size 16 indeg 1 outdeg 0\n"
                    "vertex 3 addr 16384 size 8 indeg 1 outdeg 0\n"))
                    .has("graph.duplicate"));
}

TEST(GraphLintTest, ExtentProblems)
{
    EXPECT_TRUE(
        lintGraphText(
            withLine("vertex 2 addr 8192 size 32",
                     "vertex 2 addr 4100 size 32"))
            .has("graph.extent-overlap"));
    EXPECT_TRUE(lintGraphText(withLine("vertex 3 addr 12288 size 16",
                                       "vertex 3 addr 12288 size 0"))
                    .has("graph.zero-extent"));
}

TEST(GraphLintTest, MissingEnd)
{
    EXPECT_TRUE(lintGraphText(withLine("end\n", ""))
                    .has("graph.no-end"));
}

} // namespace

} // namespace heapmd
