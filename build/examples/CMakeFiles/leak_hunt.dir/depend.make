# Empty dependencies file for leak_hunt.
# This may be replaced when dependencies are built.
