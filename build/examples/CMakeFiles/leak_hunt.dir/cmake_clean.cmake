file(REMOVE_RECURSE
  "CMakeFiles/leak_hunt.dir/leak_hunt.cpp.o"
  "CMakeFiles/leak_hunt.dir/leak_hunt.cpp.o.d"
  "leak_hunt"
  "leak_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leak_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
