# Empty compiler generated dependencies file for version_regression.
# This may be replaced when dependencies are built.
