file(REMOVE_RECURSE
  "CMakeFiles/version_regression.dir/version_regression.cpp.o"
  "CMakeFiles/version_regression.dir/version_regression.cpp.o.d"
  "version_regression"
  "version_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/version_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
