file(REMOVE_RECURSE
  "CMakeFiles/heapmd_cli.dir/heapmd_cli.cc.o"
  "CMakeFiles/heapmd_cli.dir/heapmd_cli.cc.o.d"
  "heapmd"
  "heapmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heapmd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
