# Empty compiler generated dependencies file for heapmd_cli.
# This may be replaced when dependencies are built.
