# Empty dependencies file for fig07a_stable_metrics.
# This may be replaced when dependencies are built.
