file(REMOVE_RECURSE
  "CMakeFiles/fig07a_stable_metrics.dir/fig07a_stable_metrics.cc.o"
  "CMakeFiles/fig07a_stable_metrics.dir/fig07a_stable_metrics.cc.o.d"
  "fig07a_stable_metrics"
  "fig07a_stable_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07a_stable_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
