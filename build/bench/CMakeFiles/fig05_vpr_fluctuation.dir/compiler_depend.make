# Empty compiler generated dependencies file for fig05_vpr_fluctuation.
# This may be replaced when dependencies are built.
