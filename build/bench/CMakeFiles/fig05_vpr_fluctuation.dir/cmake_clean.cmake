file(REMOVE_RECURSE
  "CMakeFiles/fig05_vpr_fluctuation.dir/fig05_vpr_fluctuation.cc.o"
  "CMakeFiles/fig05_vpr_fluctuation.dir/fig05_vpr_fluctuation.cc.o.d"
  "fig05_vpr_fluctuation"
  "fig05_vpr_fluctuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_vpr_fluctuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
