file(REMOVE_RECURSE
  "CMakeFiles/spec_injection.dir/spec_injection.cc.o"
  "CMakeFiles/spec_injection.dir/spec_injection.cc.o.d"
  "spec_injection"
  "spec_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
