# Empty dependencies file for spec_injection.
# This may be replaced when dependencies are built.
