file(REMOVE_RECURSE
  "CMakeFiles/fig10_anomaly_trace.dir/fig10_anomaly_trace.cc.o"
  "CMakeFiles/fig10_anomaly_trace.dir/fig10_anomaly_trace.cc.o.d"
  "fig10_anomaly_trace"
  "fig10_anomaly_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_anomaly_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
