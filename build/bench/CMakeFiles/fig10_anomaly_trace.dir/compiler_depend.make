# Empty compiler generated dependencies file for fig10_anomaly_trace.
# This may be replaced when dependencies are built.
