# Empty dependencies file for fig07b_versions.
# This may be replaced when dependencies are built.
