file(REMOVE_RECURSE
  "CMakeFiles/fig07b_versions.dir/fig07b_versions.cc.o"
  "CMakeFiles/fig07b_versions.dir/fig07b_versions.cc.o.d"
  "fig07b_versions"
  "fig07b_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07b_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
