file(REMOVE_RECURSE
  "CMakeFiles/fig04_vpr_series.dir/fig04_vpr_series.cc.o"
  "CMakeFiles/fig04_vpr_series.dir/fig04_vpr_series.cc.o.d"
  "fig04_vpr_series"
  "fig04_vpr_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_vpr_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
