# Empty dependencies file for fig04_vpr_series.
# This may be replaced when dependencies are built.
