file(REMOVE_RECURSE
  "CMakeFiles/perf_overhead.dir/perf_overhead.cc.o"
  "CMakeFiles/perf_overhead.dir/perf_overhead.cc.o.d"
  "perf_overhead"
  "perf_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
