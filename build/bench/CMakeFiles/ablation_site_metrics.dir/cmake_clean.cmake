file(REMOVE_RECURSE
  "CMakeFiles/ablation_site_metrics.dir/ablation_site_metrics.cc.o"
  "CMakeFiles/ablation_site_metrics.dir/ablation_site_metrics.cc.o.d"
  "ablation_site_metrics"
  "ablation_site_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_site_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
