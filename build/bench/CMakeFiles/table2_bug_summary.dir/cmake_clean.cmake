file(REMOVE_RECURSE
  "CMakeFiles/table2_bug_summary.dir/table2_bug_summary.cc.o"
  "CMakeFiles/table2_bug_summary.dir/table2_bug_summary.cc.o.d"
  "table2_bug_summary"
  "table2_bug_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_bug_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
