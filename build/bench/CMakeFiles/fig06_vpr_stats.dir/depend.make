# Empty dependencies file for fig06_vpr_stats.
# This may be replaced when dependencies are built.
