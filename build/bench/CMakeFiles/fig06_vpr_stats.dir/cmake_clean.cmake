file(REMOVE_RECURSE
  "CMakeFiles/fig06_vpr_stats.dir/fig06_vpr_stats.cc.o"
  "CMakeFiles/fig06_vpr_stats.dir/fig06_vpr_stats.cc.o.d"
  "fig06_vpr_stats"
  "fig06_vpr_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_vpr_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
