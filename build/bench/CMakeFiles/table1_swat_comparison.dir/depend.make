# Empty dependencies file for table1_swat_comparison.
# This may be replaced when dependencies are built.
