file(REMOVE_RECURSE
  "CMakeFiles/table1_swat_comparison.dir/table1_swat_comparison.cc.o"
  "CMakeFiles/table1_swat_comparison.dir/table1_swat_comparison.cc.o.d"
  "table1_swat_comparison"
  "table1_swat_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_swat_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
