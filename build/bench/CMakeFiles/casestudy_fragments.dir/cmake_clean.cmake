file(REMOVE_RECURSE
  "CMakeFiles/casestudy_fragments.dir/casestudy_fragments.cc.o"
  "CMakeFiles/casestudy_fragments.dir/casestudy_fragments.cc.o.d"
  "casestudy_fragments"
  "casestudy_fragments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casestudy_fragments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
