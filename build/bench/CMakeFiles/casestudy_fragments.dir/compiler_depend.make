# Empty compiler generated dependencies file for casestudy_fragments.
# This may be replaced when dependencies are built.
