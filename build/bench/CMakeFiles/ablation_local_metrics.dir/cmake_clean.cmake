file(REMOVE_RECURSE
  "CMakeFiles/ablation_local_metrics.dir/ablation_local_metrics.cc.o"
  "CMakeFiles/ablation_local_metrics.dir/ablation_local_metrics.cc.o.d"
  "ablation_local_metrics"
  "ablation_local_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_local_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
