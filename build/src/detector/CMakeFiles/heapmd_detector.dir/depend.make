# Empty dependencies file for heapmd_detector.
# This may be replaced when dependencies are built.
