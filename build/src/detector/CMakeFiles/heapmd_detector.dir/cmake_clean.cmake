file(REMOVE_RECURSE
  "CMakeFiles/heapmd_detector.dir/anomaly_detector.cc.o"
  "CMakeFiles/heapmd_detector.dir/anomaly_detector.cc.o.d"
  "CMakeFiles/heapmd_detector.dir/bug_report.cc.o"
  "CMakeFiles/heapmd_detector.dir/bug_report.cc.o.d"
  "CMakeFiles/heapmd_detector.dir/classification.cc.o"
  "CMakeFiles/heapmd_detector.dir/classification.cc.o.d"
  "CMakeFiles/heapmd_detector.dir/execution_checker.cc.o"
  "CMakeFiles/heapmd_detector.dir/execution_checker.cc.o.d"
  "libheapmd_detector.a"
  "libheapmd_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heapmd_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
