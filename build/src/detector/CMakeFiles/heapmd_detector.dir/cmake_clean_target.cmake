file(REMOVE_RECURSE
  "libheapmd_detector.a"
)
