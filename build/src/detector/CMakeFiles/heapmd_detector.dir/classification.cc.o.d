src/detector/CMakeFiles/heapmd_detector.dir/classification.cc.o: \
 /root/repo/src/detector/classification.cc /usr/include/stdc-predef.h \
 /root/repo/src/detector/classification.hh
