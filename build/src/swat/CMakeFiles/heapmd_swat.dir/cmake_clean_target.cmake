file(REMOVE_RECURSE
  "libheapmd_swat.a"
)
