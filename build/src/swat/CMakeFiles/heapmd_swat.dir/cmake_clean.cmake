file(REMOVE_RECURSE
  "CMakeFiles/heapmd_swat.dir/swat_detector.cc.o"
  "CMakeFiles/heapmd_swat.dir/swat_detector.cc.o.d"
  "libheapmd_swat.a"
  "libheapmd_swat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heapmd_swat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
