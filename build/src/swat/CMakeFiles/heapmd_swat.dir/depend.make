# Empty dependencies file for heapmd_swat.
# This may be replaced when dependencies are built.
