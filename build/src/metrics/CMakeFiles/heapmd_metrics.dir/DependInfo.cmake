
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/metric.cc" "src/metrics/CMakeFiles/heapmd_metrics.dir/metric.cc.o" "gcc" "src/metrics/CMakeFiles/heapmd_metrics.dir/metric.cc.o.d"
  "/root/repo/src/metrics/metric_engine.cc" "src/metrics/CMakeFiles/heapmd_metrics.dir/metric_engine.cc.o" "gcc" "src/metrics/CMakeFiles/heapmd_metrics.dir/metric_engine.cc.o.d"
  "/root/repo/src/metrics/series.cc" "src/metrics/CMakeFiles/heapmd_metrics.dir/series.cc.o" "gcc" "src/metrics/CMakeFiles/heapmd_metrics.dir/series.cc.o.d"
  "/root/repo/src/metrics/site_metrics.cc" "src/metrics/CMakeFiles/heapmd_metrics.dir/site_metrics.cc.o" "gcc" "src/metrics/CMakeFiles/heapmd_metrics.dir/site_metrics.cc.o.d"
  "/root/repo/src/metrics/stability.cc" "src/metrics/CMakeFiles/heapmd_metrics.dir/stability.cc.o" "gcc" "src/metrics/CMakeFiles/heapmd_metrics.dir/stability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/heapgraph/CMakeFiles/heapmd_heapgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/heapmd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
