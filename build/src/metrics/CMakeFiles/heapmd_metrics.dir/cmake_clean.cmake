file(REMOVE_RECURSE
  "CMakeFiles/heapmd_metrics.dir/metric.cc.o"
  "CMakeFiles/heapmd_metrics.dir/metric.cc.o.d"
  "CMakeFiles/heapmd_metrics.dir/metric_engine.cc.o"
  "CMakeFiles/heapmd_metrics.dir/metric_engine.cc.o.d"
  "CMakeFiles/heapmd_metrics.dir/series.cc.o"
  "CMakeFiles/heapmd_metrics.dir/series.cc.o.d"
  "CMakeFiles/heapmd_metrics.dir/site_metrics.cc.o"
  "CMakeFiles/heapmd_metrics.dir/site_metrics.cc.o.d"
  "CMakeFiles/heapmd_metrics.dir/stability.cc.o"
  "CMakeFiles/heapmd_metrics.dir/stability.cc.o.d"
  "libheapmd_metrics.a"
  "libheapmd_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heapmd_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
