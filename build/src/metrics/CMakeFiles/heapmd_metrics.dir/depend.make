# Empty dependencies file for heapmd_metrics.
# This may be replaced when dependencies are built.
