file(REMOVE_RECURSE
  "libheapmd_metrics.a"
)
