# Empty compiler generated dependencies file for heapmd_runtime.
# This may be replaced when dependencies are built.
