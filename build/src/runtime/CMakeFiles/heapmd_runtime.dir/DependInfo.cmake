
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/address_space.cc" "src/runtime/CMakeFiles/heapmd_runtime.dir/address_space.cc.o" "gcc" "src/runtime/CMakeFiles/heapmd_runtime.dir/address_space.cc.o.d"
  "/root/repo/src/runtime/call_stack.cc" "src/runtime/CMakeFiles/heapmd_runtime.dir/call_stack.cc.o" "gcc" "src/runtime/CMakeFiles/heapmd_runtime.dir/call_stack.cc.o.d"
  "/root/repo/src/runtime/events.cc" "src/runtime/CMakeFiles/heapmd_runtime.dir/events.cc.o" "gcc" "src/runtime/CMakeFiles/heapmd_runtime.dir/events.cc.o.d"
  "/root/repo/src/runtime/heap_api.cc" "src/runtime/CMakeFiles/heapmd_runtime.dir/heap_api.cc.o" "gcc" "src/runtime/CMakeFiles/heapmd_runtime.dir/heap_api.cc.o.d"
  "/root/repo/src/runtime/process.cc" "src/runtime/CMakeFiles/heapmd_runtime.dir/process.cc.o" "gcc" "src/runtime/CMakeFiles/heapmd_runtime.dir/process.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/heapmd_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/heapgraph/CMakeFiles/heapmd_heapgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/heapmd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
