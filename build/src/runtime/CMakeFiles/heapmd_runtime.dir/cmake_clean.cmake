file(REMOVE_RECURSE
  "CMakeFiles/heapmd_runtime.dir/address_space.cc.o"
  "CMakeFiles/heapmd_runtime.dir/address_space.cc.o.d"
  "CMakeFiles/heapmd_runtime.dir/call_stack.cc.o"
  "CMakeFiles/heapmd_runtime.dir/call_stack.cc.o.d"
  "CMakeFiles/heapmd_runtime.dir/events.cc.o"
  "CMakeFiles/heapmd_runtime.dir/events.cc.o.d"
  "CMakeFiles/heapmd_runtime.dir/heap_api.cc.o"
  "CMakeFiles/heapmd_runtime.dir/heap_api.cc.o.d"
  "CMakeFiles/heapmd_runtime.dir/process.cc.o"
  "CMakeFiles/heapmd_runtime.dir/process.cc.o.d"
  "libheapmd_runtime.a"
  "libheapmd_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heapmd_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
