file(REMOVE_RECURSE
  "libheapmd_runtime.a"
)
