file(REMOVE_RECURSE
  "libheapmd_heapgraph.a"
)
