
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/heapgraph/degree_histogram.cc" "src/heapgraph/CMakeFiles/heapmd_heapgraph.dir/degree_histogram.cc.o" "gcc" "src/heapgraph/CMakeFiles/heapmd_heapgraph.dir/degree_histogram.cc.o.d"
  "/root/repo/src/heapgraph/graph_algorithms.cc" "src/heapgraph/CMakeFiles/heapmd_heapgraph.dir/graph_algorithms.cc.o" "gcc" "src/heapgraph/CMakeFiles/heapmd_heapgraph.dir/graph_algorithms.cc.o.d"
  "/root/repo/src/heapgraph/heap_graph.cc" "src/heapgraph/CMakeFiles/heapmd_heapgraph.dir/heap_graph.cc.o" "gcc" "src/heapgraph/CMakeFiles/heapmd_heapgraph.dir/heap_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/heapmd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
