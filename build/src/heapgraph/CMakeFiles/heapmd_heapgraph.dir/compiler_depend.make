# Empty compiler generated dependencies file for heapmd_heapgraph.
# This may be replaced when dependencies are built.
