file(REMOVE_RECURSE
  "CMakeFiles/heapmd_heapgraph.dir/degree_histogram.cc.o"
  "CMakeFiles/heapmd_heapgraph.dir/degree_histogram.cc.o.d"
  "CMakeFiles/heapmd_heapgraph.dir/graph_algorithms.cc.o"
  "CMakeFiles/heapmd_heapgraph.dir/graph_algorithms.cc.o.d"
  "CMakeFiles/heapmd_heapgraph.dir/heap_graph.cc.o"
  "CMakeFiles/heapmd_heapgraph.dir/heap_graph.cc.o.d"
  "libheapmd_heapgraph.a"
  "libheapmd_heapgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heapmd_heapgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
