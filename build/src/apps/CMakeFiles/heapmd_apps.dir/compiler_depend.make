# Empty compiler generated dependencies file for heapmd_apps.
# This may be replaced when dependencies are built.
