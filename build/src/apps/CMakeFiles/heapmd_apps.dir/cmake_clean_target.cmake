file(REMOVE_RECURSE
  "libheapmd_apps.a"
)
