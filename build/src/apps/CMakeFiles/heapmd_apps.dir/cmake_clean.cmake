file(REMOVE_RECURSE
  "CMakeFiles/heapmd_apps.dir/app.cc.o"
  "CMakeFiles/heapmd_apps.dir/app.cc.o.d"
  "CMakeFiles/heapmd_apps.dir/commercial_apps.cc.o"
  "CMakeFiles/heapmd_apps.dir/commercial_apps.cc.o.d"
  "CMakeFiles/heapmd_apps.dir/spec_apps.cc.o"
  "CMakeFiles/heapmd_apps.dir/spec_apps.cc.o.d"
  "CMakeFiles/heapmd_apps.dir/workload_engine.cc.o"
  "CMakeFiles/heapmd_apps.dir/workload_engine.cc.o.d"
  "libheapmd_apps.a"
  "libheapmd_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heapmd_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
