# Empty dependencies file for heapmd_istl.
# This may be replaced when dependencies are built.
