file(REMOVE_RECURSE
  "CMakeFiles/heapmd_istl.dir/adj_graph.cc.o"
  "CMakeFiles/heapmd_istl.dir/adj_graph.cc.o.d"
  "CMakeFiles/heapmd_istl.dir/binary_tree.cc.o"
  "CMakeFiles/heapmd_istl.dir/binary_tree.cc.o.d"
  "CMakeFiles/heapmd_istl.dir/btree.cc.o"
  "CMakeFiles/heapmd_istl.dir/btree.cc.o.d"
  "CMakeFiles/heapmd_istl.dir/buffer_pool.cc.o"
  "CMakeFiles/heapmd_istl.dir/buffer_pool.cc.o.d"
  "CMakeFiles/heapmd_istl.dir/circular_list.cc.o"
  "CMakeFiles/heapmd_istl.dir/circular_list.cc.o.d"
  "CMakeFiles/heapmd_istl.dir/descriptor_table.cc.o"
  "CMakeFiles/heapmd_istl.dir/descriptor_table.cc.o.d"
  "CMakeFiles/heapmd_istl.dir/dll.cc.o"
  "CMakeFiles/heapmd_istl.dir/dll.cc.o.d"
  "CMakeFiles/heapmd_istl.dir/handle_pool.cc.o"
  "CMakeFiles/heapmd_istl.dir/handle_pool.cc.o.d"
  "CMakeFiles/heapmd_istl.dir/hash_table.cc.o"
  "CMakeFiles/heapmd_istl.dir/hash_table.cc.o.d"
  "CMakeFiles/heapmd_istl.dir/oct_tree.cc.o"
  "CMakeFiles/heapmd_istl.dir/oct_tree.cc.o.d"
  "libheapmd_istl.a"
  "libheapmd_istl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heapmd_istl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
