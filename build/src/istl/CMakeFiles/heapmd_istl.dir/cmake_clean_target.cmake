file(REMOVE_RECURSE
  "libheapmd_istl.a"
)
