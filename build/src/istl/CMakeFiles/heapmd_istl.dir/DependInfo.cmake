
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/istl/adj_graph.cc" "src/istl/CMakeFiles/heapmd_istl.dir/adj_graph.cc.o" "gcc" "src/istl/CMakeFiles/heapmd_istl.dir/adj_graph.cc.o.d"
  "/root/repo/src/istl/binary_tree.cc" "src/istl/CMakeFiles/heapmd_istl.dir/binary_tree.cc.o" "gcc" "src/istl/CMakeFiles/heapmd_istl.dir/binary_tree.cc.o.d"
  "/root/repo/src/istl/btree.cc" "src/istl/CMakeFiles/heapmd_istl.dir/btree.cc.o" "gcc" "src/istl/CMakeFiles/heapmd_istl.dir/btree.cc.o.d"
  "/root/repo/src/istl/buffer_pool.cc" "src/istl/CMakeFiles/heapmd_istl.dir/buffer_pool.cc.o" "gcc" "src/istl/CMakeFiles/heapmd_istl.dir/buffer_pool.cc.o.d"
  "/root/repo/src/istl/circular_list.cc" "src/istl/CMakeFiles/heapmd_istl.dir/circular_list.cc.o" "gcc" "src/istl/CMakeFiles/heapmd_istl.dir/circular_list.cc.o.d"
  "/root/repo/src/istl/descriptor_table.cc" "src/istl/CMakeFiles/heapmd_istl.dir/descriptor_table.cc.o" "gcc" "src/istl/CMakeFiles/heapmd_istl.dir/descriptor_table.cc.o.d"
  "/root/repo/src/istl/dll.cc" "src/istl/CMakeFiles/heapmd_istl.dir/dll.cc.o" "gcc" "src/istl/CMakeFiles/heapmd_istl.dir/dll.cc.o.d"
  "/root/repo/src/istl/handle_pool.cc" "src/istl/CMakeFiles/heapmd_istl.dir/handle_pool.cc.o" "gcc" "src/istl/CMakeFiles/heapmd_istl.dir/handle_pool.cc.o.d"
  "/root/repo/src/istl/hash_table.cc" "src/istl/CMakeFiles/heapmd_istl.dir/hash_table.cc.o" "gcc" "src/istl/CMakeFiles/heapmd_istl.dir/hash_table.cc.o.d"
  "/root/repo/src/istl/oct_tree.cc" "src/istl/CMakeFiles/heapmd_istl.dir/oct_tree.cc.o" "gcc" "src/istl/CMakeFiles/heapmd_istl.dir/oct_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/faults/CMakeFiles/heapmd_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/heapmd_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/heapmd_support.dir/DependInfo.cmake"
  "/root/repo/build/src/detector/CMakeFiles/heapmd_detector.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/heapmd_model.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/heapmd_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/heapgraph/CMakeFiles/heapmd_heapgraph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
