# Empty compiler generated dependencies file for heapmd_support.
# This may be replaced when dependencies are built.
