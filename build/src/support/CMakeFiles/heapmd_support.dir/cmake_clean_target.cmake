file(REMOVE_RECURSE
  "libheapmd_support.a"
)
