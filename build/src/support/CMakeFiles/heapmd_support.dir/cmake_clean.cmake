file(REMOVE_RECURSE
  "CMakeFiles/heapmd_support.dir/csv.cc.o"
  "CMakeFiles/heapmd_support.dir/csv.cc.o.d"
  "CMakeFiles/heapmd_support.dir/logging.cc.o"
  "CMakeFiles/heapmd_support.dir/logging.cc.o.d"
  "CMakeFiles/heapmd_support.dir/random.cc.o"
  "CMakeFiles/heapmd_support.dir/random.cc.o.d"
  "CMakeFiles/heapmd_support.dir/stats.cc.o"
  "CMakeFiles/heapmd_support.dir/stats.cc.o.d"
  "CMakeFiles/heapmd_support.dir/table.cc.o"
  "CMakeFiles/heapmd_support.dir/table.cc.o.d"
  "libheapmd_support.a"
  "libheapmd_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heapmd_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
