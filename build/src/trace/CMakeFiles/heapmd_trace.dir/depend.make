# Empty dependencies file for heapmd_trace.
# This may be replaced when dependencies are built.
