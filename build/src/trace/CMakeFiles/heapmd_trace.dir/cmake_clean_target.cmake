file(REMOVE_RECURSE
  "libheapmd_trace.a"
)
