file(REMOVE_RECURSE
  "CMakeFiles/heapmd_trace.dir/trace_format.cc.o"
  "CMakeFiles/heapmd_trace.dir/trace_format.cc.o.d"
  "CMakeFiles/heapmd_trace.dir/trace_reader.cc.o"
  "CMakeFiles/heapmd_trace.dir/trace_reader.cc.o.d"
  "CMakeFiles/heapmd_trace.dir/trace_writer.cc.o"
  "CMakeFiles/heapmd_trace.dir/trace_writer.cc.o.d"
  "libheapmd_trace.a"
  "libheapmd_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heapmd_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
