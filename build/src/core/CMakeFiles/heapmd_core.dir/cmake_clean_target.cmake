file(REMOVE_RECURSE
  "libheapmd_core.a"
)
