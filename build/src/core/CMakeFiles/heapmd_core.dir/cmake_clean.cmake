file(REMOVE_RECURSE
  "CMakeFiles/heapmd_core.dir/heapmd.cc.o"
  "CMakeFiles/heapmd_core.dir/heapmd.cc.o.d"
  "libheapmd_core.a"
  "libheapmd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heapmd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
