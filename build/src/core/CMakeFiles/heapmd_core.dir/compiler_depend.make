# Empty compiler generated dependencies file for heapmd_core.
# This may be replaced when dependencies are built.
