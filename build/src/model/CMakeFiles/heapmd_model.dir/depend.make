# Empty dependencies file for heapmd_model.
# This may be replaced when dependencies are built.
