file(REMOVE_RECURSE
  "CMakeFiles/heapmd_model.dir/model.cc.o"
  "CMakeFiles/heapmd_model.dir/model.cc.o.d"
  "CMakeFiles/heapmd_model.dir/model_diff.cc.o"
  "CMakeFiles/heapmd_model.dir/model_diff.cc.o.d"
  "CMakeFiles/heapmd_model.dir/summarizer.cc.o"
  "CMakeFiles/heapmd_model.dir/summarizer.cc.o.d"
  "libheapmd_model.a"
  "libheapmd_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heapmd_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
