file(REMOVE_RECURSE
  "libheapmd_model.a"
)
