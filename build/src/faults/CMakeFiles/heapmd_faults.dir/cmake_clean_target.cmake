file(REMOVE_RECURSE
  "libheapmd_faults.a"
)
