file(REMOVE_RECURSE
  "CMakeFiles/heapmd_faults.dir/fault_plan.cc.o"
  "CMakeFiles/heapmd_faults.dir/fault_plan.cc.o.d"
  "libheapmd_faults.a"
  "libheapmd_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heapmd_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
