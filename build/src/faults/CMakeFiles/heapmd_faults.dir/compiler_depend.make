# Empty compiler generated dependencies file for heapmd_faults.
# This may be replaced when dependencies are built.
