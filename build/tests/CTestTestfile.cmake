# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/heapgraph_test[1]_include.cmake")
include("/root/repo/build/tests/heapgraph_property_test[1]_include.cmake")
include("/root/repo/build/tests/graph_algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/stability_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/heap_api_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/trace_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/model_diff_test[1]_include.cmake")
include("/root/repo/build/tests/local_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/site_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/detector_test[1]_include.cmake")
include("/root/repo/build/tests/checker_test[1]_include.cmake")
include("/root/repo/build/tests/swat_test[1]_include.cmake")
include("/root/repo/build/tests/istl_test[1]_include.cmake")
include("/root/repo/build/tests/istl_property_test[1]_include.cmake")
include("/root/repo/build/tests/faults_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
