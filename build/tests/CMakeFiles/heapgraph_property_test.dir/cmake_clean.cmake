file(REMOVE_RECURSE
  "CMakeFiles/heapgraph_property_test.dir/heapgraph_property_test.cc.o"
  "CMakeFiles/heapgraph_property_test.dir/heapgraph_property_test.cc.o.d"
  "heapgraph_property_test"
  "heapgraph_property_test.pdb"
  "heapgraph_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heapgraph_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
