# Empty dependencies file for heapgraph_property_test.
# This may be replaced when dependencies are built.
