file(REMOVE_RECURSE
  "CMakeFiles/istl_property_test.dir/istl_property_test.cc.o"
  "CMakeFiles/istl_property_test.dir/istl_property_test.cc.o.d"
  "istl_property_test"
  "istl_property_test.pdb"
  "istl_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/istl_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
