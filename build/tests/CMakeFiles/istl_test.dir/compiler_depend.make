# Empty compiler generated dependencies file for istl_test.
# This may be replaced when dependencies are built.
