file(REMOVE_RECURSE
  "CMakeFiles/istl_test.dir/istl_test.cc.o"
  "CMakeFiles/istl_test.dir/istl_test.cc.o.d"
  "istl_test"
  "istl_test.pdb"
  "istl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/istl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
