file(REMOVE_RECURSE
  "CMakeFiles/local_metrics_test.dir/local_metrics_test.cc.o"
  "CMakeFiles/local_metrics_test.dir/local_metrics_test.cc.o.d"
  "local_metrics_test"
  "local_metrics_test.pdb"
  "local_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
