# Empty dependencies file for local_metrics_test.
# This may be replaced when dependencies are built.
