file(REMOVE_RECURSE
  "CMakeFiles/heapgraph_test.dir/heapgraph_test.cc.o"
  "CMakeFiles/heapgraph_test.dir/heapgraph_test.cc.o.d"
  "heapgraph_test"
  "heapgraph_test.pdb"
  "heapgraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heapgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
