
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/heapgraph_test.cc" "tests/CMakeFiles/heapgraph_test.dir/heapgraph_test.cc.o" "gcc" "tests/CMakeFiles/heapgraph_test.dir/heapgraph_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/heapmd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/heapmd_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/istl/CMakeFiles/heapmd_istl.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/heapmd_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/swat/CMakeFiles/heapmd_swat.dir/DependInfo.cmake"
  "/root/repo/build/src/detector/CMakeFiles/heapmd_detector.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/heapmd_model.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/heapmd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/heapmd_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/heapmd_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/heapgraph/CMakeFiles/heapmd_heapgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/heapmd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
