# Empty dependencies file for heapgraph_test.
# This may be replaced when dependencies are built.
