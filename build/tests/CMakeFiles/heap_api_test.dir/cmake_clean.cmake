file(REMOVE_RECURSE
  "CMakeFiles/heap_api_test.dir/heap_api_test.cc.o"
  "CMakeFiles/heap_api_test.dir/heap_api_test.cc.o.d"
  "heap_api_test"
  "heap_api_test.pdb"
  "heap_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heap_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
