# Empty dependencies file for heap_api_test.
# This may be replaced when dependencies are built.
