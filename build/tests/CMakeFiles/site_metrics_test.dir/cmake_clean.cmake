file(REMOVE_RECURSE
  "CMakeFiles/site_metrics_test.dir/site_metrics_test.cc.o"
  "CMakeFiles/site_metrics_test.dir/site_metrics_test.cc.o.d"
  "site_metrics_test"
  "site_metrics_test.pdb"
  "site_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
